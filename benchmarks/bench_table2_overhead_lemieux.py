"""Table 2 — C3 runtime overhead without checkpoints on the Lemieux model."""

from conftest import run_once

from repro.harness import render_overhead, table2_rows


def test_table2_overhead_without_checkpoints(benchmark):
    rows = run_once(benchmark, table2_rows)
    print()
    print(render_overhead(
        "Table 2: Runtimes (s) on Lemieux without checkpoints", rows))
    # Paper's conclusions: overhead < 10% on all codes at every scale, and
    # no runaway growth with the process count (scalability claim).
    for r in rows:
        assert r["overhead_pct"] < 10.0, r
        assert r["overhead_pct"] > -2.0, r
    # Within each code the overhead stays within a few points across scales.
    by_code = {}
    for r in rows:
        by_code.setdefault(r["code"], []).append(r["overhead_pct"])
    for code, series in by_code.items():
        assert max(series) - min(series) < 9.0, (code, series)
