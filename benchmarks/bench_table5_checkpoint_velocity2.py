"""Table 5 — overhead of taking one checkpoint, Velocity 2 / CMI models."""

from conftest import run_once

from repro.harness import render_checkpoint, table5_rows


def test_table5_checkpoint_overhead(benchmark):
    rows = run_once(benchmark, table5_rows)
    print()
    print(render_checkpoint(
        "Table 5: Runtimes (s) on Velocity 2 with one checkpoint "
        "(HPL on CMI)", rows))
    for r in rows:
        assert r["committed"] >= 1, f"no checkpoint committed: {r}"
        assert r["cost_s"] <= 0.1 * r["cfg1_s"] + 0.05, r
    # HPL checkpoints stay constant-size across scales (0.34 MB in the
    # paper at every proc count) — recomputation keeps the state tiny.
    hpl = [r["size_per_proc_mb"] for r in rows if r["code"] == "HPL"]
    assert max(hpl) - min(hpl) < 0.2 * max(hpl) + 1e-6
