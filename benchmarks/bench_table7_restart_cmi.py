"""Table 7 — restart cost on the CMI model (uniprocessor runs)."""

from conftest import run_once

from repro.harness import render_restart, table7_rows


def test_table7_restart_cost(benchmark):
    rows = run_once(benchmark, table7_rows)
    print()
    print(render_restart(
        "Table 7: Restart costs (s) on CMI (uniprocessor)", rows))
    for r in rows:
        assert abs(r["restart_cost_pct"]) < 5.5, r
    assert sum(abs(r["restart_cost_pct"]) < 2.0 for r in rows) >= 4
