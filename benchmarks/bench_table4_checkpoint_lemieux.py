"""Table 4 — overhead of taking one checkpoint on the Lemieux model.

Configurations: #1 no checkpoint, #2 checkpoint without the disk write,
#3 checkpoint written to node-local disk; plus size/proc and the
checkpoint cost (#3 - #1).
"""

from conftest import run_once

from repro.harness import render_checkpoint, table4_rows


def test_table4_checkpoint_overhead(benchmark):
    rows = run_once(benchmark, table4_rows)
    print()
    print(render_checkpoint(
        "Table 4: Runtimes (s) on Lemieux with one checkpoint", rows))
    for r in rows:
        assert r["committed"] >= 1, f"no checkpoint committed: {r}"
        # The paper's headline: the cost of one checkpoint is small —
        # a few percent of the run at most.
        assert r["cost_s"] <= 0.1 * r["cfg1_s"] + 0.05, r
        # #2 (no disk write) is never costlier than #3 in a deterministic
        # simulation.
        assert r["cfg2_s"] <= r["cfg3_s"] + 1e-9, r
    # HPL's checkpoint is tiny (recomputation instead of state saving);
    # CG's is the largest — Table 4's size column ordering.
    sizes = {r["code"]: r["size_per_proc_mb"] for r in rows
             if r["paper_procs"] == 64}
    assert sizes["HPL"] < 0.05 * sizes["CG (D)"]
    assert sizes["CG (D)"] >= max(sizes.values()) * 0.99
