"""WAL storage engine — group commit's fsync economy as a gate.

The log-structured store (DESIGN.md §8) exists to replace one fsync per
section per rank with one batched fsync per *node* per recovery line.
This bench runs the scatter-vs-WAL commit cells and the exact-count
group-commit discipline cells of :mod:`repro.harness.walstudy` and fails
if group commit does not reduce fsyncs-per-line on the real-file disk
backend, if the WAL exceeds one fsync per node per committed line, or if
segment GC retains more lines than the scatter baseline's per-file
deletes.

Emits ``BENCH_wal.json`` (the same machine-readable report the
``python -m repro.harness.walstudy`` CLI writes).
"""

import json

from conftest import run_once

from repro.harness.walstudy import (
    commit_rows, discipline_rows, render_commits, render_discipline,
)


def test_wal_group_commit_study(benchmark):
    def study():
        return commit_rows(), discipline_rows()

    c_rows, d_rows = run_once(benchmark, study)
    with open("BENCH_wal.json", "w") as f:
        json.dump({"commits": c_rows, "discipline": d_rows}, f, indent=2,
                  default=str)
    print()
    print(render_commits(c_rows))
    print()
    print(render_discipline(d_rows))
    bad = ([f"{r['platform']}/{r['kernel']}: {r['failure']}"
            for r in c_rows if not r["passed"]]
           + [f"{r['backend']}/ppn{r['procs_per_node']}: {r['failure']}"
              for r in d_rows if not r["passed"]])
    assert not bad, f"WAL gate violations: {bad}"
    for r in c_rows:
        # The CI claim: group commit reduces fsyncs per committed line
        # versus the per-file scatter path on the disk backend — by an
        # order of magnitude, not marginally (scatter pays one fsync per
        # section per rank, the WAL one per node group).
        assert r["wal_fsyncs_per_line"] < 0.2 * r["scatter_fsyncs_per_line"]
    for r in d_rows:
        # The pinned acceptance bound: exactly one fsync per node per
        # group-committed line under a controlled commit schedule.
        assert r["fsyncs"] == r["nodes"] * r["lines"]
        assert r["replay_bitwise"]
