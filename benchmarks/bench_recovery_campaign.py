"""Recovery campaign — the Tables 6/7 claim across the whole scenario
space: every app kernel killed and restarted, results verified bitwise.

Emits ``CAMPAIGN_smoke.json`` (the same machine-readable report the
``python -m repro.harness.campaign`` CLI writes) so CI can archive the
per-scenario verdicts next to the timing artifact.
"""

from conftest import run_once

from repro.harness import (
    campaign_restart_rows, render_campaign, render_restart, run_campaign,
    smoke_matrix,
)


def test_recovery_campaign_smoke(benchmark):
    report = run_once(benchmark, lambda: run_campaign(smoke_matrix()))
    report.write_json("CAMPAIGN_smoke.json")
    print()
    print(render_campaign(report.rows))
    print()
    print(render_restart(
        "Campaign restart costs (virtual s, multi-process scenarios)",
        campaign_restart_rows(report.rows)))
    # Every kernel must kill, restart, and verify bitwise-identical
    # results — the paper's recovery-correctness claim.
    assert report.ok, f"failed scenarios: {report.summary()['failed']}"
    assert {r["app"] for r in report.rows} >= {
        "CG", "LU", "SP", "BT", "MG", "EP", "FT", "IS", "SMG2000", "HPL"}
    # Restart stays cheap relative to the run — the Tables 6/7 shape —
    # in aggregate across the matrix (single scenarios can even be
    # negative: log replay is cheaper than re-communication).
    costs = [r["restart_cost_seconds"] / r["golden_seconds"]
             for r in report.rows if r["restarts"]]
    assert sum(costs) / len(costs) < 2.0
