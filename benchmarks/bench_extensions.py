"""Benches for the extensions beyond the paper's implementation status:
incremental checkpointing (their future work) and the drain daemon (their
PSC integration)."""

import numpy as np
from conftest import run_once

from repro.core import C3Config, run_c3
from repro.storage import (
    DrainDaemon, InMemoryStorage, checkpoint_bytes, last_committed_global,
)
from repro.mpi.timemodel import LEMIEUX


def _sparse_app(ctx):
    comm = ctx.comm
    r, s = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.big = np.zeros(128 * 1024 // 8)
        ctx.done("setup")
    for it in ctx.range("i", 16):
        ctx.checkpoint()
        ctx.state.big[it * 8] = float(it)
        comm.Barrier()
        ctx.compute(1e-4)
    return True


def _compare_incremental():
    out = {}
    for name, incr in (("full", False), ("incremental", True)):
        storage = InMemoryStorage()
        result, stats = run_c3(
            _sparse_app, 4, storage=storage,
            config=C3Config(checkpoint_interval=3e-4, incremental=incr,
                            incremental_full_interval=100))
        result.raise_errors()
        committed = min(s.checkpoints_committed for s in stats if s)
        sizes = [checkpoint_bytes(storage, v, 0)
                 for v in range(1, committed + 1)]
        out[name] = {"committed": committed, "sizes": sizes,
                     "total_bytes": storage.written_bytes}
    return out


def test_incremental_checkpoint_sizes(benchmark):
    out = run_once(benchmark, _compare_incremental)
    print()
    print("Extension: incremental checkpointing (Section 8 future work)")
    for name, row in out.items():
        ks = [f"{s / 1024:.1f}k" for s in row["sizes"]]
        print(f"  {name:12s} checkpoints={row['committed']} "
              f"sizes={ks} stored={row['total_bytes'] / 1024:.1f}k")
    assert out["incremental"]["committed"] >= 2
    # after the first full save, incremental checkpoints are much smaller
    assert (out["incremental"]["sizes"][1]
            < out["full"]["sizes"][1] / 4)


def _drain_experiment():
    storage = InMemoryStorage()
    result, stats = run_c3(
        _sparse_app, 8, machine=LEMIEUX, storage=storage,
        config=C3Config(checkpoint_interval=6e-4, max_checkpoints=1))
    result.raise_errors()
    version = last_committed_global(storage, 8)
    sizes = [checkpoint_bytes(storage, version, r) for r in range(8)]
    times = [s.last_commit_time for s in stats if s]
    report = DrainDaemon(LEMIEUX, drain_streams=4).drain(times, sizes)
    return {
        "local_done_ms": max(report.local_done) * 1e3,
        "durable_ms": report.line_durable_at * 1e3,
        "sync_penalty_ms": report.synchronous_penalty * 1e3,
    }


def test_drain_daemon_model(benchmark):
    out = run_once(benchmark, _drain_experiment)
    print()
    print("Extension: asynchronous off-cluster drain (Section 6.4)")
    print(f"  local writes done: {out['local_done_ms']:.3f} ms, "
          f"durable off-cluster: {out['durable_ms']:.3f} ms, "
          f"avoided per-checkpoint stall: {out['sync_penalty_ms']:.3f} ms")
    assert out["durable_ms"] >= out["local_done_ms"]
