"""Scaling study — C3 overhead flatness at the paper's true process counts.

Reproduces the Tables 2-3 scalability claim ("overhead stays small up to
hundreds of processes") by sweeping 16 -> 256 simulated ranks across the
Lemieux / Velocity 2 / CMI models on the cooperative rank scheduler.
"""

from conftest import run_once

from repro.harness.scaling import (
    SCALING_RANKS, check_flatness, render_scaling, scaling_rows,
)


def test_scaling_overhead_flat_to_256_ranks(benchmark):
    rows = run_once(benchmark, scaling_rows)
    print()
    print(render_scaling(rows))
    assert len(rows) == 3 * 3 * len(SCALING_RANKS)
    # The sweep must actually reach the paper's scale.
    assert max(r["nprocs"] for r in rows) == 256
    # Paper's conclusion: low overhead at every scale point...
    for r in rows:
        assert r["overhead_pct"] < 10.0, r
        assert r["overhead_pct"] > -2.0, r
    # ...and no runaway growth with the process count (flatness).
    violations = check_flatness(rows)
    assert not violations, violations
