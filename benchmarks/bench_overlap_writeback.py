"""Overlapped write-back pipeline — the Section 6.4 claim as a gate.

Checkpoint cost should be bounded by protocol work, not by the disk:
staging the serialized sections onto the node's background drain device
and committing when the drain completes must be strictly cheaper per
checkpoint than the in-line write of the Tables 4-5 configuration #3,
on every platform model — and a rank killed mid-drain or mid-commit must
recover bitwise from the previous committed line, with superseded lines
garbage-collected.

Emits ``BENCH_overlap.json`` (the same machine-readable report the
``python -m repro.harness.overlap`` CLI writes).
"""

import json

from conftest import run_once

from repro.harness.overlap import (
    fault_rows, overhead_rows, render_faults, render_overlap,
)


def test_overlap_writeback_study(benchmark):
    def study():
        return overhead_rows(), fault_rows()

    o_rows, f_rows = run_once(benchmark, study)
    with open("BENCH_overlap.json", "w") as f:
        json.dump({"overhead": o_rows, "faults": f_rows}, f, indent=2,
                  default=str)
    print()
    print(render_overlap(o_rows))
    print()
    print(render_faults(f_rows))
    # Every overhead cell: overlapped commit strictly cheaper than the
    # in-line write; every fault cell: bitwise recovery from the prior
    # line with <= 2 recovery lines left on storage.
    bad = ([f"{r['platform']}/{r['kernel']}: {r['failure']}"
            for r in o_rows if not r["passed"]]
           + [f"{r['platform']}/{r['kill']}: {r['failure']}"
              for r in f_rows if not r["passed"]])
    assert not bad, f"overlap gate violations: {bad}"
    # The headline shape: overlap collapses toward configuration #2
    # (serialization + protocol), far below the in-line write.
    for r in o_rows:
        assert r["overlap_cost_s"] < 0.5 * r["inline_cost_s"]
