"""Shared benchmark plumbing.

Every benchmark regenerates one table (or ablation) of the paper.  The
drivers are deterministic virtual-time simulations, so a single round is
meaningful; ``run_once`` wires that through pytest-benchmark and prints
the paper-layout table so ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark ``fn`` with one warm round and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
