"""Table 6 — restart cost on the Lemieux model (uniprocessor runs)."""

from conftest import run_once

from repro.harness import render_restart, table6_rows


def test_table6_restart_cost(benchmark):
    rows = run_once(benchmark, table6_rows)
    print()
    print(render_restart(
        "Table 6: Restart costs (s) on Lemieux (uniprocessor)", rows))
    # The paper's conclusion: restart costs are negligible — with one
    # exception below ~5%, most under 2%.
    for r in rows:
        assert abs(r["restart_cost_pct"]) < 5.5, r
    assert sum(abs(r["restart_cost_pct"]) < 2.0 for r in rows) >= 4
