"""Table 1 — Condor vs C3 checkpoint sizes on Solaris and Linux uniprocessors.

Reproduced at 1/SIZE_SCALE footprint; the reduction percentages are
directly comparable to the paper's.
"""

from conftest import run_once

from repro.harness import render_table1, table1_rows
from repro.harness.paperdata import TABLE1


def test_table1_checkpoint_sizes(benchmark):
    rows = run_once(benchmark, table1_rows)
    print()
    print(render_table1(rows))
    # Shape assertions: C3 never (meaningfully) larger than Condor, and EP
    # shows by far the largest reduction on both platforms, as in Table 1.
    for platform in ("solaris", "linux"):
        prows = [r for r in rows if r["platform"] == platform]
        assert len(prows) == len(TABLE1[platform])
        for r in prows:
            assert r["c3_mb"] <= r["condor_mb"] * 1.001
        ep = next(r for r in prows if r["code"] == "EP (A)")
        others = [r for r in prows if r["code"] != "EP (A)"]
        assert ep["reduction_pct"] > 5 * max(r["reduction_pct"] for r in others)
