"""Table 1 — Condor vs C3 checkpoint sizes on Solaris and Linux uniprocessors.

Reproduced at 1/SIZE_SCALE footprint; the reduction percentages are
directly comparable to the paper's.  The second benchmark runs the same
claim through the *precompiler-instrumented* kernels (the production
state-saving path): ``repro.harness.sizes`` measures what the protocol
actually commits per process and gates on the Table-1 inequality.
"""

from conftest import run_once

from repro.harness import render_table1, table1_rows
from repro.harness.paperdata import TABLE1
from repro.harness.sizes import render_sizes, table_sizes_rows


def test_table1_checkpoint_sizes(benchmark):
    rows = run_once(benchmark, table1_rows)
    print()
    print(render_table1(rows))
    # Shape assertions: C3 never (meaningfully) larger than Condor, and EP
    # shows by far the largest reduction on both platforms, as in Table 1.
    for platform in ("solaris", "linux"):
        prows = [r for r in rows if r["platform"] == platform]
        assert len(prows) == len(TABLE1[platform])
        for r in prows:
            assert r["c3_mb"] <= r["condor_mb"] * 1.001
        ep = next(r for r in prows if r["code"] == "EP (A)")
        others = [r for r in prows if r["code"] != "EP (A)"]
        assert ep["reduction_pct"] > 5 * max(r["reduction_pct"] for r in others)


def test_instrumented_kernel_sizes(benchmark):
    rows = run_once(benchmark, table_sizes_rows)
    print()
    print(render_sizes(rows))
    # The production-path gate: every instrumented kernel's C3 checkpoint
    # strictly below its Condor image, with at least one committed line.
    for r in rows:
        assert r["passed"], f"{r['kernel']}: {r['failure']}"
        assert r["c3_bytes"] < r["condor_bytes"]
    # EP's reduction dominates, as in Table 1.
    ep = next(r for r in rows if r["kernel"] == "EP+ccc")
    assert ep["reduction_pct"] == max(r["reduction_pct"] for r in rows)
