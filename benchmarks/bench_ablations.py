"""Ablation benches for the design choices of Section 4.5.

* any-process initiation vs the earlier protocol's distinguished initiator;
* separated logging phases / stream reductions vs result-logging;
* 3-bit piggyback vs full-epoch piggyback;
* C3's non-blocking protocol vs blocking coordinated checkpointing.
"""

from conftest import run_once

from repro.harness import (
    ablation_blocking_vs_nonblocking, ablation_initiation,
    ablation_logging_phases, ablation_piggyback,
)


def test_ablation_initiation(benchmark):
    out = run_once(benchmark, ablation_initiation)
    print()
    print("Ablation: checkpoint initiation")
    for name, row in out.items():
        print(f"  {name:14s} vt={row['virtual_seconds']:.6f}s "
              f"control_msgs={row['control_msgs']} "
              f"committed={row['committed']}")
    # Both protocols must actually commit checkpoints.
    assert out["any_process"]["committed"] >= 1
    assert out["distinguished"]["committed"] >= 1


def test_ablation_logging_phases(benchmark):
    out = run_once(benchmark, ablation_logging_phases)
    print()
    print("Ablation: reduction handling / logging volume")
    for name, row in out.items():
        print(f"  {name:18s} vt={row['virtual_seconds']:.6f}s "
              f"log_bytes={row['log_bytes']} events={row['events_logged']} "
              f"late={row['late_logged']}")
    # Result logging records events; stream-based reductions do not.
    assert out["result_logging"]["events_logged"] >= 0
    assert out["stream_reductions"]["events_logged"] == 0


def test_ablation_piggyback(benchmark):
    out = run_once(benchmark, ablation_piggyback)
    print()
    print("Ablation: piggyback codec (3-bit vs full epoch)")
    print(f"  3bit vt={out['3bit']['virtual_seconds']:.6f}s  "
          f"full vt={out['full']['virtual_seconds']:.6f}s  "
          f"ratio={out['overhead_ratio']:.4f}")
    # Piggybacking the full epoch costs strictly more wire time.
    assert out["overhead_ratio"] >= 1.0


def test_ablation_blocking_vs_nonblocking(benchmark):
    out = run_once(benchmark, ablation_blocking_vs_nonblocking)
    print()
    print("Ablation: C3 non-blocking vs blocking coordinated checkpointing")
    print(f"  original={out['original_s']:.6f}s c3={out['c3_s']:.6f}s "
          f"blocking={out['blocking_s']:.6f}s "
          f"(barrier stall {out['blocking_stall_s']:.6f}s)")
    assert out["c3_s"] >= out["original_s"]
    assert out["blocking_s"] >= out["original_s"]
