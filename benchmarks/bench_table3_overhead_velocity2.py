"""Table 3 — C3 runtime overhead without checkpoints, Velocity 2 / CMI."""

from conftest import run_once

from repro.harness import render_overhead, table3_rows


def test_table3_overhead_without_checkpoints(benchmark):
    rows = run_once(benchmark, table3_rows)
    print()
    print(render_overhead(
        "Table 3: Runtimes (s) on Velocity 2 without checkpoints "
        "(HPL on CMI)", rows))
    smg = [r for r in rows if r["code"] == "SMG2000"]
    others = [r for r in rows if r["code"] != "SMG2000"]
    # The paper's stand-out result: SMG2000's overhead on Velocity 2 is
    # anomalously large (~50%), far beyond every other code (<10%).
    for r in smg:
        assert r["overhead_pct"] > 30.0, r
    for r in others:
        assert r["overhead_pct"] < 13.0, r
    # HPL on CMI is nearly free (sub-1%), the paper's cheapest rows.
    hpl = [r for r in rows if r["code"] == "HPL"]
    for r in hpl:
        assert r["overhead_pct"] < 1.0, r
