"""Checkpoint-interval sweep bench: the cost trade-off behind the paper's
"once an hour / once a day" scaling argument, with Young's optimum."""

from conftest import run_once

from repro.apps import APPS
from repro.harness.sweep import sweep_intervals


def _sweep():
    app = APPS["heat"]

    def configured(ctx):
        return app(ctx, local_n=24, niter=60)

    return sweep_intervals(configured, 4,
                           intervals_frac=(0.05, 0.1, 0.2, 0.4, 0.8))


def test_checkpoint_interval_sweep(benchmark):
    out = run_once(benchmark, _sweep)
    print()
    print("Checkpoint-interval sweep (heat, 4 ranks, failure at 63%)")
    print(f"  failure-free runtime: {out['original_seconds'] * 1e3:.3f} ms, "
          f"per-checkpoint cost: "
          f"{(out['checkpoint_cost_seconds'] or 0) * 1e3:.4f} ms")
    if out["young_optimum_seconds"]:
        print(f"  Young optimum ~ {out['young_optimum_seconds'] * 1e3:.3f} ms")
    for p in out["points"]:
        print(f"  interval={p.interval * 1e3:7.3f} ms  ckpts={p.checkpoints:2d}  "
              f"clean-ovh={p.overhead_pct:5.2f}%  "
              f"with-failure total={p.recovered_seconds * 1e3:8.3f} ms  "
              f"(cost {p.total_cost_seconds * 1e3:7.3f} ms)")
    points = out["points"]
    # frequent checkpointing costs more in failure-free overhead...
    assert points[0].overhead_pct >= points[-1].overhead_pct
    # ...but failures are cheaper to absorb than with sparse checkpoints
    assert points[0].checkpoints > points[-1].checkpoints
    # every configuration still completes correctly with the failure
    assert all(p.recovered_seconds > 0 for p in points)
