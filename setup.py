"""Thin setup.py shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail.  This shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path
(pip does this automatically when the modern path is unavailable, or via
``--no-use-pep517``).
"""

from setuptools import setup

setup()
