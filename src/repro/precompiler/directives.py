"""``# ccc:`` directive parsing.

The C3 precompiler reads "almost unmodified" source; the only additions
the programmer makes are directives.  The Python reproduction supports:

* ``# ccc: save(a, b, c)`` — the named variables are checkpointable
  state; every read/write is redirected to ``ctx.state``;
* ``# ccc: setup-end`` — everything above this line (after the docstring)
  is one-time initialization, skipped when restarting from a checkpoint;
* ``# ccc: loop(name)`` — the next ``for`` statement becomes a resumable
  loop (its ``range`` is rewritten to ``ctx.range``);
* ``# ccc: checkpoint`` — the ``#pragma ccc checkpoint`` site.

Directives must stand on their own line.  :func:`preprocess` rewrites
them into sentinel statements the AST transformer can see (comments do
not survive parsing), preserving line numbers exactly.
"""

from __future__ import annotations

import re
from typing import List, Tuple


class DirectiveError(Exception):
    """A malformed ``# ccc:`` directive."""


_DIRECTIVE_RE = re.compile(r"^(\s*)#\s*ccc:\s*(.+?)\s*$")
_SAVE_RE = re.compile(r"^save\(\s*([A-Za-z_][\w\s,]*)\)$")
_LOOP_RE = re.compile(r"^loop\(\s*([A-Za-z_]\w*)\s*\)$")

#: sentinel function names consumed by the AST pass
SENTINEL_SAVE = "__ccc_save__"
SENTINEL_SETUP_END = "__ccc_setup_end__"
SENTINEL_LOOP = "__ccc_loop__"


def preprocess(source: str) -> Tuple[str, int]:
    """Rewrite directive comments into sentinel statements.

    Returns (new_source, directive_count).  Line numbers are preserved:
    each directive line is replaced in place.
    """
    out: List[str] = []
    count = 0
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE_RE.match(line)
        if m is None:
            if "# ccc" in line and "ccc:" in line.replace(" ", ""):
                raise DirectiveError(
                    f"line {lineno}: a ccc directive must stand on its own "
                    f"line: {line.strip()!r}"
                )
            out.append(line)
            continue
        indent, body = m.group(1), m.group(2)
        count += 1
        if body == "checkpoint":
            out.append(f"{indent}ctx.checkpoint()")
        elif body == "setup-end":
            out.append(f"{indent}{SENTINEL_SETUP_END}()")
        else:
            sm = _SAVE_RE.match(body)
            if sm:
                names = [n.strip() for n in sm.group(1).split(",") if n.strip()]
                if not names:
                    raise DirectiveError(f"line {lineno}: empty save() list")
                args = ", ".join(repr(n) for n in names)
                out.append(f"{indent}{SENTINEL_SAVE}({args})")
                continue
            lm = _LOOP_RE.match(body)
            if lm:
                out.append(f"{indent}{SENTINEL_LOOP}({lm.group(1)!r})")
                continue
            raise DirectiveError(
                f"line {lineno}: unknown ccc directive {body!r}"
            )
    return "\n".join(out), count
