"""``# ccc:`` directive parsing.

The C3 precompiler reads "almost unmodified" source; the only additions
the programmer makes are directives.  The Python reproduction supports:

* ``# ccc: save(a, b, c)`` — the named variables are checkpointable
  state; every read/write is redirected to ``ctx.state``;
* ``# ccc: setup-end`` — everything above this line (after the docstring)
  is one-time initialization, skipped when restarting from a checkpoint;
* ``# ccc: loop(name)`` — the next ``for``/``while`` statement becomes a
  resumable loop (``range`` is rewritten to ``ctx.range``, a ``while``
  condition is re-evaluated under a persisted ``ctx.while_range``
  counter); named loops nest, and the persisted counters form the
  checkpoint's loop-position stack;
* ``# ccc: call(name)`` — the next assignment of a function-call result
  is wrapped in a call-guard: the call runs once per job lifetime, its
  targets become saved variables, and a restarted run skips the call and
  reuses the checkpointed result (the paper's function-instrumentation
  analog for expensive one-time calls);
* ``# ccc: checkpoint`` — the ``#pragma ccc checkpoint`` site.

Directives must stand on their own line.  :func:`preprocess` rewrites
them into sentinel statements the AST transformer can see (comments do
not survive parsing), preserving line numbers exactly.  The source is
*tokenized*, not line-scanned, so directive-looking text inside a
docstring or any multi-line string literal is left untouched — only real
``COMMENT`` tokens are rewritten.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Tuple

class DirectiveError(Exception):
    """A malformed ``# ccc:`` directive."""


_COMMENT_RE = re.compile(r"^#\s*ccc:\s*(.+?)\s*$")
_SAVE_RE = re.compile(r"^save\(\s*([A-Za-z_][\w\s,]*)\)$")
_LOOP_RE = re.compile(r"^loop\(\s*([A-Za-z_]\w*)\s*\)$")
_CALL_RE = re.compile(r"^call\(\s*([A-Za-z_]\w*)\s*\)$")

#: sentinel function names consumed by the AST pass
SENTINEL_SAVE = "__ccc_save__"
SENTINEL_SETUP_END = "__ccc_setup_end__"
SENTINEL_LOOP = "__ccc_loop__"
SENTINEL_CALL = "__ccc_call__"

#: every sentinel name (the transformer rejects leftovers after its pass)
SENTINELS = (SENTINEL_SAVE, SENTINEL_SETUP_END, SENTINEL_LOOP, SENTINEL_CALL)


def _render(body: str, indent: str, lineno: int) -> str:
    """One directive body -> its sentinel statement."""
    if body == "checkpoint":
        return f"{indent}ctx.checkpoint()"
    if body == "setup-end":
        return f"{indent}{SENTINEL_SETUP_END}()"
    sm = _SAVE_RE.match(body)
    if sm:
        names = [n.strip() for n in sm.group(1).split(",") if n.strip()]
        if not names:
            raise DirectiveError(f"line {lineno}: empty save() list")
        args = ", ".join(repr(n) for n in names)
        return f"{indent}{SENTINEL_SAVE}({args})"
    lm = _LOOP_RE.match(body)
    if lm:
        return f"{indent}{SENTINEL_LOOP}({lm.group(1)!r})"
    cm = _CALL_RE.match(body)
    if cm:
        return f"{indent}{SENTINEL_CALL}({cm.group(1)!r})"
    raise DirectiveError(
        f"line {lineno}: unknown ccc directive {body!r}"
    )


def preprocess(source: str) -> Tuple[str, int]:
    """Rewrite directive comments into sentinel statements.

    Returns (new_source, directive_count).  Line numbers are preserved:
    each directive line is replaced in place.  Directives are recognized
    from the token stream, so ``# ccc:`` text inside a string literal
    (docstrings included) is not a directive.
    """
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError) as exc:
        raise DirectiveError(f"cannot tokenize source: {exc}") from None
    count = 0
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _COMMENT_RE.match(tok.string)
        row, col = tok.start
        if m is None:
            if tok.string.replace(" ", "").startswith("#ccc:"):
                raise DirectiveError(
                    f"line {row}: malformed ccc directive "
                    f"{tok.string.strip()!r}"
                )
            continue
        if lines[row - 1][:col].strip():
            raise DirectiveError(
                f"line {row}: a ccc directive must stand on its own "
                f"line: {lines[row - 1].strip()!r}"
            )
        count += 1
        lines[row - 1] = _render(m.group(1), lines[row - 1][:col], row)
    return "\n".join(lines), count
