"""AST instrumentation: the compile-time half of Figure 1.

:func:`instrument` takes a plain Python function annotated with ``# ccc:``
directives and produces the self-checkpointing equivalent a C3 user would
get from the precompiler:

* saved variables live in ``ctx.state`` (reads and writes are redirected),
  so the runtime's state description always covers them;
* the one-time setup section is wrapped in a replay guard and skipped
  after a restart;
* marked loops resume from the checkpointed iteration;
* ``# ccc: checkpoint`` lines become ``ctx.checkpoint()`` pragma calls.

The instrumented function must take ``ctx`` as its first parameter (the
runtime context plays the role of C3's utility-library handle).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, List, Optional, Set

from .directives import (
    DirectiveError, SENTINEL_LOOP, SENTINEL_SAVE, SENTINEL_SETUP_END,
    preprocess,
)


class TransformError(Exception):
    """The function cannot be instrumented as written."""


def _is_sentinel_call(node: ast.stmt, name: str) -> bool:
    return (isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == name)


class _StateRewriter(ast.NodeTransformer):
    """Redirect saved-variable reads/writes to ``ctx.state``."""

    def __init__(self, saved: Set[str]):
        self.saved = saved

    def visit_Name(self, node: ast.Name):
        if node.id in self.saved:
            return ast.copy_location(
                ast.Attribute(
                    value=ast.Attribute(
                        value=ast.Name(id="ctx", ctx=ast.Load()),
                        attr="state", ctx=ast.Load()),
                    attr=node.id, ctx=node.ctx),
                node)
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        raise TransformError(
            "nested function definitions are not supported by the "
            "precompiler (the paper's restricted-C analog)"
        )

    visit_AsyncFunctionDef = visit_FunctionDef


class _LoopRewriter(ast.NodeTransformer):
    """Apply ``__ccc_loop__`` sentinels to the following for-statement."""

    def _transform_body(self, body: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        pending_loop: Optional[str] = None
        for stmt in body:
            if _is_sentinel_call(stmt, SENTINEL_LOOP):
                if pending_loop is not None:
                    raise TransformError("two loop directives in a row")
                arg = stmt.value.args[0]
                pending_loop = arg.value
                continue
            if pending_loop is not None:
                if not isinstance(stmt, ast.For):
                    raise TransformError(
                        f"ccc: loop({pending_loop}) must be followed by a "
                        "for statement"
                    )
                stmt = self._rewrite_for(stmt, pending_loop)
                pending_loop = None
            stmt = self.generic_visit(stmt)
            out.append(stmt)
        if pending_loop is not None:
            raise TransformError(
                f"ccc: loop({pending_loop}) has no following for statement")
        return out

    def _rewrite_for(self, node: ast.For, name: str) -> ast.For:
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise TransformError(
                f"ccc: loop({name}) requires 'for ... in range(...)'"
            )
        new_iter = ast.Call(
            func=ast.Attribute(value=ast.Name(id="ctx", ctx=ast.Load()),
                               attr="range", ctx=ast.Load()),
            args=[ast.Constant(value=name)] + it.args,
            keywords=it.keywords,
        )
        node.iter = ast.copy_location(new_iter, it)
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        node.body = self._transform_body(node.body)
        return node

    def visit_For(self, node: ast.For):
        node.body = self._transform_body(node.body)
        node.orelse = self._transform_body(node.orelse)
        return node

    def visit_While(self, node: ast.While):
        node.body = self._transform_body(node.body)
        node.orelse = self._transform_body(node.orelse)
        return node

    def visit_If(self, node: ast.If):
        node.body = self._transform_body(node.body)
        node.orelse = self._transform_body(node.orelse)
        return node

    def visit_With(self, node: ast.With):
        node.body = self._transform_body(node.body)
        return node


def _assigned_names(stmts: List[ast.stmt]) -> Set[str]:
    names: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                names.add(node.id)
    return names


def instrument(fn: Callable) -> Callable:
    """Instrument ``fn`` (annotated with ``# ccc:`` directives).

    Returns a new function with the same signature, compiled in the same
    global namespace.
    """
    try:
        source = inspect.getsource(fn)
    except OSError as exc:  # pragma: no cover - interactive definitions
        raise TransformError(f"cannot read source of {fn.__name__}: {exc}")
    source = textwrap.dedent(source)
    processed, n_directives = preprocess(source)
    tree = ast.parse(processed)
    funcdef = tree.body[0]
    if not isinstance(funcdef, ast.FunctionDef):
        raise TransformError("instrument() expects a plain function")
    # strip decorators so instrumenting a decorated definition cannot recurse
    funcdef.decorator_list = []
    args = [a.arg for a in funcdef.args.args]
    if not args or args[0] != "ctx":
        raise TransformError(
            f"{fn.__name__} must take 'ctx' as its first parameter"
        )

    # ---- collect save() directives and the setup boundary ------------------
    saved: Set[str] = set()
    setup_end_idx: Optional[int] = None
    body: List[ast.stmt] = []
    for stmt in funcdef.body:
        if _is_sentinel_call(stmt, SENTINEL_SAVE):
            for arg in stmt.value.args:
                saved.add(arg.value)
            continue
        if _is_sentinel_call(stmt, SENTINEL_SETUP_END):
            if setup_end_idx is not None:
                raise TransformError("duplicate ccc: setup-end")
            setup_end_idx = len(body)
            continue
        body.append(stmt)
    if saved & {"ctx"}:
        raise TransformError("'ctx' cannot be a saved variable")

    # ---- setup guard ----------------------------------------------------------
    if setup_end_idx is not None:
        start = 0
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            start = 1  # keep the docstring outside the guard
        setup = body[start:setup_end_idx]
        rest = body[setup_end_idx:]
        if not setup:
            raise TransformError("ccc: setup-end with an empty setup section")
        # Locals assigned in the setup but not saved would be undefined
        # after a restart (the guard skips the section).
        leaked = (_assigned_names(setup) - saved) - {"_"}
        used_later = {
            node.id for stmt in rest for node in ast.walk(stmt)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        leaked &= used_later
        if leaked:
            raise TransformError(
                "setup section assigns variables that are used later but "
                f"not saved: {sorted(leaked)} — add them to ccc: save(...)"
            )
        guard_name = "__setup__"
        guard = ast.If(
            test=ast.Call(
                func=ast.Attribute(value=ast.Name(id="ctx", ctx=ast.Load()),
                                   attr="first_time", ctx=ast.Load()),
                args=[ast.Constant(value=guard_name)], keywords=[]),
            body=setup + [ast.Expr(value=ast.Call(
                func=ast.Attribute(value=ast.Name(id="ctx", ctx=ast.Load()),
                                   attr="done", ctx=ast.Load()),
                args=[ast.Constant(value=guard_name)], keywords=[]))],
            orelse=[],
        )
        body = body[:start] + [guard] + rest

    funcdef.body = body

    # ---- loop + state rewrites ---------------------------------------------------
    _LoopRewriter().visit(funcdef)
    if saved:
        rewriter = _StateRewriter(saved)
        funcdef.body = [rewriter.visit(stmt) for stmt in funcdef.body]

    ast.fix_missing_locations(tree)
    code = compile(tree, filename=f"<ccc:{fn.__name__}>", mode="exec")
    namespace = dict(fn.__globals__)
    exec(code, namespace)
    instrumented = namespace[funcdef.name]
    instrumented.__ccc_saved__ = sorted(saved)
    instrumented.__ccc_directives__ = n_directives
    instrumented.__wrapped__ = fn
    return instrumented
