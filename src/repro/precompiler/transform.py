"""AST instrumentation: the compile-time half of Figure 1.

:func:`instrument` takes a plain Python function annotated with ``# ccc:``
directives and produces the self-checkpointing equivalent a C3 user would
get from the precompiler:

* saved variables live in ``ctx.state`` (reads and writes are redirected,
  scope-aware: comprehension targets and lambda parameters that shadow a
  saved name stay local), so the runtime's state description always
  covers them;
* the one-time setup section is wrapped in a replay guard and skipped
  after a restart;
* marked loops resume from the checkpointed iteration — ``for`` loops
  over ``range`` through ``ctx.range``, ``while`` loops through
  ``ctx.while_range``; marked loops nest, and the persisted counters are
  the checkpoint's loop-position stack;
* ``# ccc: call`` assignments become call-guards: the call runs once per
  job, its targets are saved, restarted runs reuse the result;
* ``# ccc: checkpoint`` lines become ``ctx.checkpoint()`` pragma calls.

The instrumented function must take ``ctx`` as its first parameter (the
runtime context plays the role of C3's utility-library handle).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable, List, Optional, Set

from .directives import (
    DirectiveError, SENTINEL_CALL, SENTINEL_LOOP, SENTINEL_SAVE,
    SENTINEL_SETUP_END, SENTINELS, preprocess,
)


class TransformError(Exception):
    """The function cannot be instrumented as written."""


def _is_sentinel_call(node: ast.stmt, name: str) -> bool:
    return (isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id == name)


def _ctx_method(attr: str) -> ast.Attribute:
    return ast.Attribute(value=ast.Name(id="ctx", ctx=ast.Load()),
                         attr=attr, ctx=ast.Load())


def _guard_if(key: str, body: List[ast.stmt]) -> ast.If:
    """``if ctx.first_time(key): <body>; ctx.done(key)``."""
    return ast.If(
        test=ast.Call(func=_ctx_method("first_time"),
                      args=[ast.Constant(value=key)], keywords=[]),
        body=body + [ast.Expr(value=ast.Call(
            func=_ctx_method("done"),
            args=[ast.Constant(value=key)], keywords=[]))],
        orelse=[],
    )


def _is_marked_loop(node: ast.For) -> bool:
    """Is this For already a resumable loop (``ctx.range``/``while_range``)?"""
    it = node.iter
    return (isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in ("range", "while_range")
            and isinstance(it.func.value, ast.Name)
            and it.func.value.id == "ctx")


def _lambda_params(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


class _StateRewriter(ast.NodeTransformer):
    """Redirect saved-variable reads/writes to ``ctx.state``, scope-aware.

    Comprehensions and lambdas open a new scope: names they bind shadow a
    saved variable for their whole subtree (rewriting a comprehension
    target to an attribute would not even compile), while free names
    inside them still resolve to ``ctx.state``.  The first generator's
    iterable and lambda defaults evaluate in the enclosing scope, exactly
    like Python itself scopes them.
    """

    def __init__(self, saved: Set[str]):
        self.saved = saved

    def visit_Name(self, node: ast.Name):
        if node.id in self.saved:
            return ast.copy_location(
                ast.Attribute(
                    value=ast.Attribute(
                        value=ast.Name(id="ctx", ctx=ast.Load()),
                        attr="state", ctx=ast.Load()),
                    attr=node.id, ctx=node.ctx),
                node)
        return node

    def _visit_comprehension(self, node):
        bound: Set[str] = set()
        for gen in node.generators:
            bound |= {n.id for n in ast.walk(gen.target)
                      if isinstance(n, ast.Name)}
        inner = _StateRewriter(self.saved - bound)
        for i, gen in enumerate(node.generators):
            # the first iterable is evaluated in the enclosing scope
            gen.iter = (self if i == 0 else inner).visit(gen.iter)
            gen.ifs = [inner.visit(c) for c in gen.ifs]
        if isinstance(node, ast.DictComp):
            node.key = inner.visit(node.key)
            node.value = inner.visit(node.value)
        else:
            node.elt = inner.visit(node.elt)
        return node

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Lambda(self, node: ast.Lambda):
        # defaults evaluate in the enclosing scope
        node.args.defaults = [self.visit(d) for d in node.args.defaults]
        node.args.kw_defaults = [self.visit(d) if d is not None else None
                                 for d in node.args.kw_defaults]
        inner = _StateRewriter(self.saved - _lambda_params(node.args))
        node.body = inner.visit(node.body)
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef):
        raise TransformError(
            "nested function definitions are not supported by the "
            "precompiler (the paper's restricted-C analog)"
        )

    visit_AsyncFunctionDef = visit_FunctionDef


class _DirectiveApplier(ast.NodeTransformer):
    """Consume loop/call sentinels, rewriting the statement that follows.

    Every statement *list* is walked — function body, ``for``/``while``
    bodies and else-arms, ``if`` arms, ``with`` bodies, and all four arms
    of ``try`` (body, every handler, else, finally) — so a directive is
    honoured wherever a statement is legal, instead of leaking its
    sentinel to runtime as a ``NameError``.
    """

    def __init__(self):
        #: names that became saved variables via ``ccc: call`` guards
        self.call_saved: Set[str] = set()
        #: depth of enclosing *unmarked* loops — a resumable loop inside
        #: one cannot work: the runtime's completion tokens key on the
        #: enclosing marked-loop position, which an unmarked loop hides
        self._unmarked_loops = 0
        #: loop names already used — counters and completion tokens are
        #: keyed by name, so a reused name would alias two loops' state
        #: (silently skipping the later one, or corrupting the counter)
        self._loop_names: Set[str] = set()

    # -- statement-list handling -------------------------------------------
    def _transform_body(self, body: List[ast.stmt]) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        pending_loop: Optional[str] = None
        pending_call: Optional[str] = None
        for stmt in body:
            if (_is_sentinel_call(stmt, SENTINEL_LOOP)
                    or _is_sentinel_call(stmt, SENTINEL_CALL)):
                if pending_loop is not None or pending_call is not None:
                    raise TransformError(
                        "two ccc directives in a row: each loop/call "
                        "directive must be followed by the statement it "
                        "applies to"
                    )
                arg = stmt.value.args[0].value
                if _is_sentinel_call(stmt, SENTINEL_LOOP):
                    pending_loop = arg
                else:
                    pending_call = arg
                continue
            if pending_loop is not None:
                if pending_loop in self._loop_names:
                    raise TransformError(
                        f"duplicate ccc: loop name {pending_loop!r}: loop "
                        "counters and completion tokens are keyed by name, "
                        "so every resumable loop needs its own"
                    )
                self._loop_names.add(pending_loop)
                if self._unmarked_loops:
                    raise TransformError(
                        f"ccc: loop({pending_loop}) is nested inside an "
                        "unmarked loop; every enclosing loop of a "
                        "resumable loop must carry its own ccc: loop "
                        "directive (the loop-position stack must be "
                        "complete)"
                    )
                if isinstance(stmt, ast.For):
                    stmt = self._rewrite_for(stmt, pending_loop)
                elif isinstance(stmt, ast.While):
                    stmt = self._rewrite_while(stmt, pending_loop)
                else:
                    raise TransformError(
                        f"ccc: loop({pending_loop}) must be followed by a "
                        "for or while statement"
                    )
                pending_loop = None
            elif pending_call is not None:
                stmt = self._rewrite_call(stmt, pending_call)
                pending_call = None
            stmt = self.visit(stmt)
            out.append(stmt)
        if pending_loop is not None:
            raise TransformError(
                f"ccc: loop({pending_loop}) has no following loop statement")
        if pending_call is not None:
            raise TransformError(
                f"ccc: call({pending_call}) has no following assignment")
        return out

    # -- the rewrites -------------------------------------------------------
    def _rewrite_for(self, node: ast.For, name: str) -> ast.For:
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise TransformError(
                f"ccc: loop({name}) requires 'for ... in range(...)'"
            )
        new_iter = ast.Call(
            func=_ctx_method("range"),
            args=[ast.Constant(value=name)] + it.args,
            keywords=it.keywords,
        )
        node.iter = ast.copy_location(new_iter, it)
        return node

    def _rewrite_while(self, node: ast.While, name: str) -> ast.For:
        """``while cond:`` -> a resumable counting loop re-testing cond.

        The condition (over saved state, after the state rewrite) is
        re-evaluated at the top of every iteration, including the first
        one after a restart; the persisted counter makes the loop part
        of the checkpoint's loop-position stack.
        """
        if node.orelse:
            raise TransformError(
                f"ccc: loop({name}) does not support while/else"
            )
        guard = ast.If(
            test=ast.UnaryOp(op=ast.Not(), operand=node.test),
            body=[ast.Break()], orelse=[])
        new = ast.For(
            target=ast.Name(id=f"__ccc_while_{name}", ctx=ast.Store()),
            iter=ast.Call(func=_ctx_method("while_range"),
                          args=[ast.Constant(value=name)], keywords=[]),
            body=[guard] + node.body,
            orelse=[],
        )
        return ast.copy_location(new, node)

    def _rewrite_call(self, stmt: ast.stmt, name: str) -> ast.If:
        """``x = f(...)`` -> a once-per-job call-guard saving ``x``."""
        targets: List[str] = []
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            for t in stmt.targets:
                elts = t.elts if isinstance(t, (ast.Tuple, ast.List)) else [t]
                if not all(isinstance(e, ast.Name) for e in elts):
                    targets = []
                    break
                targets.extend(e.id for e in elts)
        if not targets:
            raise TransformError(
                f"ccc: call({name}) must be followed by an assignment of a "
                "function-call result to plain variables"
            )
        self.call_saved.update(targets)
        return ast.copy_location(_guard_if(f"call_{name}", [stmt]), stmt)

    # -- statement-list owners ---------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef):
        node.body = self._transform_body(node.body)
        return node

    def visit_For(self, node: ast.For):
        marked = _is_marked_loop(node)
        self._unmarked_loops += 0 if marked else 1
        try:
            node.body = self._transform_body(node.body)
            node.orelse = self._transform_body(node.orelse)
        finally:
            self._unmarked_loops -= 0 if marked else 1
        return node

    def visit_While(self, node: ast.While):
        # a marked while was already rewritten into a For over
        # ctx.while_range, so any While reaching here is unmarked
        self._unmarked_loops += 1
        try:
            node.body = self._transform_body(node.body)
            node.orelse = self._transform_body(node.orelse)
        finally:
            self._unmarked_loops -= 1
        return node

    def visit_If(self, node: ast.If):
        node.body = self._transform_body(node.body)
        node.orelse = self._transform_body(node.orelse)
        return node

    def visit_With(self, node: ast.With):
        node.body = self._transform_body(node.body)
        return node

    def visit_Try(self, node: ast.Try):
        node.body = self._transform_body(node.body)
        for handler in node.handlers:
            handler.body = self._transform_body(handler.body)
        node.orelse = self._transform_body(node.orelse)
        node.finalbody = self._transform_body(node.finalbody)
        return node

    visit_TryStar = visit_Try  # py3.11+ except* blocks


def _assigned_names(stmts: List[ast.stmt]) -> Set[str]:
    """Names a statement list binds in the *function* scope.

    Comprehension targets are their own scope in Python 3 — they never
    leak into the function — so their Store nodes are excluded (by node
    identity: the same name may legitimately also be assigned by a real
    statement).
    """
    comp_target_ids: Set[int] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for gen in node.generators:
                    comp_target_ids.update(id(n) for n in ast.walk(gen.target))
    names: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store)
                    and id(node) not in comp_target_ids):
                names.add(node.id)
    return names


def instrument(fn: Callable) -> Callable:
    """Instrument ``fn`` (annotated with ``# ccc:`` directives).

    Returns a new function with the same signature, compiled in the same
    global namespace.
    """
    try:
        source = inspect.getsource(fn)
    except OSError as exc:  # pragma: no cover - interactive definitions
        raise TransformError(f"cannot read source of {fn.__name__}: {exc}")
    source = textwrap.dedent(source)
    processed, n_directives = preprocess(source)
    tree = ast.parse(processed)
    funcdef = tree.body[0]
    if not isinstance(funcdef, ast.FunctionDef):
        raise TransformError("instrument() expects a plain function")
    # strip decorators so instrumenting a decorated definition cannot recurse
    funcdef.decorator_list = []
    args = [a.arg for a in funcdef.args.args]
    if not args or args[0] != "ctx":
        raise TransformError(
            f"{fn.__name__} must take 'ctx' as its first parameter"
        )

    # ---- collect save() directives and the setup boundary ------------------
    saved: Set[str] = set()
    setup_end_idx: Optional[int] = None
    body: List[ast.stmt] = []
    for stmt in funcdef.body:
        if _is_sentinel_call(stmt, SENTINEL_SAVE):
            for arg in stmt.value.args:
                saved.add(arg.value)
            continue
        if _is_sentinel_call(stmt, SENTINEL_SETUP_END):
            if setup_end_idx is not None:
                raise TransformError("duplicate ccc: setup-end")
            setup_end_idx = len(body)
            continue
        body.append(stmt)

    # ---- setup guard ----------------------------------------------------------
    if setup_end_idx is not None:
        start = 0
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            start = 1  # keep the docstring outside the guard
        setup = body[start:setup_end_idx]
        rest = body[setup_end_idx:]
        if not setup:
            raise TransformError("ccc: setup-end with an empty setup section")
        # Locals assigned in the setup but not saved would be undefined
        # after a restart (the guard skips the section).
        leaked = (_assigned_names(setup) - saved) - {"_"}
        used_later = {
            node.id for stmt in rest for node in ast.walk(stmt)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        leaked &= used_later
        if leaked:
            raise TransformError(
                "setup section assigns variables that are used later but "
                f"not saved: {sorted(leaked)} — add them to ccc: save(...)"
            )
        guard = _guard_if("__setup__", setup)
        body = body[:start] + [guard] + rest

    funcdef.body = body

    # ---- loop/call directives, then the state rewrite -------------------------
    applier = _DirectiveApplier()
    applier.visit(funcdef)
    saved |= applier.call_saved
    if "ctx" in saved:
        raise TransformError("'ctx' cannot be a saved variable")
    if saved:
        rewriter = _StateRewriter(saved)
        funcdef.body = [rewriter.visit(stmt) for stmt in funcdef.body]

    # Any sentinel that survived sits somewhere the transform does not
    # support (e.g. a save() below the first statement) — fail at compile
    # time rather than leaking a NameError into the run.
    for node in ast.walk(funcdef):
        if isinstance(node, ast.Name) and node.id in SENTINELS:
            raise TransformError(
                f"ccc directive in an unsupported position "
                f"(line {node.lineno}): save/setup-end must head the "
                "function body; loop/call must precede a statement"
            )

    ast.fix_missing_locations(tree)
    code = compile(tree, filename=f"<ccc:{fn.__name__}>", mode="exec")
    namespace = dict(fn.__globals__)
    exec(code, namespace)
    instrumented = namespace[funcdef.name]
    instrumented.__ccc_saved__ = sorted(saved)
    instrumented.__ccc_directives__ = n_directives
    instrumented.__wrapped__ = fn
    return instrumented
