"""The C3 (pre)compiler: source-to-source instrumentation (Figure 1)."""

from .directives import DirectiveError, preprocess
from .transform import TransformError, instrument

__all__ = ["instrument", "preprocess", "DirectiveError", "TransformError"]
