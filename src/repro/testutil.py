"""Helpers shared by the test-suite (and usable by downstream tests).

``run`` executes a job on the TESTING machine model and raises on any
application error, so protocol/test failures surface as tracebacks
instead of silent None returns.
"""

from __future__ import annotations

from .mpi import TESTING, run_job


def run(nprocs, main, **kw):
    """Run a job; fail loudly on any rank error; return the JobResult."""
    result = run_job(nprocs, main, machine=kw.pop("machine", TESTING),
                     wall_timeout=kw.pop("wall_timeout", 60.0), **kw)
    result.raise_errors()
    return result
