"""Chandy-Lamport distributed snapshots (the classic SLC protocol).

Included as the system-level comparison point the paper argues against
(Section 2.2): Chandy-Lamport *schedules* checkpoints — a process must
snapshot before consuming any post-snapshot message, which is possible
for system-level checkpointing (snapshot anywhere) but impossible at the
application level, where a process may need to receive an early message
before it can reach a pragma.

This implementation runs over the raw simulated MPI with marker messages
on a dedicated tag.  It assumes the FIFO consumption discipline the
protocol requires: the demo applications used with it consume messages in
per-channel order.  It demonstrates (in tests) both that the classic
protocol produces a consistent cut under those assumptions, and why its
assumptions break for MPI programs that reorder by tag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mpi.api import MPI
from ..mpi.engine import run_job
from ..mpi.matching import ANY_SOURCE
from ..mpi.timemodel import MachineModel, TESTING

MARKER_TAG = (1 << 24) - 2


@dataclass
class ChannelState:
    """In-flight messages recorded for one incoming channel."""

    recording: bool = False
    messages: List[bytes] = field(default_factory=list)


class ChandyLamport:
    """Per-rank snapshot engine; wrap sends/recvs of a demo app through it."""

    def __init__(self, mpi: MPI):
        self.mpi = mpi
        self.comm = mpi.COMM_WORLD
        self.rank = mpi.rank
        self.nprocs = mpi.size
        self.snapshot: Optional[bytes] = None
        self.channels: Dict[int, ChannelState] = {
            q: ChannelState() for q in range(self.nprocs) if q != self.rank
        }
        self.markers_received = 0
        self._state_fn: Optional[Callable[[], bytes]] = None

    def bind_state(self, state_fn: Callable[[], bytes]) -> None:
        """``state_fn`` returns the process state bytes to snapshot."""
        self._state_fn = state_fn

    # -- protocol ------------------------------------------------------------
    def initiate(self) -> None:
        """Rule: record own state, then send markers on all channels."""
        self._take_local_snapshot()

    def _take_local_snapshot(self) -> None:
        assert self._state_fn is not None, "bind_state() first"
        self.snapshot = self._state_fn()
        for ch in self.channels.values():
            ch.recording = True
        marker = np.zeros(1, dtype=np.uint8)
        for q in range(self.nprocs):
            if q != self.rank:
                self.comm.Send(marker, dest=q, tag=MARKER_TAG)

    def on_marker(self, source: int) -> None:
        """Marker rule: first marker triggers the snapshot; each marker
        closes its channel's recording."""
        if self.snapshot is None:
            self._take_local_snapshot()
        self.channels[source].recording = False
        self.markers_received += 1

    def on_message(self, source: int, payload: bytes) -> None:
        """Record an in-flight (pre-marker-channel) message."""
        ch = self.channels.get(source)
        if ch is not None and ch.recording:
            ch.messages.append(payload)

    def poll_markers(self) -> None:
        """Drain pending markers (call between application operations)."""
        while True:
            flag, status = self.comm.Iprobe(source=ANY_SOURCE, tag=MARKER_TAG)
            if not flag:
                return
            buf = np.zeros(1, dtype=np.uint8)
            st = self.comm.Recv(buf, source=status.source, tag=MARKER_TAG)
            self.on_marker(st.source)

    @property
    def complete(self) -> bool:
        """Snapshot done: own state taken and all channels closed."""
        return (self.snapshot is not None
                and self.markers_received == self.nprocs - 1)

    def channel_messages(self) -> Dict[int, List[bytes]]:
        return {q: list(ch.messages) for q, ch in self.channels.items()}
