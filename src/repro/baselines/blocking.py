"""Blocking coordinated checkpointing baseline.

The classic alternative C3 argues against: stop the world at a global
barrier, drain the network, snapshot every process, barrier again, and
continue.  Correct and simple — but every checkpoint costs two global
barriers plus the full synchronization stall of the slowest process, and
it *requires* the application to reach global barriers, which HPL and
most of the NAS benchmarks do not do outside initialization (Section 1).

The baseline installs a pragma hook that performs the blocking protocol,
so it runs the same instrumented applications as C3; the ablation bench
compares its stall time against C3's non-blocking overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..mpi.api import MPI
from ..mpi.engine import JobResult, run_job
from ..mpi.timemodel import MachineModel, TESTING
from ..statesave.checkpointfile import CheckpointWriter
from ..statesave.context import Context
from ..storage.stable import InMemoryStorage, StorageBackend
from ..core.protocol import SERIALIZE_BANDWIDTH


@dataclass
class BlockingStats:
    checkpoints: int = 0
    barrier_stall: float = 0.0   # virtual seconds spent in the two barriers
    checkpoint_bytes: int = 0


class BlockingCheckpointer:
    """Barrier-coordinated checkpointing of the application state."""

    def __init__(self, mpi: MPI, storage: StorageBackend,
                 interval_pragmas: Optional[int] = None,
                 save_to_disk: bool = True):
        # A timer cannot drive a *blocking* protocol: per-rank clocks drift,
        # so one rank would enter the barrier while another does not — the
        # coordination problem C3's non-blocking protocol exists to solve.
        # The blocking baseline therefore triggers on the pragma COUNT,
        # which is aligned across ranks for collectively-structured codes
        # (and is why blocking checkpointing needs global barriers at all).
        self.mpi = mpi
        self.storage = storage
        self.interval_pragmas = interval_pragmas
        self.save_to_disk = save_to_disk
        self.ctx: Optional[Context] = None
        self.stats = BlockingStats()
        self._pragmas = 0
        self._version = 0

    def bind(self, ctx: Context) -> None:
        self.ctx = ctx

    def pragma(self, force: bool = False) -> None:
        self._pragmas += 1
        if not force and (self.interval_pragmas is None
                          or self._pragmas % self.interval_pragmas != 0):
            return
        comm = self.mpi.COMM_WORLD
        t0 = self.mpi.Wtime()
        comm.Barrier()           # drain: everyone reaches the same point
        self._version += 1
        writer = CheckpointWriter(self.storage, self._version, self.mpi.rank,
                                  dry_run=not self.save_to_disk)
        writer.save("app", self.ctx.snapshot_state())
        self.mpi.compute(writer.bytes_written / SERIALIZE_BANDWIDTH)
        if self.save_to_disk:
            self.mpi.compute(
                self.mpi._ctx.machine.disk_write_time(writer.bytes_written))
        writer.commit()
        comm.Barrier()           # nobody proceeds until every rank committed
        self.stats.checkpoints += 1
        self.stats.barrier_stall += self.mpi.Wtime() - t0
        self.stats.checkpoint_bytes = writer.bytes_written


def _blocking_main(mpi: MPI, app: Callable, storage: StorageBackend,
                   interval_pragmas: Optional[int], save_to_disk: bool,
                   app_args: Tuple):
    ckpt = BlockingCheckpointer(mpi, storage,
                                interval_pragmas=interval_pragmas,
                                save_to_disk=save_to_disk)
    ctx = Context(mpi, pragma_hook=ckpt.pragma)
    ckpt.bind(ctx)
    result = app(ctx, *app_args)
    return result, ckpt.stats


def run_blocking(app: Callable, nprocs: int, machine: MachineModel = TESTING,
                 storage: Optional[StorageBackend] = None,
                 interval_pragmas: Optional[int] = None,
                 save_to_disk: bool = True,
                 app_args: Tuple = (), wall_timeout: float = 300.0
                 ) -> Tuple[JobResult, List[Optional[BlockingStats]]]:
    """Run an instrumented app under blocking coordinated checkpointing."""
    storage = storage if storage is not None else InMemoryStorage()
    result = run_job(nprocs, _blocking_main,
                     args=(app, storage, interval_pragmas, save_to_disk,
                           app_args),
                     machine=machine, wall_timeout=wall_timeout)
    stats: List[Optional[BlockingStats]] = []
    returns = []
    for r in result.returns:
        if isinstance(r, tuple) and len(r) == 2 and isinstance(r[1], BlockingStats):
            returns.append(r[0])
            stats.append(r[1])
        else:
            returns.append(None)
            stats.append(None)
    result.returns = returns
    return result, stats
