"""Condor-style system-level checkpointing (the Table-1 comparator).

Condor takes core-dump-style snapshots of a *sequential* process: the
entire process image — text/static segment, the whole heap extent
(including freed-but-held allocator space), and the stack — is written as
one blob.  C3, being application-level, saves only the live data the
runtime registry describes.  Table 1 compares the resulting file sizes on
uniprocessor runs; this module reproduces both sides of that comparison
over the simulated process image of :mod:`repro.statesave.heap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..statesave.context import Context
from ..statesave.serializer import dumps
from ..storage.stable import StorageBackend


@dataclass
class ImageSizes:
    """Byte accounting of one checkpoint, both ways."""

    condor_bytes: int
    c3_bytes: int

    @property
    def reduction(self) -> float:
        """Relative amount C3 checkpoints are smaller (Table 1 'Reduction')."""
        if self.condor_bytes == 0:
            return 0.0
        return 1.0 - self.c3_bytes / self.condor_bytes


#: C3 per-checkpoint metadata (registry descriptions, counters, tables)
C3_METADATA_BYTES = 24 << 10
#: Condor's own runtime (checkpoint library, signal trampolines) mapped
#: into the image
CONDOR_RUNTIME_BYTES = 350 << 10


def measure_sizes(ctx: Context,
                  condor_runtime_bytes: int = CONDOR_RUNTIME_BYTES,
                  c3_metadata_bytes: int = C3_METADATA_BYTES) -> ImageSizes:
    """Checkpoint-size accounting for the current application state.

    The byte constants are parameters so scaled-down experiments (Table 1
    reproduces sizes at 1/100 footprint) can scale them consistently.
    """
    heap = ctx.heap
    condor = (heap.image_bytes            # static segment + heap extent + stack
              + ctx.state.nbytes          # state arrays live in the heap image
              + condor_runtime_bytes)
    c3 = ctx.state.nbytes + heap.live_bytes + c3_metadata_bytes
    return ImageSizes(condor_bytes=condor, c3_bytes=c3)


class CondorCheckpointer:
    """A minimal sequential SLC engine over a storage backend.

    Used by the durability tests: ``snapshot`` writes the whole image,
    ``restore`` brings back every byte — including the freed heap space
    that an application-level checkpoint would never have saved.
    """

    def __init__(self, storage: StorageBackend, job_name: str = "condor"):
        self.storage = storage
        self.job_name = job_name
        self._version = 0

    def snapshot(self, ctx: Context) -> int:
        """Write a full-image checkpoint; returns its size in bytes."""
        self._version += 1
        image = {
            "state": ctx.state.to_dict(),
            "heap": ctx.heap.snapshot(),
            # the parts an SLC system cannot avoid saving:
            "static_segment_padding": bytes(
                min(ctx.heap.static_segment_bytes, 1 << 16)),
            "freed_extent": ctx.heap.image_bytes - ctx.heap.live_bytes,
        }
        payload = dumps(image)
        self.storage.write(f"{self.job_name}/v{self._version}.img", payload)
        return len(payload)

    def restore(self, ctx: Context, version: Optional[int] = None) -> None:
        v = version if version is not None else self._version
        payload = self.storage.read(f"{self.job_name}/v{v}.img")
        from ..statesave.serializer import loads
        from ..statesave.heap import SimHeap
        image = loads(payload)
        ctx.state.replace_all(image["state"])
        ctx.heap = SimHeap.from_snapshot(image["heap"])
        ctx.restored = True
