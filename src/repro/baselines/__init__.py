"""Baseline checkpointing systems the paper compares against or argues from."""

from .blocking import BlockingCheckpointer, BlockingStats, run_blocking
from .chandy_lamport import ChandyLamport, MARKER_TAG
from .condor import (
    C3_METADATA_BYTES, CONDOR_RUNTIME_BYTES, CondorCheckpointer, ImageSizes,
    measure_sizes,
)

__all__ = [
    "run_blocking", "BlockingCheckpointer", "BlockingStats",
    "ChandyLamport", "MARKER_TAG",
    "CondorCheckpointer", "ImageSizes", "measure_sizes",
    "C3_METADATA_BYTES", "CONDOR_RUNTIME_BYTES",
]
