"""Epochs, message classification, and piggyback codecs.

Execution is divided into *epochs* separated by recovery lines; taking
checkpoint *k* moves a process from epoch *k-1* to epoch *k*.  Comparing
the sender's epoch (piggybacked on every message) with the receiver's
classifies a message (Definition 1):

* **late** — sender epoch < receiver epoch,
* **intra-epoch** — equal,
* **early** — sender epoch > receiver epoch.

Because a message crosses at most one recovery line, epochs at the two
ends differ by at most one, so the full epoch integer can be replaced by
its value mod 3 — a 2-bit "color" — plus one bit for "the sender has
stopped logging non-deterministic events": 3 piggybacked bits total
(Section 3.2).  The codec is deliberately separated from the protocol
(Section 4.5, last bullet) so the wire encoding can be swapped; the
``FULL`` codec piggybacks the whole epoch and is used by the piggyback
ablation bench.

Paper mapping
-------------
* Definition 1 (Section 3.1) — :func:`classify` and the
  ``LATE``/``INTRA``/``EARLY`` constants;
* Section 3.2 — :class:`ThreeBitCodec` (the 2-bit epoch color + 1
  stopped-logging bit piggybacked on every message);
* Section 4.5 — :class:`FullCodec`, the swappable-wire-encoding ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .modes import ProtocolError

LATE = "late"
INTRA = "intra"
EARLY = "early"


def classify(sender_epoch: int, receiver_epoch: int) -> str:
    """Definition 1, given both true epoch numbers."""
    if abs(sender_epoch - receiver_epoch) > 1:
        raise ProtocolError(
            f"message crosses more than one recovery line: sender epoch "
            f"{sender_epoch}, receiver epoch {receiver_epoch}"
        )
    if sender_epoch < receiver_epoch:
        return LATE
    if sender_epoch > receiver_epoch:
        return EARLY
    return INTRA


@dataclass(frozen=True)
class Piggyback:
    """Decoded piggyback contents."""

    sender_epoch: int
    stopped_logging: bool


class ThreeBitCodec:
    """The paper's 3-bit encoding: 2-bit epoch color + 1 logging bit.

    On the (byte-oriented) wire this occupies 1 byte.
    """

    nbytes = 1

    def encode(self, epoch: int, stopped_logging: bool) -> int:
        return ((epoch % 3) << 1) | (1 if stopped_logging else 0)

    def decode(self, value: int, receiver_epoch: int) -> Piggyback:
        color = (value >> 1) & 0b11
        if color > 2:
            raise ProtocolError(f"invalid epoch color {color}")
        stopped = bool(value & 1)
        # The sender's epoch is the unique member of
        # {receiver-1, receiver, receiver+1} with the observed color.
        for delta in (-1, 0, 1):
            epoch = receiver_epoch + delta
            if epoch >= 0 and epoch % 3 == color:
                return Piggyback(sender_epoch=epoch, stopped_logging=stopped)
        raise ProtocolError(
            f"no epoch within one recovery line of {receiver_epoch} has "
            f"color {color}"
        )


class FullCodec:
    """Ablation codec: piggybacks the whole epoch (8 bytes) + mode byte."""

    nbytes = 9

    def encode(self, epoch: int, stopped_logging: bool) -> int:
        return (epoch << 1) | (1 if stopped_logging else 0)

    def decode(self, value: int, receiver_epoch: int) -> Piggyback:
        epoch = value >> 1
        if abs(epoch - receiver_epoch) > 1:
            raise ProtocolError(
                f"message crosses more than one recovery line: sender epoch "
                f"{epoch}, receiver epoch {receiver_epoch}"
            )
        return Piggyback(sender_epoch=epoch, stopped_logging=bool(value & 1))


CODECS = {"3bit": ThreeBitCodec(), "full": FullCodec()}


@dataclass(frozen=True)
class WirePiggyback:
    """What actually rides on an envelope: encoded value + wire size."""

    value: int
    nbytes: int
