"""Datatype handle table (Section 4.2).

The protocol stores, for every datatype the application constructs, both
the runtime datatype object and the information used to create it, so all
datatypes can be recreated before execution resumes after a restart.

Datatypes nest (a hierarchy of types); the table tracks the dependency
edges and defers the *table entry's* deletion until the entry and every
type depending on it have been freed — while the runtime datatype object
itself is freed immediately, so the MPI layer's resource usage matches a
non-fault-tolerant run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..mpi import datatypes as dt
from .modes import ProtocolError

#: pseudo-ids for the named (predefined) types: negative, never in the table
_NAMED_IDS = {name: -(i + 1) for i, name in enumerate(sorted(dt.NAMED_TYPES))}
_IDS_NAMED = {v: k for k, v in _NAMED_IDS.items()}


def named_id(name: str) -> int:
    try:
        return _NAMED_IDS[name]
    except KeyError:
        raise ProtocolError(f"unknown named datatype {name!r}") from None


@dataclass
class DatatypeEntry:
    handle: int
    recipe: dict                # constructor kind + parameters
    child_handles: List[int]    # table ids (or negative named ids)
    obj: Optional[dt.Datatype]  # live runtime object (None once freed)
    committed: bool = False
    freed: bool = False


class C3DatatypeHandle:
    """What the application holds; behaves like a datatype handle."""

    __slots__ = ("handle", "_table")

    def __init__(self, handle: int, table: "DatatypeTable"):
        self.handle = handle
        self._table = table

    def Commit(self) -> "C3DatatypeHandle":
        self._table.commit(self.handle)
        return self

    def Free(self) -> None:
        self._table.free(self.handle)

    @property
    def name(self) -> str:
        return self._table.resolve(self.handle).name


class DatatypeTable:
    """Indirection table for derived datatypes with recreation support."""

    def __init__(self):
        self._entries: Dict[int, DatatypeEntry] = {}
        self._next_id = 1

    # -- handle resolution ------------------------------------------------------
    def resolve(self, handle) -> dt.Datatype:
        """Map a handle (C3 handle object, table id, or named type) to the
        runtime datatype object."""
        if isinstance(handle, C3DatatypeHandle):
            handle = handle.handle
        if isinstance(handle, dt.NamedType):
            return handle
        if isinstance(handle, int):
            if handle < 0:
                return dt.NAMED_TYPES[_IDS_NAMED[handle]]
            entry = self._entry(handle)
            if entry.obj is None:
                raise ProtocolError(
                    f"datatype handle {handle} used after Free()"
                )
            return entry.obj
        raise ProtocolError(f"not a datatype handle: {handle!r}")

    def _entry(self, handle: int) -> DatatypeEntry:
        try:
            return self._entries[handle]
        except KeyError:
            raise ProtocolError(f"unknown datatype handle {handle}") from None

    def _handle_of(self, base) -> int:
        if isinstance(base, C3DatatypeHandle):
            return base.handle
        if isinstance(base, dt.NamedType):
            return named_id(base.name)
        if isinstance(base, int):
            return base
        raise ProtocolError(f"not a datatype handle: {base!r}")

    # -- constructors ---------------------------------------------------------------
    def create_contiguous(self, count: int, base) -> C3DatatypeHandle:
        base_h = self._handle_of(base)
        obj = dt.ContiguousType(count, self.resolve(base_h))
        return self._add({"kind": "contiguous", "count": count}, [base_h], obj)

    def create_vector(self, count: int, blocklength: int, stride: int,
                      base) -> C3DatatypeHandle:
        base_h = self._handle_of(base)
        obj = dt.VectorType(count, blocklength, stride, self.resolve(base_h))
        return self._add(
            {"kind": "vector", "count": count, "blocklength": blocklength,
             "stride": stride}, [base_h], obj)

    def create_indexed(self, blocklengths: Sequence[int],
                       displacements: Sequence[int], base) -> C3DatatypeHandle:
        base_h = self._handle_of(base)
        obj = dt.IndexedType(blocklengths, displacements, self.resolve(base_h))
        return self._add(
            {"kind": "indexed", "blocklengths": list(blocklengths),
             "displacements": list(displacements)}, [base_h], obj)

    def create_struct(self, blocklengths: Sequence[int],
                      displacements: Sequence[int],
                      types: Sequence) -> C3DatatypeHandle:
        handles = [self._handle_of(t) for t in types]
        obj = dt.StructType(blocklengths, displacements,
                            [self.resolve(h) for h in handles])
        return self._add(
            {"kind": "struct", "blocklengths": list(blocklengths),
             "displacements": list(displacements)}, handles, obj)

    def _add(self, recipe: dict, child_handles: List[int],
             obj: dt.Datatype) -> C3DatatypeHandle:
        entry = DatatypeEntry(self._next_id, recipe, child_handles, obj)
        self._entries[entry.handle] = entry
        self._next_id += 1
        return C3DatatypeHandle(entry.handle, self)

    # -- lifecycle ---------------------------------------------------------------------
    def commit(self, handle: int) -> None:
        entry = self._entry(handle)
        if entry.obj is None:
            raise ProtocolError(f"Commit on freed datatype {handle}")
        entry.obj.Commit()
        entry.committed = True

    def free(self, handle: int) -> None:
        """Free the runtime datatype now; drop the entry when safe."""
        entry = self._entry(handle)
        if entry.freed:
            raise ProtocolError(f"double Free of datatype {handle}")
        entry.freed = True
        if entry.obj is not None:
            entry.obj.Free()
            entry.obj = None
        self._collect()

    def _collect(self) -> None:
        """Drop freed entries on which no live table entry depends."""
        changed = True
        while changed:
            changed = False
            needed = set()
            for e in self._entries.values():
                for ch in e.child_handles:
                    if ch > 0:
                        needed.add(ch)
            for h in list(self._entries):
                e = self._entries[h]
                if e.freed and h not in needed:
                    del self._entries[h]
                    changed = True

    # -- checkpoint plumbing --------------------------------------------------------------
    def to_wire(self) -> dict:
        entries = []
        for e in sorted(self._entries.values(), key=lambda x: x.handle):
            entries.append({
                "handle": e.handle, "recipe": e.recipe,
                "children": list(e.child_handles),
                "committed": e.committed, "freed": e.freed,
            })
        return {"entries": entries, "next_id": self._next_id}

    def restore_wire(self, wire: dict) -> None:
        """Recreate every datatype, children first (ascending handles)."""
        self._entries.clear()
        for e in wire["entries"]:
            children = list(e["children"])
            objs = []
            for ch in children:
                if ch < 0:
                    objs.append(dt.NAMED_TYPES[_IDS_NAMED[ch]])
                else:
                    child_entry = self._entries.get(ch)
                    if child_entry is None:
                        raise ProtocolError(
                            f"datatype {e['handle']} depends on missing child {ch}"
                        )
                    # Recreate through the recipe even if the child was freed
                    # at checkpoint time: intermediate types must be
                    # reconstructible (Section 4.2).
                    objs.append(child_entry.obj or self._rebuild(child_entry))
            obj = self._build(e["recipe"], objs)
            if e["committed"]:
                obj.Commit()
            entry = DatatypeEntry(e["handle"], e["recipe"], children, obj,
                                  committed=e["committed"], freed=e["freed"])
            if e["freed"]:
                entry.obj.Free()
                entry.obj = None
            self._entries[e["handle"]] = entry
        self._next_id = wire["next_id"]

    def _rebuild(self, entry: DatatypeEntry) -> dt.Datatype:
        objs = []
        for ch in entry.child_handles:
            if ch < 0:
                objs.append(dt.NAMED_TYPES[_IDS_NAMED[ch]])
            else:
                child = self._entries[ch]
                objs.append(child.obj or self._rebuild(child))
        obj = self._build(entry.recipe, objs)
        obj.Commit()
        return obj

    @staticmethod
    def _build(recipe: dict, children: List[dt.Datatype]) -> dt.Datatype:
        kind = recipe["kind"]
        if kind == "contiguous":
            return dt.ContiguousType(recipe["count"], children[0])
        if kind == "vector":
            return dt.VectorType(recipe["count"], recipe["blocklength"],
                                 recipe["stride"], children[0])
        if kind == "indexed":
            return dt.IndexedType(recipe["blocklengths"],
                                  recipe["displacements"], children[0])
        if kind == "struct":
            return dt.StructType(recipe["blocklengths"],
                                 recipe["displacements"], children)
        raise ProtocolError(f"unknown datatype recipe kind {kind!r}")

    def __len__(self) -> int:
        return len(self._entries)
