"""The communicator surface applications see under C3.

:class:`C3Comm` mirrors the raw :class:`~repro.mpi.communicator.Communicator`
API but routes every call through the coordination layer.  Communicator
creation (``Dup``/``Split``/``Cart_create``) is recorded in the protocol's
communicator table so it can be replayed after a restart (Section 4.4);
datatype constructors go through the datatype table (Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..mpi.matching import ANY_SOURCE, ANY_TAG
from ..mpi.ops import Op
from ..mpi.status import Status
from . import collectives as coll
from .commtable import CommEntry
from .protocol import C3Protocol
from .reqtable import C3Request


class C3Comm:
    """Protocol-wrapped communicator handle."""

    def __init__(self, protocol: C3Protocol, entry: CommEntry):
        self._p = protocol
        self._entry = entry

    # -- identity --------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._entry.raw.rank

    @property
    def size(self) -> int:
        return self._entry.raw.size

    @property
    def context_id(self) -> int:
        return self._entry.raw.context_id

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    # -- point-to-point -----------------------------------------------------------
    def Send(self, buf, dest: int, tag: int = 0, datatype=None,
             count: Optional[int] = None) -> None:
        self._p.send(self._entry, buf, dest, tag, datatype=datatype,
                     count=count)

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype=None, status: Optional[Status] = None) -> Status:
        return self._p.recv(self._entry, buf, source=source, tag=tag,
                            datatype=datatype, status=status)

    def Isend(self, buf, dest: int, tag: int = 0, datatype=None,
              count: Optional[int] = None) -> C3Request:
        return self._p.isend(self._entry, buf, dest, tag, datatype=datatype,
                             count=count)

    def Irecv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              datatype=None) -> C3Request:
        return self._p.irecv(self._entry, buf, source=source, tag=tag,
                             datatype=datatype)

    def Sendrecv(self, sendbuf, dest: int, sendtag: int, recvbuf, source: int,
                 recvtag: int, status: Optional[Status] = None) -> Status:
        req = self.Irecv(recvbuf, source=source, tag=recvtag)
        self.Send(sendbuf, dest, sendtag)
        st = self._p.wait(req)
        if status is not None:
            status.__dict__.update(st.__dict__)
        return st

    # -- request completion ----------------------------------------------------------
    def Wait(self, request: C3Request) -> Status:
        return self._p.wait(request)

    def Test(self, request: C3Request) -> Tuple[bool, Optional[Status]]:
        return self._p.test(request)

    def Waitall(self, requests: Sequence[C3Request]) -> List[Status]:
        return self._p.waitall(list(requests))

    def Waitany(self, requests: Sequence[C3Request]) -> Tuple[int, Status]:
        return self._p.waitany(list(requests))

    def Waitsome(self, requests: Sequence[C3Request]) -> Tuple[List[int], List[Status]]:
        return self._p.waitsome(list(requests))

    # -- collectives --------------------------------------------------------------------
    def Barrier(self) -> None:
        coll.barrier(self._p, self._entry)

    def Bcast(self, buf, root: int = 0) -> None:
        coll.bcast(self._p, self._entry, buf, root=root)

    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        coll.gather(self._p, self._entry, sendbuf, recvbuf, root=root)

    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        coll.scatter(self._p, self._entry, sendbuf, recvbuf, root=root)

    def Allgather(self, sendbuf, recvbuf) -> None:
        coll.allgather(self._p, self._entry, sendbuf, recvbuf)

    def Alltoall(self, sendbuf, recvbuf) -> None:
        coll.alltoall(self._p, self._entry, sendbuf, recvbuf)

    def Reduce(self, sendbuf, recvbuf, op: Op, root: int = 0) -> None:
        coll.reduce(self._p, self._entry, sendbuf, recvbuf, op, root=root)

    def Allreduce(self, sendbuf, recvbuf, op: Op) -> None:
        coll.allreduce(self._p, self._entry, sendbuf, recvbuf, op)

    def Scan(self, sendbuf, recvbuf, op: Op) -> None:
        coll.scan(self._p, self._entry, sendbuf, recvbuf, op)

    # -- communicator management (recorded, Section 4.4) -----------------------------------
    def Dup(self) -> "C3Comm":
        entry = self._p.commtable.record_dup(self._entry)
        return C3Comm(self._p, entry)

    def Split(self, color: int, key: int = 0) -> Optional["C3Comm"]:
        entry = self._p.commtable.record_split(self._entry, color, key)
        return C3Comm(self._p, entry) if entry is not None else None

    def Cart_create(self, dims: Sequence[int], periods: Sequence[int]) -> "C3CartComm":
        entry = self._p.commtable.record_cart(self._entry, dims, periods)
        return C3CartComm(self._p, entry)

    def Free(self) -> None:
        self._p.commtable.record_free(self._entry)

    # -- datatype constructors (tabled, Section 4.2) ------------------------------------------
    def Type_contiguous(self, count: int, base):
        return self._p.datatable.create_contiguous(count, base)

    def Type_vector(self, count: int, blocklength: int, stride: int, base):
        return self._p.datatable.create_vector(count, blocklength, stride, base)

    def Type_indexed(self, blocklengths, displacements, base):
        return self._p.datatable.create_indexed(blocklengths, displacements, base)

    def Type_create_struct(self, blocklengths, displacements, types):
        return self._p.datatable.create_struct(blocklengths, displacements, types)


class C3CartComm(C3Comm):
    """Protocol-wrapped cartesian communicator."""

    def Get_coords(self, rank: Optional[int] = None) -> List[int]:
        return self._entry.raw.Get_coords(rank)

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        return self._entry.raw.Get_cart_rank(coords)

    def Shift(self, direction: int, disp: int = 1) -> Tuple[int, int]:
        return self._entry.raw.Shift(direction, disp)

    @property
    def dims(self):
        return self._entry.raw.dims
