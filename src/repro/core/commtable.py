"""Communicator table: recording and replay (Section 4.4).

The paper lists support for arbitrary communicators, groups, and
topologies as a straightforward extension "currently under development":
record every creation/deletion as part of the checkpoint and replay the
MPI calls on recovery.  This module implements that extension.

Each protocol-visible communicator gets a table entry holding the raw
runtime communicator plus the recipe that created it (dup / split /
cart_create with this rank's parameters).  On restore the recipes are
replayed in creation order against the freshly initialized runtime, which
reproduces identical context ids on every rank because creation keys are
derived deterministically (see :mod:`repro.mpi.communicator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .modes import ProtocolError


@dataclass
class CommEntry:
    key: int
    recipe: dict          # {"kind": "world" | "dup" | "split" | "cart", ...}
    parent_key: Optional[int]
    raw: object           # runtime Communicator (never checkpointed)
    freed: bool = False
    #: per-communicator collective call sequence number (checkpointed so
    #: recovery replays collective stream tags deterministically)
    coll_seq: int = 0


class CommTable:
    """Creation-ordered table of protocol-visible communicators."""

    def __init__(self):
        self._entries: Dict[int, CommEntry] = {}
        self._next_key = 0

    def add_world(self, raw) -> CommEntry:
        if self._next_key != 0:
            raise ProtocolError("world communicator must be entry 0")
        return self._add({"kind": "world"}, None, raw)

    def _add(self, recipe: dict, parent_key: Optional[int], raw) -> CommEntry:
        entry = CommEntry(self._next_key, recipe, parent_key, raw)
        self._entries[entry.key] = entry
        self._next_key += 1
        return entry

    def get(self, key: int) -> CommEntry:
        try:
            entry = self._entries[key]
        except KeyError:
            raise ProtocolError(f"unknown communicator key {key}") from None
        if entry.freed:
            raise ProtocolError(f"communicator {key} used after free")
        return entry

    # -- creation (collective at the application level) --------------------------
    def record_dup(self, parent: CommEntry) -> CommEntry:
        raw = parent.raw.Dup()
        return self._add({"kind": "dup"}, parent.key, raw)

    def record_split(self, parent: CommEntry, color: int, key: int) -> Optional[CommEntry]:
        raw = parent.raw.Split(color, key)
        if raw is None:
            # This rank is not a member (color < 0); record the call anyway
            # so replay keeps the collective sequence aligned.
            self._add({"kind": "split", "color": color, "key": key,
                       "member": False}, parent.key, None).freed = True
            return None
        return self._add({"kind": "split", "color": color, "key": key,
                          "member": True}, parent.key, raw)

    def record_cart(self, parent: CommEntry, dims, periods) -> CommEntry:
        raw = parent.raw.Cart_create(list(dims), list(periods))
        return self._add({"kind": "cart", "dims": list(dims),
                          "periods": [bool(p) for p in periods]},
                         parent.key, raw)

    def record_free(self, entry: CommEntry) -> None:
        entry.raw.Free()
        entry.freed = True
        entry.recipe = {**entry.recipe, "freed": True}

    # -- checkpoint plumbing ---------------------------------------------------------
    def to_wire(self) -> dict:
        entries = []
        for e in sorted(self._entries.values(), key=lambda x: x.key):
            # The (context, shadow) ids are part of the saved state: the
            # message registries persist raw context ids, and the engine
            # assigns ids first-come — consistent across ranks within one
            # run but not across runs.  Restore replays each creation
            # with these exact ids so registry entries keep matching.
            ids = None
            if e.raw is not None:
                ids = (e.raw.context_id, e.raw.shadow_id)
            entries.append({
                "key": e.key, "recipe": e.recipe, "parent_key": e.parent_key,
                "freed": e.freed, "coll_seq": e.coll_seq, "ids": ids,
            })
        return {"entries": entries, "next_key": self._next_key}

    def restore_wire(self, wire: dict, world_raw) -> None:
        """Replay every recorded creation against a fresh runtime,
        pinning each communicator to its original context ids."""
        self._entries.clear()
        self._next_key = 0
        for e in wire["entries"]:
            recipe = e["recipe"]
            kind = recipe["kind"]
            ids = tuple(e["ids"]) if e.get("ids") is not None else None
            if kind == "world":
                entry = self._add(recipe, None, world_raw)
            else:
                parent = self._entries.get(e["parent_key"])
                if parent is None:
                    raise ProtocolError(
                        f"communicator {e['key']} has missing parent "
                        f"{e['parent_key']}"
                    )
                if kind == "dup":
                    entry = self._add(recipe, parent.key,
                                      parent.raw.Dup(_force_ids=ids))
                elif kind == "split":
                    raw = parent.raw.Split(recipe["color"], recipe["key"],
                                           _force_ids=ids)
                    entry = self._add(recipe, parent.key, raw)
                    if not recipe.get("member", True):
                        entry.freed = True
                elif kind == "cart":
                    raw = parent.raw.Cart_create(recipe["dims"],
                                                 recipe["periods"],
                                                 _force_ids=ids)
                    entry = self._add(recipe, parent.key, raw)
                else:
                    raise ProtocolError(f"unknown communicator recipe {kind!r}")
            entry.coll_seq = e["coll_seq"]
            if e["freed"] and entry.raw is not None and not entry.freed:
                entry.raw.Free()
                entry.freed = True
        self._next_key = wire["next_key"]

    def __len__(self) -> int:
        return len(self._entries)

    def live_entries(self) -> List[CommEntry]:
        return [e for e in self._entries.values() if not e.freed]
