"""Collective communication under the C3 protocol (Section 4.3).

The protocol is applied to the start and end points of each individual
communication *stream* inside a collective (Figure 7): the sender side
runs the send protocol (counter updates, suppression during recovery),
the receiver side classifies each incoming stream as late / intra-epoch /
early and updates the registries, exactly as for point-to-point messages.
Streams use the reserved ``COLL_TAG`` on the application context id, so
per-signature FIFO keeps successive collectives between the same pair of
ranks ordered.

Two transports:

* **native** (normal execution) — the data, with each stream's piggyback
  embedded as an 8-byte header, travels through the runtime's optimized
  collective algorithms; the protocol only touches the call sites.
* **emulated** (during recovery, or always with the
  ``emulate_collectives`` ablation) — every logical stream is a plain
  point-to-point message through the protocol's restore-aware primitives,
  so absent senders are replayed from the log and sends to already-
  consistent receivers are suppressed.  A job started in recovery mode
  stays emulated for its lifetime: switching back requires a globally
  agreed flip point that the paper does not specify (see DESIGN.md).

Reduction operations cannot log individual streams once the payload has
been aggregated, so ``Reduce`` is transformed into a Gather plus a local
rank-ordered fold at the root (the paper's Section 4.3 transform);
``Allreduce`` is Reduce-to-0 + Bcast and ``Scan`` is Gather-to-0 +
prefix-fold + Scatter, which makes every reduction correct under the same
per-stream machinery.  The paper's result-logging optimization for
``Allreduce``/``Scan`` is available as ``log_reduction_results`` and is
exercised by the ablation bench.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..mpi.datatypes import from_numpy_dtype
from ..mpi.ops import Op
from .epoch import WirePiggyback
from .modes import Mode, ProtocolError
from .registries import DATA, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from .commtable import CommEntry
    from .protocol import C3Protocol

from .protocol import COLL_TAG

_HDR = struct.Struct("<q")  # embedded piggyback header on native streams


def _use_emulation(p: "C3Protocol") -> bool:
    return p.recovering or p.config.emulate_collectives


def _pack(buf: np.ndarray) -> bytes:
    arr = np.ascontiguousarray(buf)
    return arr.tobytes()


def _unpack_into(payload: bytes, buf: np.ndarray) -> None:
    flat = buf.reshape(-1)
    src = np.frombuffer(payload, dtype=buf.dtype)
    if src.size != flat.size:
        raise ProtocolError(
            f"collective stream size mismatch: got {src.size} elements, "
            f"expected {flat.size}"
        )
    flat[:] = src


# ---------------------------------------------------------------------------
# stream primitives
# ---------------------------------------------------------------------------

def _stream_send(p: "C3Protocol", centry: "CommEntry", dest: int,
                 payload: bytes) -> None:
    """Send protocol + transmission for one emulated stream."""
    raw = centry.raw
    dest_world = raw.group.translate(dest)
    if p.modes.mode is Mode.RESTORE:
        if p.was_early.match_and_remove(dest_world, COLL_TAG, raw.context_id):
            p.counters.on_send(dest_world)
            p.stats.suppressed_sends += 1
            p._maybe_finish_restore()
            return
    raw.send_packed(payload, dest, COLL_TAG, count=len(payload),
                    type_name="MPI_BYTE", piggyback=p._piggyback())
    p.counters.on_send(dest_world)


def _stream_send_accounting(p: "C3Protocol", centry: "CommEntry",
                            dest: int) -> None:
    """Send-protocol bookkeeping for one native-transport stream.

    The C3 layer piggybacks on every communication stream it originates,
    including the per-stream headers inside native collectives, so the
    platform's per-message piggyback cost applies here too (this is the
    term behind the paper's Velocity-2 anomaly).
    """
    p.counters.on_send(centry.raw.group.translate(dest))
    m = p.machine
    p.mpi.compute(m.coll_stream_overhead + p.codec.nbytes / m.bandwidth)


def _stream_recv(p: "C3Protocol", centry: "CommEntry", source: int,
                 nbytes: int) -> bytes:
    """Restore-aware receive of one emulated stream; returns the payload."""
    raw = centry.raw
    if p.modes.mode is Mode.RESTORE:
        m = p.late_reg.match(source, COLL_TAG, raw.context_id)
        if m is not None and m.kind == DATA:
            p.late_reg.pop(m)
            p.stats.replayed_from_log += 1
            p._maybe_finish_restore()
            return m.payload
    buf = np.empty(nbytes, dtype=np.uint8)
    req = raw.Irecv(buf, source=source, tag=COLL_TAG)
    req.wait()
    env = req.envelope
    assert env is not None
    pb = p.codec.decode(env.piggyback.value, p.epoch)
    _stream_account(p, centry, env.source, pb.sender_epoch,
                    pb.stopped_logging, env.payload)
    return env.payload


def _stream_account(p: "C3Protocol", centry: "CommEntry", source: int,
                    sender_epoch: int, stopped_logging: bool,
                    payload: bytes) -> None:
    """Receive-protocol bookkeeping for one incoming stream."""
    from .epoch import EARLY, INTRA, LATE, classify
    raw = centry.raw
    kind = classify(sender_epoch, p.epoch)
    source_world = raw.group.translate(source)
    if kind == LATE:
        p.counters.on_late_received(source_world)
        if p.modes.is_logging_late:
            p.late_reg.record_late(source, COLL_TAG, raw.context_id, payload)
            p.stats.late_logged += 1
            p.stats.late_logged_bytes += len(payload)
        elif p.modes.mode is not Mode.RESTORE:
            raise ProtocolError(
                f"rank {p.rank} received a late collective stream in mode "
                f"{p.modes.mode}"
            )
        p._maybe_commit()
    elif kind == INTRA:
        p.counters.on_intra_received(source_world)
        if p.modes.mode is Mode.NONDET_LOG and stopped_logging:
            p._stop_nondet_logging()
    else:  # EARLY
        p.counters.on_early_received(source_world)
        p.early_reg.record(source_world, COLL_TAG, raw.context_id)
        p.stats.early_recorded += 1
        if p.modes.mode is Mode.NONDET_LOG:
            p._stop_nondet_logging()


def _native_header(p: "C3Protocol") -> bytes:
    return _HDR.pack(p._piggyback().value)


def _parse_header(p: "C3Protocol", raw_bytes: bytes):
    (word,) = _HDR.unpack_from(raw_bytes)
    pb = p.codec.decode(word, p.epoch)
    return pb.sender_epoch, pb.stopped_logging, raw_bytes[_HDR.size:]


# ---------------------------------------------------------------------------
# data-moving collectives
# ---------------------------------------------------------------------------

def bcast(p: "C3Protocol", centry: "CommEntry", buf: np.ndarray,
          root: int = 0) -> None:
    p._charge()
    p._poll_control()
    raw = centry.raw
    size, rank = raw.size, raw.rank
    if size == 1:
        return
    if _use_emulation(p):
        p.stats.collectives_emulated += 1
        if rank == root:
            payload = _pack(buf)
            for dest in range(size):
                if dest != root:
                    _stream_send(p, centry, dest, payload)
        else:
            payload = _stream_recv(p, centry, root, buf.nbytes)
            _unpack_into(payload, buf)
        return
    p.stats.collectives_native += 1
    if rank == root:
        for dest in range(size):
            if dest != root:
                _stream_send_accounting(p, centry, dest)
        wire = np.frombuffer(_native_header(p) + _pack(buf), dtype=np.uint8).copy()
        raw.Bcast(wire, root=root)
    else:
        wire = np.empty(_HDR.size + buf.nbytes, dtype=np.uint8)
        raw.Bcast(wire, root=root)
        sender_epoch, stopped, payload = _parse_header(p, wire.tobytes())
        _stream_account(p, centry, root, sender_epoch, stopped, payload)
        _unpack_into(payload, buf)


def gather(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
           recvbuf: Optional[np.ndarray], root: int = 0) -> None:
    p._charge()
    p._poll_control()
    raw = centry.raw
    size, rank = raw.size, raw.rank
    piece = _pack(sendbuf)
    if size == 1:
        if recvbuf is not None:
            _unpack_into(piece, recvbuf.reshape(-1))
        return
    if _use_emulation(p):
        p.stats.collectives_emulated += 1
        if rank != root:
            _stream_send(p, centry, root, piece)
            return
        out = recvbuf.reshape(size, -1)
        for src in range(size):
            if src == rank:
                _unpack_into(piece, out[src])
            else:
                payload = _stream_recv(p, centry, src, sendbuf.nbytes)
                _unpack_into(payload, out[src])
        return
    p.stats.collectives_native += 1
    wire_piece = np.frombuffer(_native_header(p) + piece, dtype=np.uint8).copy()
    if rank == root:
        wire_out = np.empty((size, wire_piece.size), dtype=np.uint8)
        raw.Gather(wire_piece, wire_out, root=root)
        out = recvbuf.reshape(size, -1)
        for src in range(size):
            if src == rank:
                _unpack_into(piece, out[src])
                continue
            sender_epoch, stopped, payload = _parse_header(
                p, wire_out[src].tobytes())
            _stream_account(p, centry, src, sender_epoch, stopped, payload)
            _unpack_into(payload, out[src])
    else:
        _stream_send_accounting(p, centry, root)
        raw.Gather(wire_piece, None, root=root)


def scatter(p: "C3Protocol", centry: "CommEntry", sendbuf: Optional[np.ndarray],
            recvbuf: np.ndarray, root: int = 0) -> None:
    p._charge()
    p._poll_control()
    raw = centry.raw
    size, rank = raw.size, raw.rank
    if size == 1:
        _unpack_into(_pack(sendbuf.reshape(-1)), recvbuf.reshape(-1))
        return
    if _use_emulation(p):
        p.stats.collectives_emulated += 1
        if rank == root:
            pieces = sendbuf.reshape(size, -1)
            for dest in range(size):
                if dest == rank:
                    _unpack_into(_pack(pieces[dest]), recvbuf.reshape(-1))
                else:
                    _stream_send(p, centry, dest, _pack(pieces[dest]))
        else:
            payload = _stream_recv(p, centry, root, recvbuf.nbytes)
            _unpack_into(payload, recvbuf.reshape(-1))
        return
    p.stats.collectives_native += 1
    if rank == root:
        header = _native_header(p)
        pieces = sendbuf.reshape(size, -1)
        wires = []
        for dest in range(size):
            if dest != root:
                _stream_send_accounting(p, centry, dest)
            wires.append(np.frombuffer(header + _pack(pieces[dest]),
                                       dtype=np.uint8))
        wire_send = np.stack(wires)
        wire_recv = np.empty(wire_send.shape[1], dtype=np.uint8)
        raw.Scatter(wire_send, wire_recv, root=root)
        _unpack_into(_pack(pieces[rank]), recvbuf.reshape(-1))
    else:
        wire_recv = np.empty(_HDR.size + recvbuf.nbytes, dtype=np.uint8)
        raw.Scatter(None, wire_recv, root=root)
        sender_epoch, stopped, payload = _parse_header(p, wire_recv.tobytes())
        _stream_account(p, centry, root, sender_epoch, stopped, payload)
        _unpack_into(payload, recvbuf.reshape(-1))


def allgather(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
              recvbuf: np.ndarray) -> None:
    p._charge()
    p._poll_control()
    raw = centry.raw
    size, rank = raw.size, raw.rank
    piece = _pack(sendbuf)
    out = recvbuf.reshape(size, -1)
    if size == 1:
        _unpack_into(piece, out[0])
        return
    if _use_emulation(p):
        p.stats.collectives_emulated += 1
        for dest in range(size):
            if dest != rank:
                _stream_send(p, centry, dest, piece)
        for src in range(size):
            if src == rank:
                _unpack_into(piece, out[src])
            else:
                payload = _stream_recv(p, centry, src, sendbuf.nbytes)
                _unpack_into(payload, out[src])
        return
    p.stats.collectives_native += 1
    for dest in range(size):
        if dest != rank:
            _stream_send_accounting(p, centry, dest)
    wire_piece = np.frombuffer(_native_header(p) + piece, dtype=np.uint8).copy()
    wire_out = np.empty((size, wire_piece.size), dtype=np.uint8)
    raw.Allgather(wire_piece, wire_out)
    for src in range(size):
        if src == rank:
            _unpack_into(piece, out[src])
            continue
        sender_epoch, stopped, payload = _parse_header(p, wire_out[src].tobytes())
        _stream_account(p, centry, src, sender_epoch, stopped, payload)
        _unpack_into(payload, out[src])


def alltoall(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
             recvbuf: np.ndarray) -> None:
    p._charge()
    p._poll_control()
    raw = centry.raw
    size, rank = raw.size, raw.rank
    sp = sendbuf.reshape(size, -1)
    rp = recvbuf.reshape(size, -1)
    if size == 1:
        _unpack_into(_pack(sp[0]), rp[0])
        return
    if _use_emulation(p):
        p.stats.collectives_emulated += 1
        for dest in range(size):
            if dest != rank:
                _stream_send(p, centry, dest, _pack(sp[dest]))
        _unpack_into(_pack(sp[rank]), rp[rank])
        for src in range(size):
            if src != rank:
                payload = _stream_recv(p, centry, src, rp[src].nbytes)
                _unpack_into(payload, rp[src])
        return
    p.stats.collectives_native += 1
    header = _native_header(p)
    wires = []
    for dest in range(size):
        if dest != rank:
            _stream_send_accounting(p, centry, dest)
        wires.append(np.frombuffer(header + _pack(sp[dest]), dtype=np.uint8))
    wire_send = np.stack(wires)
    wire_recv = np.empty_like(wire_send)
    raw.Alltoall(wire_send, wire_recv)
    for src in range(size):
        if src == rank:
            _unpack_into(_pack(sp[rank]), rp[rank])
            continue
        sender_epoch, stopped, payload = _parse_header(p, wire_recv[src].tobytes())
        _stream_account(p, centry, src, sender_epoch, stopped, payload)
        _unpack_into(payload, rp[src])


def barrier(p: "C3Protocol", centry: "CommEntry") -> None:
    """Barrier as an allgather of empty streams, so that every pairwise
    synchronization token is protocol-visible (a barrier can cross a
    recovery line like any other collective; see DESIGN.md)."""
    token_send = np.zeros(1, dtype=np.uint8)
    token_recv = np.zeros(centry.raw.size, dtype=np.uint8)
    allgather(p, centry, token_send, token_recv)


# ---------------------------------------------------------------------------
# reductions (Section 4.3)
# ---------------------------------------------------------------------------

def reduce(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
           recvbuf: Optional[np.ndarray], op: Op, root: int = 0) -> None:
    """``MPI_Reduce`` via the Gather transform: individual contributions
    are gathered (so the protocol sees every stream) and folded at the
    root in rank order."""
    raw = centry.raw
    size = raw.size
    contributions = (np.empty((size,) + sendbuf.shape, dtype=sendbuf.dtype)
                     if raw.rank == root else None)
    gather(p, centry, sendbuf, contributions, root=root)
    if raw.rank == root:
        acc = contributions[0].copy()
        for r in range(1, size):
            acc = op(acc, contributions[r])
        np.copyto(recvbuf, acc)


def allreduce(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
              recvbuf: np.ndarray, op: Op) -> None:
    """``MPI_Allreduce``: result logging when enabled, otherwise
    Reduce-to-0 + Bcast over protocol-visible streams."""
    if p.config.log_reduction_results:
        _logged_reduction(p, centry, sendbuf, recvbuf, op, scan=False)
        return
    reduce(p, centry, sendbuf, recvbuf if centry.raw.rank == 0 else
           np.empty_like(np.asarray(recvbuf)), op, root=0)
    bcast(p, centry, recvbuf, root=0)


def scan(p: "C3Protocol", centry: "CommEntry", sendbuf: np.ndarray,
         recvbuf: np.ndarray, op: Op) -> None:
    """``MPI_Scan``: result logging when enabled, otherwise Gather-to-0 +
    prefix fold + Scatter."""
    if p.config.log_reduction_results:
        _logged_reduction(p, centry, sendbuf, recvbuf, op, scan=True)
        return
    raw = centry.raw
    size = raw.size
    contributions = (np.empty((size,) + sendbuf.shape, dtype=sendbuf.dtype)
                     if raw.rank == 0 else None)
    gather(p, centry, sendbuf, contributions, root=0)
    prefixes = None
    if raw.rank == 0:
        prefixes = np.empty_like(contributions)
        acc = contributions[0].copy()
        prefixes[0] = acc
        for r in range(1, size):
            acc = op(acc, contributions[r])
            prefixes[r] = acc
    scatter(p, centry, prefixes, recvbuf, root=0)


def _logged_reduction(p: "C3Protocol", centry: "CommEntry",
                      sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op,
                      scan: bool) -> None:
    """The paper's optimization: run the native operation and log only the
    final result while a checkpoint is open; replay it during recovery."""
    p._charge()
    p._poll_control()
    raw = centry.raw
    if p.modes.mode is Mode.RESTORE and len(p.event_log):
        payload = p.event_log.replay(EventLog.COLLECTIVE_RESULT)
        _unpack_into(payload, recvbuf)
        p.stats.replayed_from_log += 1
        return
    if scan:
        raw.Scan(sendbuf, recvbuf, op)
    else:
        raw.Allreduce(sendbuf, recvbuf, op)
    p.stats.collectives_native += 1
    if p.modes.is_logging_late:
        p.event_log.record(EventLog.COLLECTIVE_RESULT, _pack(recvbuf))
        p.stats.events_logged += 1
