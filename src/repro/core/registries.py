"""The three message registries of Section 2.3 plus the event log.

* :class:`LateMessageRegistry` — late messages (signature **and** payload)
  recorded during the logging phase, replayed to receives during recovery;
  also holds signature-only entries recording the order of wildcard
  receives of intra-epoch messages (the non-determinism record), which
  restrict wildcard parameters during replay.
* :class:`EarlyMessageRegistry` — signatures of early messages, saved with
  the checkpoint; distributed to the original senders on recovery.
* :class:`WasEarlyRegistry` — built on the sender side during recovery
  from the distributed early registries; matching sends are suppressed.
* :class:`EventLog` — ordered non-deterministic events that are not
  per-message: logged ``MPI_Allreduce``/``MPI_Scan`` results and the
  completion indices of ``Waitany``/``Waitsome`` (Section 4).

Entries with equal signatures keep their receive order (the registries are
multimaps in arrival order), which is what makes per-signature replay
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..mpi.matching import ANY_SOURCE, ANY_TAG
from .modes import ProtocolError

# late-registry entry kinds
DATA = "data"          # a logged late message (payload present)
WILDCARD = "wildcard"  # order record of an intra-epoch wildcard receive


def _sig_matches(entry_source: int, entry_tag: int, entry_ctx: int,
                 source: int, tag: int, ctx: int) -> bool:
    """Does a receive with (source, tag, ctx) — wildcards allowed — match?"""
    if ctx != entry_ctx:
        return False
    if source != ANY_SOURCE and source != entry_source:
        return False
    if tag != ANY_TAG and tag != entry_tag:
        return False
    return True


@dataclass
class LateEntry:
    kind: str
    source: int
    tag: int
    context_id: int
    payload: Optional[bytes] = None
    #: table id of the request that consumed the message in the original
    #: run; reproduced deterministically on replay, so it identifies the
    #: exact entry a re-executed receive must take
    rid: Optional[int] = None

    def to_wire(self) -> dict:
        return {"kind": self.kind, "source": self.source, "tag": self.tag,
                "context_id": self.context_id, "payload": self.payload,
                "rid": self.rid}

    @classmethod
    def from_wire(cls, d: dict) -> "LateEntry":
        return cls(d["kind"], d["source"], d["tag"], d["context_id"],
                   d["payload"], d.get("rid"))


class LateMessageRegistry:
    """Ordered multimap of late messages and wildcard-order records."""

    def __init__(self):
        self._entries: List[LateEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    @property
    def data_bytes(self) -> int:
        return sum(len(e.payload) for e in self._entries if e.payload)

    def record_late(self, source: int, tag: int, context_id: int,
                    payload: bytes, rid: Optional[int] = None) -> None:
        self._entries.append(
            LateEntry(DATA, source, tag, context_id, payload, rid))

    def record_wildcard(self, source: int, tag: int, context_id: int,
                        rid: Optional[int] = None) -> None:
        self._entries.append(
            LateEntry(WILDCARD, source, tag, context_id, rid=rid))

    def match(self, source: int, tag: int, context_id: int) -> Optional[LateEntry]:
        """First entry (either kind) matching a receive, without removing."""
        for e in self._entries:
            if _sig_matches(e.source, e.tag, e.context_id, source, tag,
                            context_id):
                return e
        return None

    def match_rid(self, rid: int) -> Optional[LateEntry]:
        """The entry consumed by request ``rid`` in the original run."""
        for e in self._entries:
            if e.rid == rid:
                return e
        return None

    def pop(self, entry: LateEntry) -> None:
        try:
            self._entries.remove(entry)
        except ValueError:
            raise ProtocolError("late-registry entry popped twice") from None

    # -- checkpoint plumbing -------------------------------------------------
    def to_wire(self) -> list:
        return [e.to_wire() for e in self._entries]

    @classmethod
    def from_wire(cls, wire: list) -> "LateMessageRegistry":
        reg = cls()
        reg._entries = [LateEntry.from_wire(d) for d in wire]
        return reg

    def reset(self) -> None:
        self._entries.clear()


class EarlyMessageRegistry:
    """Signatures of early messages received in the current epoch.

    Entries are ``(source, tag, context_id)`` in receive order; multiple
    identical signatures are kept (multiset semantics).
    """

    def __init__(self):
        self._sigs: List[Tuple[int, int, int]] = []

    def __len__(self) -> int:
        return len(self._sigs)

    def __bool__(self) -> bool:
        return bool(self._sigs)

    def record(self, source: int, tag: int, context_id: int) -> None:
        self._sigs.append((source, tag, context_id))

    def by_sender(self) -> dict:
        """Group entries by sending rank: sender -> [(tag, context_id), ...]."""
        out: dict = {}
        for source, tag, ctx in self._sigs:
            out.setdefault(source, []).append((tag, ctx))
        return out

    def to_wire(self) -> list:
        return [list(s) for s in self._sigs]

    @classmethod
    def from_wire(cls, wire: list) -> "EarlyMessageRegistry":
        reg = cls()
        reg._sigs = [tuple(s) for s in wire]
        return reg

    def reset(self) -> None:
        self._sigs.clear()


class WasEarlyRegistry:
    """Sends to suppress during recovery: (dest, tag, context_id) multiset."""

    def __init__(self):
        self._entries: List[Tuple[int, int, int]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def add(self, dest: int, tag: int, context_id: int) -> None:
        self._entries.append((dest, tag, context_id))

    def match_and_remove(self, dest: int, tag: int, context_id: int) -> bool:
        """Suppress one matching send; returns whether it was suppressed."""
        key = (dest, tag, context_id)
        try:
            self._entries.remove(key)
            return True
        except ValueError:
            return False


class EventLog:
    """Ordered replay log of non-per-message non-deterministic events."""

    #: event kinds
    COLLECTIVE_RESULT = "collective_result"   # Allreduce / Scan payload
    WAITANY = "waitany"                       # completed index
    WAITSOME = "waitsome"                     # completed index list

    def __init__(self):
        self._events: List[Tuple[str, Any]] = []
        self._cursor = 0  # replay position (not checkpointed)

    def __len__(self) -> int:
        return len(self._events) - self._cursor

    def record(self, kind: str, value: Any) -> None:
        self._events.append((kind, value))

    def replay(self, kind: str) -> Optional[Any]:
        """Next event if it matches ``kind``; None when the log is drained.

        A kind mismatch means the recovering execution diverged from the
        logged one — a protocol bug — so it raises.
        """
        if self._cursor >= len(self._events):
            return None
        got_kind, value = self._events[self._cursor]
        if got_kind != kind:
            raise ProtocolError(
                f"event-log divergence: replaying {kind!r} but log has "
                f"{got_kind!r} at position {self._cursor}"
            )
        self._cursor += 1
        return value

    @property
    def drained(self) -> bool:
        return self._cursor >= len(self._events)

    @property
    def data_bytes(self) -> int:
        total = 0
        for _kind, value in self._events:
            if isinstance(value, (bytes, bytearray)):
                total += len(value)
            else:
                total += 8
        return total

    def to_wire(self) -> list:
        return [[k, v] for k, v in self._events]

    @classmethod
    def from_wire(cls, wire: list) -> "EventLog":
        log = cls()
        log._events = [(k, v) for k, v in wire]
        return log

    def reset(self) -> None:
        self._events.clear()
        self._cursor = 0
