"""The C3 coordination layer — the paper's primary contribution."""

from .ccc import (
    C3RunResult, cached_comm, resume_from_manifest, run_c3,
    run_fault_tolerant, run_original,
)
from .comms import C3CartComm, C3Comm
from .counters import CounterSet
from .epoch import (
    CODECS, EARLY, FullCodec, INTRA, LATE, Piggyback, ThreeBitCodec, classify,
)
from .modes import Mode, ModeTracker, ProtocolError
from .protocol import C3Config, C3Protocol, C3Stats, COLL_TAG
from .registries import (
    DATA, EarlyMessageRegistry, EventLog, LateEntry, LateMessageRegistry,
    WILDCARD, WasEarlyRegistry,
)
from .reqtable import C3Request, RequestEntry, RequestTable
from .datatable import C3DatatypeHandle, DatatypeTable
from .commtable import CommEntry, CommTable

__all__ = [
    "C3Protocol", "C3Config", "C3Stats", "COLL_TAG",
    "C3Comm", "C3CartComm", "C3Request",
    "run_c3", "run_fault_tolerant", "run_original", "C3RunResult",
    "cached_comm", "resume_from_manifest",
    "Mode", "ModeTracker", "ProtocolError",
    "classify", "LATE", "INTRA", "EARLY", "Piggyback", "ThreeBitCodec",
    "FullCodec", "CODECS",
    "LateMessageRegistry", "EarlyMessageRegistry", "WasEarlyRegistry",
    "EventLog", "LateEntry", "DATA", "WILDCARD",
    "CounterSet", "RequestTable", "RequestEntry",
    "DatatypeTable", "C3DatatypeHandle", "CommTable", "CommEntry",
]
