"""Request indirection table (Section 4.1).

To stay independent of the underlying MPI implementation, the protocol
keeps its own table of non-blocking requests.  The application sees only
table indices (wrapped in :class:`C3Request`), so after a restart the
layer "can instantiate all request objects with the same request
identifiers".

Lifecycle rules from the paper:

* the table is saved at **commit** time (not at the recovery line), when
  it is known which open receives were completed by late messages;
* entry deallocation is **deferred** during the checkpointing period so
  the saved table still contains entries waited on after the line;
* per-entry *test counters* record unsuccessful ``Test``/``Wait`` polls
  during the checkpointing period; on recovery a replayed ``Test``
  decrements the counter and fails until it reaches zero, then the call
  is substituted with a ``Wait``;
* on restore, entries allocated during the logging phase (after the
  recovery line) are deleted — their allocations re-execute — and the
  remaining entries are recreated; those completed by a late message are
  *not* re-posted (the data replays from the log).

Paper mapping
-------------
* Section 4.1 ("Request objects") — the indirection table itself, the
  deferred deallocation, and the test counters;
* Figure 5 (commit) — :meth:`RequestTable.on_commit` is the "save the
  request table" step, run at commit so late-completed receives are
  known;
* Figure 5 (restore) — :meth:`RequestTable.restore_wire` rebuilds the
  table with identical request identifiers, the property Section 4.1
  needs for replayed ``Test``/``Wait`` calls to line up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from .modes import ProtocolError


@dataclass
class RequestEntry:
    """One request the application holds a handle to."""

    rid: int
    kind: str                  # "send" | "recv"
    comm_key: int              # index into the protocol's communicator table
    source: int                # as posted (wildcards allowed); dest for sends
    tag: int
    count: int
    dtype_name: str
    epoch_created: int
    mpi_request: Any = None    # live runtime object, never checkpointed
    buffer: Any = None         # live numpy buffer, never checkpointed
    state_key: Optional[str] = None  # ctx.state key of the buffer (resolved lazily)
    test_counter: int = 0
    completed_by: Optional[str] = None   # "late" | "intra" | "early"
    released: bool = False     # application has waited on it
    garbage: bool = False      # released during the checkpointing period
    from_log: bool = False     # recovery: data comes from the late registry
    log_payload: Optional[bytes] = None  # reserved log data for replay


class C3Request:
    """The handle the application holds: just a table index."""

    __slots__ = ("rid",)

    def __init__(self, rid: int):
        self.rid = rid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<C3Request #{self.rid}>"


class RequestTable:
    """Indirection table with deferred deallocation and snapshotting."""

    def __init__(self):
        self._entries: Dict[int, RequestEntry] = {}
        self._next_id = 1
        #: id counter value at the last recovery line (for rollback)
        self.line_next_id = 1
        #: deallocation deferral flag (set between start and commit)
        self.defer_dealloc = False
        #: saved test counters keyed by rid, used during recovery replay
        self.replay_test_counters: Dict[int, int] = {}

    # -- allocation ------------------------------------------------------------
    def alloc(self, kind: str, comm_key: int, source: int, tag: int,
              count: int, dtype_name: str, epoch: int,
              mpi_request=None, buffer=None) -> RequestEntry:
        entry = RequestEntry(
            rid=self._next_id, kind=kind, comm_key=comm_key, source=source,
            tag=tag, count=count, dtype_name=dtype_name, epoch_created=epoch,
            mpi_request=mpi_request, buffer=buffer,
        )
        self._entries[entry.rid] = entry
        self._next_id += 1
        return entry

    def get(self, rid: int) -> RequestEntry:
        try:
            entry = self._entries[rid]
        except KeyError:
            raise ProtocolError(f"unknown request id {rid}") from None
        if entry.released and not entry.garbage:
            raise ProtocolError(f"request {rid} already released")
        return entry

    def release(self, entry: RequestEntry) -> None:
        """The application waited on the request; free or garbage-mark it."""
        entry.released = True
        if self.defer_dealloc:
            entry.garbage = True
        else:
            del self._entries[entry.rid]

    # -- checkpoint boundary ---------------------------------------------------------
    def on_start_checkpoint(self) -> None:
        self.line_next_id = self._next_id
        self.defer_dealloc = True
        for entry in self._entries.values():
            entry.test_counter = 0

    def on_commit(self, resolve_state_key, line_epoch: Optional[int] = None) -> list:
        """Snapshot the table (Figure-5 commit), then purge garbage.

        ``resolve_state_key(buffer)`` maps a live receive buffer to its
        ``ctx.state`` key so the buffer can be found again after restart.
        Only requests allocated *before* the recovery line need one —
        later allocations are rolled back on restore (their posting code
        re-executes), so their buffers may be plain locals.
        """
        wire = []
        for entry in sorted(self._entries.values(), key=lambda e: e.rid):
            state_key = entry.state_key
            needs_key = (entry.kind == "recv" and not entry.released
                         and entry.buffer is not None
                         and (line_epoch is None
                              or entry.epoch_created < line_epoch))
            if needs_key:
                state_key = resolve_state_key(entry.buffer)
            wire.append({
                "rid": entry.rid, "kind": entry.kind,
                "comm_key": entry.comm_key, "source": entry.source,
                "tag": entry.tag, "count": entry.count,
                "dtype_name": entry.dtype_name,
                "epoch_created": entry.epoch_created,
                "test_counter": entry.test_counter,
                "completed_by": entry.completed_by,
                "garbage": entry.garbage,
                "state_key": state_key,
            })
        # purge deferred deallocations now that the table is saved
        for rid in [r for r, e in self._entries.items() if e.garbage]:
            del self._entries[rid]
        self.defer_dealloc = False
        return {"entries": wire, "line_next_id": self.line_next_id,
                "next_id": self._next_id}

    # -- restore -----------------------------------------------------------------------
    def restore_wire(self, wire: dict, line_epoch: int) -> List[RequestEntry]:
        """Roll the table back to the recovery line.

        Returns the surviving entries (allocated before the line), with
        ``from_log`` set for those completed by late messages.  The caller
        re-posts the others.  Test counters of *all* saved entries —
        including rolled-back ones, whose allocations re-execute with the
        same ids — are kept for Test replay.
        """
        self._entries.clear()
        self.replay_test_counters = {}
        survivors: List[RequestEntry] = []
        for e in wire["entries"]:
            self.replay_test_counters[e["rid"]] = e["test_counter"]
            if e["epoch_created"] >= line_epoch:
                continue  # allocated after the line: the allocation re-executes
            if e["garbage"] and e["completed_by"] != "late":
                # Released after the line by a non-late message: the message
                # is resent during recovery and the wait re-executes, so the
                # entry is recreated and re-posted like an open one.
                pass
            entry = RequestEntry(
                rid=e["rid"], kind=e["kind"], comm_key=e["comm_key"],
                source=e["source"], tag=e["tag"], count=e["count"],
                dtype_name=e["dtype_name"], epoch_created=e["epoch_created"],
                state_key=e["state_key"],
                completed_by=e["completed_by"],
                from_log=(e["completed_by"] == "late"),
            )
            self._entries[entry.rid] = entry
            survivors.append(entry)
        self._next_id = wire["line_next_id"]
        self.line_next_id = wire["line_next_id"]
        return survivors

    # -- introspection --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def live_entries(self) -> List[RequestEntry]:
        return [e for e in self._entries.values() if not e.garbage]
