"""The C3 coordination layer: non-blocking, coordinated, application-level
checkpointing (Sections 3 and 4 of the paper).

:class:`C3Protocol` sits between the application and the (simulated) MPI
runtime and intercepts every communication call.  It implements:

* the Figure-4 send/receive wrappers — piggybacking, message
  classification, counter updates, late-message logging, early-message
  registration, wildcard-order logging, send suppression and log replay
  during recovery;
* the Figure-5 actions — ``chkpt_StartCheckpoint``,
  ``chkpt_CommitCheckpoint``, ``chkpt_RestoreCheckpoint`` and the pragma
  logic (in :mod:`repro.core.checkpoint`);
* the advanced-feature extensions of Section 4 — the request indirection
  table with test-counter replay, the datatype table, recorded
  communicators, and the collective protocols (in
  :mod:`repro.core.collectives`).

Implementation notes recorded in DESIGN.md (deviations the paper's
pseudocode elides but its prose implies):

* a send suppressed by the Was-Early-Registry still increments
  ``Sent-Count`` — the receiver's restored counters already include the
  early message, so the next recovery line's late accounting balances
  only if the suppressed send is counted;
* receiving an *early* message while logging non-deterministic events
  also stops the logging: a sender one epoch ahead has necessarily
  stopped logging for the receiver's line (the prose rule "a message from
  a process that has itself stopped logging"), even though its piggyback
  bit refers to the sender's own next line;
* late-registry entries are tagged with the consuming request's table id,
  which is reproduced deterministically during replay; replay matches by
  id first and falls back to signature matching once the re-execution has
  (legitimately) diverged past the logged non-determinism window.

Paper mapping
-------------
* Section 3.1 / Figure 2 — epochs and recovery lines (`self.epoch`,
  advanced by :func:`repro.core.checkpoint.start_checkpoint`);
* Section 3.2 — the 3 piggybacked bits every send carries
  (:meth:`C3Protocol._piggyback`, codecs in :mod:`repro.core.epoch`);
* Section 3.3 / Figure 4 — the send/receive wrappers (:meth:`C3Protocol.send`,
  :meth:`C3Protocol.recv`, their non-blocking forms) and the
  late/intra/early handling on delivery (``_on_app_delivery``);
* Section 4.1 — request indirection (:mod:`repro.core.reqtable`);
* Section 4.2 — datatype table (:mod:`repro.core.datatable`);
* Section 4.3 — collectives as per-stream protocols
  (:mod:`repro.core.collectives`);
* Section 4.4 — recorded communicator creation
  (:mod:`repro.core.commtable`);
* Section 4.5 — design-choice ablation switches on :class:`C3Config`
  (``distinguished_initiator``, ``log_reduction_results``, ``codec``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..mpi.api import MPI
from ..mpi.datatypes import Datatype, from_numpy_dtype
from ..mpi.matching import ANY_SOURCE, ANY_TAG
from ..mpi.status import Status
from ..statesave.context import Context
from .. import coverage
from ..storage.stable import StorageBackend, StorageError
from ..storage.store import as_store
from .commtable import CommEntry, CommTable
from .control import ControlPlane
from .counters import CounterSet
from .datatable import DatatypeTable
from .epoch import CODECS, EARLY, INTRA, LATE, WirePiggyback, classify
from .modes import Mode, ModeTracker, ProtocolError
from .registries import (
    DATA, WILDCARD, EarlyMessageRegistry, EventLog, LateMessageRegistry,
    WasEarlyRegistry,
)
from .reqtable import C3Request, RequestEntry, RequestTable

#: reserved tag for collective communication streams (applications must not
#: use it; see repro.core.collectives)
COLL_TAG = (1 << 24) - 1

#: modelled memory-copy bandwidth for checkpoint serialization (bytes/s)
SERIALIZE_BANDWIDTH = 2.0e9


@dataclass
class C3Config:
    """Tunables of the coordination layer."""

    #: virtual-seconds between timer-initiated checkpoints (None: only
    #: forced pragmas checkpoint)
    checkpoint_interval: Optional[float] = None
    #: configuration #3 (True) vs #2 (False) of Tables 4-5: actually write
    #: checkpoint data to stable storage, or only go through the motions
    save_to_disk: bool = True
    #: overlapped write-back (the production path, Section 6.4): staging
    #: a checkpoint returns control to the rank immediately and the
    #: serialized bytes drain through the node's virtual-time disk device
    #: in the background — the COMMIT marker is written only once every
    #: section is durable.  False restores the in-line write path that
    #: blocks the rank for the full ``disk_write_time`` (the Tables 4-5
    #: configuration-#3 measurement).
    overlap: bool = True
    #: recovery-line garbage collection: once a line is durably committed
    #: by every rank (the committed floor, read straight from the shared
    #: storage manifest at each commit — never broadcast, see
    #: ``_gc_lines``), delete strictly older lines — storage holds the
    #: last globally committed line plus whatever is in flight (<= 2
    #: lines at steady state).  Incremental chains pin everything back
    #: to their last full save.  False retains every committed line
    #: forever (ablation).
    gc_lines: bool = True
    #: save checkpoints in the portable (typed) format
    portable: bool = False
    #: piggyback codec: "3bit" (the paper's) or "full" (ablation)
    codec: str = "3bit"
    #: always emulate collectives with point-to-point (ablation; normally
    #: emulation is used only during recovery)
    emulate_collectives: bool = False
    #: ablation: only rank 0 may initiate checkpoints (the earlier
    #: protocol's distinguished initiator)
    distinguished_initiator: bool = False
    #: stop initiating after this many checkpoints (None: unlimited);
    #: peer-initiated checkpoints are always joined
    max_checkpoints: Optional[int] = None
    #: the paper's Allreduce/Scan result-logging optimization; off by
    #: default in favour of the always-consistent stream-based reductions
    #: (see repro.core.collectives and DESIGN.md)
    log_reduction_results: bool = False
    #: incremental checkpointing (the paper's Section-8 future-work item):
    #: application state arrays are saved as dirty pages against the
    #: previous checkpoint; restore walks the chain from the last full save
    incremental: bool = False
    #: force a full save every N checkpoints when incremental is on
    incremental_full_interval: int = 4


@dataclass
class C3Stats:
    """Bookkeeping the benchmarks read."""

    app_sends: int = 0
    app_recvs: int = 0
    control_msgs: int = 0
    late_logged: int = 0
    late_logged_bytes: int = 0
    wildcard_logged: int = 0
    early_recorded: int = 0
    events_logged: int = 0
    checkpoints_started: int = 0
    checkpoints_committed: int = 0
    last_checkpoint_bytes: int = 0
    #: total bytes of the last *committed* line (app state + registries +
    #: log) — unlike ``last_checkpoint_bytes``, never reflects a line
    #: that was started but never made it to stable storage
    last_committed_bytes: int = 0
    last_log_bytes: int = 0
    suppressed_sends: int = 0
    replayed_from_log: int = 0
    restored_version: Optional[int] = None
    #: virtual time of the last commit (for restart-cost accounting);
    #: under the overlapped pipeline this is the *durability* instant —
    #: when the drain finished and the COMMIT marker was written
    last_commit_time: float = 0.0
    #: commits completed through the overlapped write-back pipeline
    overlapped_commits: int = 0
    #: superseded recovery lines deleted by garbage collection
    gc_deleted_lines: int = 0
    #: lines whose storage commit failed (e.g. disk full) and were
    #: abandoned — the protocol carries on and recovery falls back to
    #: the previous committed line
    checkpoints_abandoned: int = 0
    #: restores where this rank's newest committed line failed deep
    #: validation (torn/corrupt) and an older line was used instead
    restore_fallbacks: int = 0
    #: virtual time spent inside restore_checkpoint
    restore_seconds: float = 0.0
    collectives_native: int = 0
    collectives_emulated: int = 0


class C3Protocol:
    """Per-rank instance of the coordination layer."""

    def __init__(self, mpi: MPI, storage: StorageBackend,
                 config: Optional[C3Config] = None):
        self.mpi = mpi
        self.machine = mpi._ctx.machine
        self.rank = mpi.rank
        self.nprocs = mpi.size
        self.storage = storage
        self.config = config or C3Config()
        try:
            self.codec = CODECS[self.config.codec]
        except KeyError:
            raise ProtocolError(f"unknown piggyback codec {self.config.codec!r}")

        self.modes = ModeTracker(Mode.RUN)
        self.epoch = 0
        #: (epoch, stopped-logging) -> WirePiggyback; the encoded value
        #: only changes at mode/epoch transitions, not per send
        self._pb_cache: Optional[Tuple[int, bool, WirePiggyback]] = None
        self.counters = CounterSet(self.nprocs, self.rank)
        #: control plane on a dedicated duplicate of COMM_WORLD
        self.control = ControlPlane(mpi.COMM_WORLD.Dup("c3.control"),
                                    self.rank, self.nprocs)
        self.late_reg = LateMessageRegistry()
        self.early_reg = EarlyMessageRegistry()
        self.was_early = WasEarlyRegistry()
        self.event_log = EventLog()
        self.reqtable = RequestTable()
        self.datatable = DatatypeTable()
        self.commtable = CommTable()
        self.world_entry = self.commtable.add_world(mpi.COMM_WORLD)
        self.stats = C3Stats()
        self.ctx: Optional[Context] = None
        self._timer_base = 0.0
        self._writer = None  # open CheckpointWriter between start and commit
        #: the node-local virtual-time disk the overlapped pipeline drains
        #: staged checkpoint bytes through (shared, engine-owned)
        self._device = mpi._ctx.engine.disk
        #: the checkpoint-store engine (scatter or WAL) every storage
        #: operation goes through; the drain device's node boundary is the
        #: WAL's group-commit boundary
        self.store = as_store(storage,
                              procs_per_node=self._device.procs_per_node,
                              nprocs=self.nprocs)
        hooks = getattr(self.store, "commit_hooks", None)
        if hooks is not None:
            # The WAL invokes this right after staging my COMMIT record and
            # before the group-flush decision — the at_group_commit window.
            hooks[self.rank] = mpi._ctx.group_commit_fault_point
        #: protocol-committed lines whose drain has not finished yet:
        #: (version, writer, durable_at) in version order
        self._pending: deque = deque()
        #: my own durably committed lines still on storage (GC bookkeeping)
        self._my_lines: List[int] = []
        #: versions saved as *full* incremental records (None: incremental
        #: off).  GC may only delete below the newest full save that is
        #: itself at or below the committed floor — any restore candidate
        #: is >= the floor, and its decode chain reaches back at most to
        #: the newest full save at or below it.
        self._full_saves: Optional[List[int]] = (
            [] if self.config.incremental else None)
        self._incremental = None
        if self.config.incremental:
            from ..statesave.incremental import IncrementalTracker
            self._incremental = IncrementalTracker(
                full_interval=self.config.incremental_full_interval)
        #: True for the whole run when this job was started in recovery
        #: mode — collectives stay point-to-point-emulated (see DESIGN.md)
        self.recovering = False

    # ------------------------------------------------------------------ setup
    def bind(self, ctx: Context) -> None:
        """Attach the application context (the state that gets saved)."""
        self.ctx = ctx

    def _charge(self) -> None:
        """Per-intercepted-call software overhead of the C3 layer.

        Also a fault-injection point: every intercepted call (including
        pragmas in compute-only phases) can observe a scheduled fail-stop.
        """
        self.mpi.compute(self.machine.c3_call_overhead)
        self.mpi._ctx.poll_hook()
        if self._pending:
            self._poll_drains()

    # ------------------------------------------------- overlapped write-back
    def _poll_drains(self, flush: bool = False) -> None:
        """Complete every staged line whose drain has finished.

        The lazy half of the overlapped pipeline: pending lines are
        checked against the rank's virtual clock on every intercepted
        call, and each line whose staged bytes are durable gets its
        COMMIT marker written (in version order — the node device is
        FIFO, so durability times are monotone per rank).  ``flush``
        completes the remainder unconditionally (``MPI_Finalize``: the
        PSC-style daemon outlives the application, so the job's end does
        not cancel in-flight drains — but the commit timestamps keep the
        true durability instants).  Both branches are fault points:
        ``in_drain`` kills land while a line is still in flight,
        ``at_commit`` kills land right before the marker write.
        """
        ctx = self.mpi._ctx
        while self._pending:
            version, writer, durable_at = self._pending[0]
            if ctx.clock.now < durable_at:
                ctx.drain_fault_point(version)
                if not flush:
                    return
            ctx.commit_fault_point(version)
            self._pending.popleft()
            self.stats.overlapped_commits += 1
            self._durable_commit(writer, durable_at)

    def _durable_commit(self, writer, durable_at: float) -> None:
        """Make one line restart-eligible: marker, stats, GC.

        A storage failure here (disk full, an injected fault) abandons
        the *line*, not the job: the marker is never written, partial
        sections are deleted best-effort, and recovery keeps falling
        back to the previous committed line.  The protocol state is
        already consistent — peers commit their own copies
        independently, and the global restore floor is a min reduction.
        """
        try:
            writer.commit()
        except StorageError:
            self.stats.checkpoints_abandoned += 1
            coverage.hit("path:ckpt_abandoned")
            if not writer.dry_run:
                try:
                    self.store.delete_line(writer.version, self.rank)
                except StorageError:
                    pass
            return
        coverage.hit("path:commit")
        self.stats.checkpoints_committed += 1
        self.stats.last_committed_bytes = writer.bytes_written
        self.stats.last_commit_time = durable_at
        if writer.dry_run:
            return
        self._my_lines.append(writer.version)
        self._gc_lines()

    def _gc_lines(self) -> None:
        """Delete my recovery lines below the globally committed floor.

        The floor — the newest line whose COMMIT marker every rank has
        durably written — is the only line recovery can ever need
        (restore takes the min of per-rank last-committed versions, and
        commits are in order, so nothing older is reachable).  It is
        read straight from the shared storage manifest, the way an
        out-of-band PSC-style daemon would inspect the filesystem:
        commit *announcements* on the control plane would carry the
        drain's late virtual timestamps, and receiving one drags the
        receiver's clock forward — charging the background write back
        into the application makespan.  Storage metadata reads cost no
        virtual time, so the floor stays out-of-band.  An incremental
        chain additionally pins its lines back to the newest full save
        at or below the floor.
        """
        if not self.config.gc_lines or not self._my_lines:
            return
        floor = self.store.last_committed_global(self.nprocs) or 0
        if self._full_saves is not None:
            committed_fulls = [f for f in self._full_saves if f <= floor]
            floor = max(committed_fulls) if committed_fulls else 0
            self._full_saves = [f for f in self._full_saves if f >= floor]
        while self._my_lines and self._my_lines[0] < floor:
            version = self._my_lines.pop(0)
            self.store.delete_line(version, self.rank)
            self.stats.gc_deleted_lines += 1
            coverage.hit("path:gc")

    # ------------------------------------------------------- piggyback encoding
    def _piggyback(self) -> WirePiggyback:
        stopped = self.modes.mode is not Mode.NONDET_LOG
        cached = self._pb_cache
        if (cached is not None and cached[0] == self.epoch
                and cached[1] == stopped):
            return cached[2]
        wp = WirePiggyback(self.codec.encode(self.epoch, stopped),
                           self.codec.nbytes)
        self._pb_cache = (self.epoch, stopped, wp)
        return wp

    # ------------------------------------------------------------ control plane
    def _poll_control(self) -> None:
        """Figure 4's "Check for control messages"."""
        processed = self.control.poll(self._on_checkpoint_initiated)
        if processed:
            self.stats.control_msgs += processed
            self._after_control()

    def _on_checkpoint_initiated(self, line: int, sender: int, count: int) -> None:
        if line > self.epoch + 1:
            raise ProtocolError(
                f"rank {self.rank} in epoch {self.epoch} got "
                f"Checkpoint-Initiated for line {line}: a message crossed "
                "more than one recovery line"
            )
        if line == self.epoch:
            # I already took this checkpoint; this is a peer announcement.
            self.counters.on_control_received(sender, count)

    def _after_control(self) -> None:
        """Re-evaluate mode transitions after control processing."""
        if self.modes.mode is Mode.NONDET_LOG and self.control.all_started(self.epoch):
            self._stop_nondet_logging()
        self._maybe_commit()

    def _stop_nondet_logging(self) -> None:
        from .checkpoint import commit_checkpoint  # cycle avoidance
        late = self.counters.late_expected()
        self.modes.stop_nondet_logging(late_expected=late)
        if not late:
            commit_checkpoint(self)

    def _maybe_commit(self) -> None:
        from .checkpoint import commit_checkpoint
        if self.modes.mode is Mode.RECVONLY_LOG and self.counters.late_drained():
            self.modes.commit()
            commit_checkpoint(self)

    def _maybe_finish_restore(self) -> None:
        if (self.modes.mode is Mode.RESTORE
                and not self.late_reg and not self.was_early
                and self.event_log.drained):
            self.modes.finish_restore()

    # -------------------------------------------------------------- datatypes
    def _resolve_dtype(self, buf, datatype) -> Datatype:
        if datatype is None:
            if isinstance(buf, np.ndarray):
                return from_numpy_dtype(buf.dtype)
            raise ProtocolError("datatype required for non-numpy buffers")
        return self.datatable.resolve(datatype)

    # =================================================================== SEND
    def send(self, centry: CommEntry, buf, dest: int, tag: int = 0,
             datatype=None, count: Optional[int] = None,
             _internal_tag: bool = False) -> None:
        """``chkpt_MPI_Send`` (Figure 4)."""
        self._charge()
        self._poll_control()
        if tag == COLL_TAG and not _internal_tag:
            raise ProtocolError(f"tag {COLL_TAG} is reserved for the C3 layer")
        raw = centry.raw
        dtype = self._resolve_dtype(buf, datatype)
        n = count if count is not None else (buf.size if isinstance(buf, np.ndarray) else 1)
        payload = dtype.pack(buf, n)
        self._send_payload(centry, payload, dest, tag, n, dtype.name)

    def _send_payload(self, centry: CommEntry, payload: bytes, dest: int,
                      tag: int, count: int, type_name: str) -> None:
        raw = centry.raw
        dest_world = raw.group.translate(dest)
        if self.modes.mode is Mode.RESTORE:
            if self.was_early.match_and_remove(dest_world, tag, raw.context_id):
                # Suppressed: the receiver's checkpoint already contains this
                # message.  Count it anyway — the receiver's restored
                # counters include it (see module docstring).
                self.counters.on_send(dest_world)
                self.stats.suppressed_sends += 1
                coverage.hit("path:suppressed_send")
                self._maybe_finish_restore()
                return
        raw.send_packed(payload, dest, tag, count=count, type_name=type_name,
                        piggyback=self._piggyback())
        self.counters.on_send(dest_world)
        self.stats.app_sends += 1

    def isend(self, centry: CommEntry, buf, dest: int, tag: int = 0,
              datatype=None, count: Optional[int] = None) -> C3Request:
        """Non-blocking send: the send protocol runs at the call site
        (Section 4.1 — the send interval starts when the application hands
        the buffer to MPI)."""
        self.send(centry, buf, dest, tag, datatype=datatype, count=count)
        entry = self.reqtable.alloc("send", centry.key, dest, tag,
                                    count or 0, "", self.epoch)
        return C3Request(entry.rid)

    # =================================================================== RECV
    def irecv(self, centry: CommEntry, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG, datatype=None,
              _internal_tag: bool = False) -> C3Request:
        """Post a receive; the receive protocol itself runs at Wait/Test."""
        self._charge()
        self._poll_control()
        if tag == COLL_TAG and not _internal_tag:
            raise ProtocolError(f"tag {COLL_TAG} is reserved for the C3 layer")
        dtype = self._resolve_dtype(buf, datatype)
        entry = self.reqtable.alloc(
            "recv", centry.key, source, tag,
            buf.size if isinstance(buf, np.ndarray) else 0,
            dtype.name, self.epoch, buffer=buf,
        )
        self._post_recv(entry, centry, dtype)
        return C3Request(entry.rid)

    def _post_recv(self, entry: RequestEntry, centry: CommEntry,
                   dtype: Datatype) -> None:
        """Restore-aware posting: serve from the log, restrict wildcards,
        or post a real receive."""
        raw = centry.raw
        source, tag = entry.source, entry.tag
        if self.modes.mode is Mode.RESTORE:
            m = self._match_log(entry, raw.context_id)
            if m is not None and m.kind == DATA:
                self.late_reg.pop(m)
                entry.from_log = True
                entry.log_payload = m.payload
                entry.source, entry.tag = m.source, m.tag
                self.stats.replayed_from_log += 1
                coverage.hit("path:log_replay")
                self._maybe_finish_restore()
                return
            if m is not None and m.kind == WILDCARD:
                # Fill in the wild-cards to force the message order of the
                # original run.
                self.late_reg.pop(m)
                source, tag = m.source, m.tag
                self._maybe_finish_restore()
        entry.mpi_request = raw.Irecv(entry.buffer, source=source, tag=tag,
                                      datatype=dtype)

    def _match_log(self, entry: RequestEntry, context_id: int):
        """Find the late-registry entry this receive should replay.

        Exact matching is by consuming request id (reproduced
        deterministically); the signature fallback serves orphaned entries
        after the re-execution has legitimately diverged.
        """
        m = self.late_reg.match_rid(entry.rid)
        if m is not None:
            sig_ok = (m.context_id == context_id
                      and (entry.source == ANY_SOURCE or entry.source == m.source)
                      and (entry.tag == ANY_TAG or entry.tag == m.tag))
            if sig_ok:
                return m
        m = self.late_reg.match(entry.source, entry.tag, context_id)
        if m is not None and m.kind == DATA:
            return m
        if (m is not None and m.kind == WILDCARD
                and (entry.source == ANY_SOURCE or entry.tag == ANY_TAG)):
            return m
        return None

    def recv(self, centry: CommEntry, buf, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, datatype=None,
             status: Optional[Status] = None,
             _internal_tag: bool = False) -> Status:
        """``chkpt_MPI_Recv``: post + complete."""
        req = self.irecv(centry, buf, source=source, tag=tag,
                         datatype=datatype, _internal_tag=_internal_tag)
        st = self.wait(req)
        if status is not None:
            status.__dict__.update(st.__dict__)
        return st

    # ----------------------------------------------------- delivery / protocol
    def _complete_recv(self, entry: RequestEntry) -> Status:
        """The receive protocol of Figure 4, run at delivery time."""
        centry = self.commtable.get(entry.comm_key)
        if entry.from_log:
            dtype = self.datatable.resolve(self._named_handle(entry.dtype_name))
            payload = entry.log_payload or b""
            elems = len(payload) // dtype.size if dtype.size else 0
            if entry.buffer is not None:
                dtype.unpack(payload, entry.buffer, count=elems)
            self._maybe_finish_restore()
            return Status(source=entry.source, tag=entry.tag, count=elems,
                          nbytes=len(payload))
        req = entry.mpi_request
        if req is None:
            raise ProtocolError(f"request {entry.rid} has no pending operation")
        st = req.wait()
        env = req.envelope
        if env is not None and env.source >= 0:
            self._on_app_delivery(centry, entry, env)
        self.stats.app_recvs += 1
        return st

    def _named_handle(self, name: str):
        from ..mpi import datatypes as dt
        if name in dt.NAMED_TYPES:
            return dt.NAMED_TYPES[name]
        raise ProtocolError(f"cannot resolve datatype {name!r} for replay")

    def _on_app_delivery(self, centry: CommEntry, entry: Optional[RequestEntry],
                         env) -> None:
        """Classify a delivered message and update counters/registries."""
        raw = centry.raw
        if env.piggyback is None:
            raise ProtocolError(
                f"application message without piggyback from rank {env.source}"
            )
        pb = self.codec.decode(env.piggyback.value, self.epoch)
        kind = classify(pb.sender_epoch, self.epoch)
        source_world = raw.group.translate(env.source)
        if kind == LATE:
            self.counters.on_late_received(source_world)
            coverage.hit("msg:late")
            if self.modes.is_logging_late:
                self.late_reg.record_late(
                    env.source, env.tag, env.context_id, env.payload,
                    rid=entry.rid if entry else None)
                self.stats.late_logged += 1
                self.stats.late_logged_bytes += env.nbytes
            elif self.modes.mode is not Mode.RESTORE:
                raise ProtocolError(
                    f"rank {self.rank} received a late message in mode "
                    f"{self.modes.mode} (commit accounting is broken)"
                )
            self._maybe_commit()
        elif kind == INTRA:
            self.counters.on_intra_received(source_world)
            coverage.hit("msg:intra")
            if self.modes.mode is Mode.NONDET_LOG:
                if pb.stopped_logging:
                    # Causality: the sender stopped logging, so events after
                    # this message must not enter the log.
                    self._stop_nondet_logging()
                elif entry is not None and (entry.source == ANY_SOURCE
                                            or entry.tag == ANY_TAG):
                    self.late_reg.record_wildcard(
                        env.source, env.tag, env.context_id,
                        rid=entry.rid if entry else None)
                    self.stats.wildcard_logged += 1
                    coverage.hit("msg:wildcard")
        else:  # EARLY
            self.counters.on_early_received(source_world)
            coverage.hit("msg:early")
            self.early_reg.record(source_world, env.tag, env.context_id)
            self.stats.early_recorded += 1
            if self.modes.mode is Mode.NONDET_LOG:
                # A sender one epoch ahead has necessarily stopped logging
                # non-deterministic events for *my* line.
                self._stop_nondet_logging()

    # ============================================================ WAIT / TEST
    def wait(self, c3req: C3Request) -> Status:
        """``MPI_Wait`` through the indirection table."""
        self._charge()
        self._poll_control()
        entry = self.reqtable.get(c3req.rid)
        if entry.kind == "send":
            st = Status(source=self.rank, tag=entry.tag, count=entry.count)
        else:
            st = self._complete_recv(entry)
        self.reqtable.release(entry)
        return st

    def test(self, c3req: C3Request) -> Tuple[bool, Optional[Status]]:
        """``MPI_Test`` with unsuccessful-poll counting and replay."""
        self._charge()
        self._poll_control()
        entry = self.reqtable.get(c3req.rid)
        if entry.kind == "send":
            st = Status(source=self.rank, tag=entry.tag, count=entry.count)
            self.reqtable.release(entry)
            return True, st
        # Recovery replay: fail the same number of times as the original
        # run, then substitute a Wait (which cannot deadlock — the original
        # Test succeeded, so the message is logged or will be resent).
        if (self.modes.mode is Mode.RESTORE
                and entry.rid in self.reqtable.replay_test_counters):
            remaining = self.reqtable.replay_test_counters[entry.rid]
            if remaining > 0:
                self.reqtable.replay_test_counters[entry.rid] = remaining - 1
                return False, None
            st = self._complete_recv(entry)
            self.reqtable.release(entry)
            return True, st
        if entry.from_log:
            st = self._complete_recv(entry)
            self.reqtable.release(entry)
            return True, st
        req = entry.mpi_request
        if req is None or not req.is_complete():
            if self.reqtable.defer_dealloc:
                entry.test_counter += 1
            return False, None
        st = self._complete_recv(entry)
        self.reqtable.release(entry)
        return True, st

    def waitall(self, c3reqs: List[C3Request]) -> List[Status]:
        """``MPI_Waitall``: completion order is fixed, no logging needed."""
        return [self.wait(r) for r in c3reqs]

    def waitany(self, c3reqs: List[C3Request]) -> Tuple[int, Status]:
        """``MPI_Waitany`` with completed-index logging and replay."""
        self._charge()
        self._poll_control()
        if self.modes.mode is Mode.RESTORE and len(self.event_log):
            rid = self.event_log.replay(EventLog.WAITANY)
            for i, r in enumerate(c3reqs):
                if r.rid == rid:
                    entry = self.reqtable.get(rid)
                    st = self._complete_recv(entry) if entry.kind == "recv" \
                        else Status(source=self.rank, tag=entry.tag)
                    self.reqtable.release(entry)
                    return i, st
            raise ProtocolError(
                f"waitany replay: logged request {rid} not in the array"
            )
        idx, st = self._waitany_live(c3reqs)
        if self.reqtable.defer_dealloc:
            # Log the completion for replay (covers MPI_Waitany's
            # non-determinism, Section 4.1).
            self.event_log.record(EventLog.WAITANY, c3reqs[idx].rid)
            self.stats.events_logged += 1
        return idx, st

    def _waitany_live(self, c3reqs: List[C3Request]) -> Tuple[int, Status]:
        entries = [self.reqtable.get(r.rid) for r in c3reqs]
        # Sends and log-served receives complete immediately.
        for i, e in enumerate(entries):
            if e.kind == "send" or e.from_log:
                st = self._complete_recv(e) if e.kind == "recv" else \
                    Status(source=self.rank, tag=e.tag, count=e.count)
                self.reqtable.release(e)
                return i, st
        mpi_reqs = [e.mpi_request for e in entries]
        if any(r is None for r in mpi_reqs):
            raise ProtocolError("waitany on request without pending operation")
        ctx = self.mpi._ctx
        ctx.mailbox.wait_for(lambda: any(r.is_complete() for r in mpi_reqs),
                             poll=ctx.poll_hook)
        for i, e in enumerate(entries):
            if e.mpi_request.is_complete():
                st = self._complete_recv(e)
                self.reqtable.release(e)
                return i, st
        raise AssertionError("waitany woke without a completed request")

    def waitsome(self, c3reqs: List[C3Request]) -> Tuple[List[int], List[Status]]:
        """``MPI_Waitsome`` with completed-index-set logging and replay."""
        self._charge()
        self._poll_control()
        if self.modes.mode is Mode.RESTORE and len(self.event_log):
            rids = self.event_log.replay(EventLog.WAITSOME)
            indices, statuses = [], []
            by_rid = {r.rid: i for i, r in enumerate(c3reqs)}
            for rid in rids:
                if rid not in by_rid:
                    raise ProtocolError(
                        f"waitsome replay: logged request {rid} not in array")
                entry = self.reqtable.get(rid)
                st = self._complete_recv(entry) if entry.kind == "recv" \
                    else Status(source=self.rank, tag=entry.tag)
                self.reqtable.release(entry)
                indices.append(by_rid[rid])
                statuses.append(st)
            return indices, statuses
        idx, st = self._waitany_live(c3reqs)
        indices, statuses = [idx], [st]
        # Collect every other already-complete request, in index order.
        for i, r in enumerate(c3reqs):
            if i == idx:
                continue
            entry = self.reqtable.get(r.rid)
            if entry.kind == "send" or entry.from_log or (
                    entry.mpi_request is not None
                    and entry.mpi_request.is_complete()):
                st2 = self._complete_recv(entry) if entry.kind == "recv" \
                    else Status(source=self.rank, tag=entry.tag)
                self.reqtable.release(entry)
                indices.append(i)
                statuses.append(st2)
        if self.reqtable.defer_dealloc:
            self.event_log.record(EventLog.WAITSOME,
                                  [c3reqs[i].rid for i in indices])
            self.stats.events_logged += 1
        return indices, statuses

    # ======================================================== PRAGMA (Figure 5)
    def finalize(self) -> None:
        """End-of-job protocol drain (the ``MPI_Finalize`` interception).

        Drains every control message already delivered and re-evaluates
        the commit conditions, so a rank whose peers completed a
        checkpoint line while it sat in its final compute/communication
        stretch commits the line before the job ends — without this,
        whether the last line committed on every rank depended on
        cross-rank scheduling during the job's closing operations
        (observable as a committed-count flap between the engine
        backends).  The drain is deliberately non-blocking — it consumes
        what has arrived rather than synchronizing on a barrier: the
        paper's runtime tables time the application, not
        ``MPI_Finalize`` teardown, and the downscaled cells run in
        virtual milliseconds where a full dissemination barrier would
        be a visible artificial overhead.  A line some rank never
        initiated stays uncommitted, as the protocol requires: recovery
        would use the previous complete line.

        Overlapped write-back adds a flush: drains still in flight are
        completed (the PSC daemon outlives the application — a finished
        job does not cancel its background write-back, and the commit
        records keep the true virtual durability instants); each flushed
        commit re-reads the GC floor from the storage manifest.
        """
        self._poll_control()
        self._maybe_commit()
        if self._pending:
            self._poll_drains(flush=True)
        # Group-commit stores may still hold this rank's trailing commits
        # staged; a clean MPI_Finalize forces the node's batch down.
        try:
            self.store.flush_rank(self.rank)
        except StorageError:
            # Disk full at the final drain: the staged batch is abandoned
            # (the store has already un-indexed it); the durable prefix
            # still recovers and the job itself finishes.
            self.stats.checkpoints_abandoned += 1
            coverage.hit("path:ckpt_abandoned")

    def pragma(self, force: bool = False) -> None:
        """``#pragma ccc checkpoint``."""
        from .checkpoint import start_checkpoint
        self._charge()
        self._poll_control()
        if self.modes.mode is not Mode.RUN:
            return
        line = self.epoch + 1
        initiate = False
        if self._may_initiate():
            if force:
                initiate = True
            elif (self.config.checkpoint_interval is not None
                  and self.mpi.Wtime() - self._timer_base
                  >= self.config.checkpoint_interval):
                initiate = True
        if not initiate and self.control.any_started(line):
            initiate = True  # at least one other node started a checkpoint
        if initiate:
            start_checkpoint(self)

    def _may_initiate(self) -> bool:
        if (self.config.max_checkpoints is not None
                and self.stats.checkpoints_started >= self.config.max_checkpoints):
            return False
        if self.config.distinguished_initiator and self.rank != 0:
            return False
        return True

    # -------------------------------------------------------------- accessors
    @property
    def mode(self) -> Mode:
        return self.modes.mode

    def resolve_state_key(self, buffer) -> Optional[str]:
        """Find the ctx.state key holding ``buffer`` (identity match)."""
        if self.ctx is None:
            return None
        for key in self.ctx.state:
            if self.ctx.state[key] is buffer:
                return key
        raise ProtocolError(
            "an open non-blocking receive buffer must live in ctx.state so "
            "it can be recreated after a restart"
        )
