"""Control-message plane.

The coordination layer exchanges two kinds of out-of-band messages on a
dedicated communicator (a dup of ``MPI_COMM_WORLD`` made at startup, so
control traffic can never match application receives):

* ``Checkpoint-Initiated`` — sent to every peer by ``chkpt_StartCheckpoint``
  for recovery line *k*, carrying the sender's ``Sent-Count[receiver]`` for
  the epoch that just ended (Figure 5);
* ``Early-Registry`` — sent during recovery to the original sender of each
  early message so it can build its Was-Early-Registry.

Control messages are polled ("Check for control messages", Figure 4) at
every protocol operation and at pragmas; they are never classified,
logged, or suppressed.

Deliberately *not* a control message: the committed floor that drives
recovery-line garbage collection.  Durable commits are visible in the
shared storage manifest, so GC reads it there
(:meth:`repro.core.protocol.C3Protocol._gc_lines`) — broadcasting
Line-Committed announcements instead would stamp them with the drain's
late virtual times, and consuming one drags the receiver's clock
forward, charging the background write right back into the application
makespan the overlapped pipeline exists to protect.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..mpi.matching import ANY_SOURCE
from ..statesave import serializer
from .modes import ProtocolError

#: tags on the control communicator
TAG_CKPT_INITIATED = 1
TAG_EARLY_REGISTRY = 2
TAG_RECOVERY = 3


class ControlPlane:
    """Sends/receives control messages and tracks checkpoint initiations."""

    def __init__(self, comm, rank: int, nprocs: int):
        self.comm = comm  # raw (protocol-invisible) communicator, dup of world
        self.rank = rank
        self.nprocs = nprocs
        #: line -> {sender rank: announced sent count}
        self.initiated: Dict[int, Dict[int, int]] = {}

    # -- Checkpoint-Initiated -------------------------------------------------
    def announce_checkpoint(self, line: int, sent_counts: List[int]) -> None:
        """Send Checkpoint-Initiated for ``line`` to every other rank."""
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            payload = np.array([line, sent_counts[q]], dtype=np.int64)
            self.comm.Send(payload, dest=q, tag=TAG_CKPT_INITIATED)

    def poll(self, on_initiated: Callable[[int, int, int], None]) -> int:
        """Drain pending Checkpoint-Initiated messages.

        Calls ``on_initiated(line, sender, sent_count)`` for each; returns
        the number processed.
        """
        n = 0
        while True:
            # Polled on every intercepted call: the O(1) context check
            # short-circuits the (wildcard) drain in the common no-traffic
            # case.  The drain itself is out-of-band — no call overhead,
            # no availability sync — because it models the PSC-style
            # daemon consuming control traffic outside the application:
            # charging it here would stamp the drain's backend-dependent
            # physical delivery point into the virtual clock (the same
            # argument that keeps committed-floor GC off the control
            # plane, see the module docstring).
            if not self.comm.has_pending():
                return n
            buf = np.empty(2, dtype=np.int64)
            st = self.comm.recv_out_of_band(buf, source=ANY_SOURCE,
                                            tag=TAG_CKPT_INITIATED)
            if st is None:
                return n
            line, count = int(buf[0]), int(buf[1])
            peers = self.initiated.setdefault(line, {})
            if st.source in peers:
                raise ProtocolError(
                    f"duplicate Checkpoint-Initiated for line {line} from "
                    f"rank {st.source}"
                )
            peers[st.source] = count
            on_initiated(line, st.source, count)
            n += 1

    def all_started(self, line: int) -> bool:
        """Has every *other* rank announced checkpoint ``line``?"""
        return len(self.initiated.get(line, {})) == self.nprocs - 1

    def any_started(self, line: int) -> bool:
        return bool(self.initiated.get(line))

    def forget_line(self, line: int) -> None:
        """Drop bookkeeping for a committed line."""
        self.initiated.pop(line, None)

    # -- early-registry distribution (recovery) -----------------------------------
    def exchange_early_registries(self, by_sender: Dict[int, list]) -> List[Tuple[int, int, int]]:
        """Distribute early signatures to their senders; gather mine.

        ``by_sender`` maps an original sending rank to the list of
        ``(tag, context_id)`` pairs of early messages it sent me.  Every
        rank sends one message to every other rank (possibly an empty
        list) and receives one from every other rank, so the exchange is
        deterministic and self-synchronizing.

        Returns the Was-Early entries for *this* rank:
        ``(dest, tag, context_id)`` for each send to suppress.
        """
        # Post all receives first to avoid ordering constraints.
        reqs = []
        bufs = []
        sizes = np.zeros(self.nprocs, dtype=np.int64)
        my_sizes = np.zeros(self.nprocs, dtype=np.int64)
        payloads: Dict[int, bytes] = {}
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            payloads[q] = serializer.dumps(
                [list(sig) for sig in by_sender.get(q, [])])
            my_sizes[q] = len(payloads[q])
        # First exchange sizes, then payloads, with plain point-to-point.
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            self.comm.Send(my_sizes[q:q + 1], dest=q, tag=TAG_EARLY_REGISTRY)
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            size_buf = np.zeros(1, dtype=np.int64)
            self.comm.Recv(size_buf, source=q, tag=TAG_EARLY_REGISTRY)
            sizes[q] = int(size_buf[0])
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            payload = np.frombuffer(payloads[q], dtype=np.uint8).copy()
            if len(payload):
                self.comm.Send(payload, dest=q, tag=TAG_EARLY_REGISTRY)
        out: List[Tuple[int, int, int]] = []
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            if sizes[q] == 0:
                entries = serializer.loads(serializer.dumps([]))
            else:
                buf = np.empty(int(sizes[q]), dtype=np.uint8)
                self.comm.Recv(buf, source=q, tag=TAG_EARLY_REGISTRY)
                entries = serializer.loads(buf.tobytes())
            for tag, ctx in entries:
                out.append((q, tag, ctx))
        return out
