"""``chkpt_StartCheckpoint`` / ``chkpt_CommitCheckpoint`` /
``chkpt_RestoreCheckpoint`` — the Figure-5 actions.

Start (taken at a pragma, in Run mode):
  advance the epoch; create the checkpoint version; save application
  state, basic MPI state, handle tables, and the Early-Message-Registry;
  announce Checkpoint-Initiated (with per-peer sent counts) to every node;
  shuffle the counters.  The checkpoint is *not yet usable* — the late
  messages of the closing epoch still have to be collected.

Commit (when all announced late messages have been received):
  save the Late-Message-Registry, the event log, and the request table
  (whose deallocation was deferred so it still holds requests completed
  after the line), then write the commit marker.

Restore (on restart after a failure):
  find the last version committed on *all* nodes with a global min
  reduction; load every section; distribute the Early-Message-Registry
  entries back to their senders to build the Was-Early-Registry; roll the
  request table back to the line and re-post the surviving receives.

Paper mapping
-------------
* Section 3.4 / Figure 5 — the three actions this module implements;
* Section 4 (Tables of saved state) — the checkpoint sections written
  here: application state (``app``), basic MPI state (``mpi_state``),
  the handle tables (``handles``: Section 4.1/4.2/4.4), the message
  registries and the event log (Section 4.3's non-per-message
  non-determinism);
* Section 6, Tables 4-7 — the costs charged here (serialization always;
  the in-line disk-write virtual time at start/commit under
  ``C3Config(overlap=False)``, or a staging submission to the node's
  background drain device on the default overlapped path; disk-read at
  restore) are what the checkpoint-overhead and restart-cost tables
  measure;
* Section 6.4 — the overlapped write-back pipeline: staging returns
  control to the rank immediately, the COMMIT marker (with a section
  manifest + digests) is written when the virtual-time drain completes,
  torn lines are rejected at restore, and superseded recovery lines are
  garbage-collected at commit (DESIGN.md section 7);
* DESIGN.md section 3 — the restart flow and the replay/suppression
  ordering during the re-execution that follows a restore.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..mpi.matching import ANY_SOURCE, ANY_TAG
from ..mpi.ops import MIN
from .. import coverage
from ..statesave.checkpointfile import CheckpointReader, CheckpointWriter
from .modes import Mode, ProtocolError
from .registries import EarlyMessageRegistry, EventLog, LateMessageRegistry

if TYPE_CHECKING:  # pragma: no cover
    from .protocol import C3Protocol

from .protocol import SERIALIZE_BANDWIDTH


def start_checkpoint(p: "C3Protocol") -> None:
    """Figure 5, ``chkpt_StartCheckpoint`` (runs inside the pragma)."""
    if p.ctx is None:
        raise ProtocolError("protocol has no bound application context")
    # Advance Epoch; create checkpoint version and directory.  The epoch
    # advance is the ``at_epoch`` fault-injection point: a kill here lands
    # exactly on the epoch boundary — the epoch has moved but nothing of
    # the new line exists yet, so recovery must come from the previous one.
    line = p.epoch + 1
    p.epoch = line
    p.mpi._ctx.note_epoch(line)
    writer = CheckpointWriter(p.store, version=line, rank=p.rank,
                              portable=p.config.portable,
                              dry_run=not p.config.save_to_disk)
    # Save application state (full, or dirty pages against the previous
    # checkpoint when incremental checkpointing is on).
    snap = p.ctx.snapshot_state()
    if p._incremental is not None:
        arrays = {k: v for k, v in snap["state"].items()
                  if isinstance(v, np.ndarray)}
        rest = {k: v for k, v in snap["state"].items()
                if not isinstance(v, np.ndarray)}
        record = p._incremental.encode(arrays)
        if record["full"]:
            # a new chain anchor; GC may drop older lines once this
            # line is committed everywhere
            p._full_saves.append(line)
        writer.save("app", {**snap, "state": rest,
                            "incremental": record})
    else:
        writer.save("app", snap)
    # Save basic MPI state: node count, local rank, processor name, current
    # epoch, attached buffers.
    writer.save("mpi_state", {
        "nprocs": p.nprocs,
        "rank": p.rank,
        "processor_name": p.mpi.Get_processor_name(),
        "epoch": p.epoch,
        "attached_buffers": p.mpi.attached_buffers,
    })
    # Save handle tables (datatypes, reduction ops are deterministic
    # builtins, communicators per Section 4.4).
    writer.save("handles", {
        "datatypes": p.datatable.to_wire(),
        "comms": p.commtable.to_wire(),
    })
    # Save and reset the Early-Message-Registry.
    writer.save("early_registry", p.early_reg.to_wire())
    p.early_reg.reset()
    # Prepare counters, then announce with the *old* sent counts.
    announced = p.counters.on_start_checkpoint()
    # Peers that initiated this line before we did announced their sent
    # counts while we were still in the previous epoch; feed them into the
    # fresh counters now.
    for sender, count in p.control.initiated.get(line, {}).items():
        p.counters.on_control_received(sender, count)
    writer.save("counters", p.counters.to_wire())
    p.control.announce_checkpoint(line, announced)
    p.stats.control_msgs += p.nprocs - 1
    # Request table: remember the line position, defer deallocations.
    p.reqtable.on_start_checkpoint()
    p.event_log.reset()
    # Charge the time: serialization always (it *is* the copy-on-write
    # staging snapshot — the app may mutate its state freely afterwards).
    p.mpi.compute(writer.bytes_written / SERIALIZE_BANDWIDTH)
    if p.config.save_to_disk:
        if p.config.overlap:
            # Overlapped write-back: hand the staged bytes to the node's
            # drain device and return control immediately.  The device
            # completes the write in background virtual time; the line
            # can only commit once these bytes (and the commit-time log
            # sections) are durable.
            p._device.submit(p.rank, writer.bytes_written, p.mpi.Wtime())
        else:
            # In-line write (Tables 4-5 configuration #3): the rank
            # blocks for the full local-disk write.
            p.mpi.compute(p.machine.disk_write_time(writer.bytes_written))
    p._writer = writer
    p._timer_base = p.mpi.Wtime()
    p.stats.checkpoints_started += 1
    p.stats.last_checkpoint_bytes = writer.bytes_written
    # Mode transition (the tail of the pragma pseudocode).
    p._poll_control()
    if p.modes.mode is not Mode.RUN:
        return  # a control message already drove the transition
    all_started = p.control.all_started(line)
    late = p.counters.late_expected()
    p.modes.start_checkpoint(all_started=all_started, late_expected=late)
    if all_started and not late:
        commit_checkpoint(p)


def commit_checkpoint(p: "C3Protocol") -> None:
    """Figure 5, ``chkpt_CommitCheckpoint``.

    The *protocol* commit — registry saves and resets, request-table
    shuffle, line bookkeeping — always happens here, at the virtual time
    the late messages drained.  What the config decides is the *storage*
    commit: the in-line path blocks for the log write and records the
    COMMIT marker immediately; the overlapped path stages the log bytes
    onto the node's drain device and defers the marker to
    ``C3Protocol._poll_drains``, which writes it once the rank's clock
    passes the drain-completion instant.  A kill in between leaves a
    torn (marker-less) line that restore rejects.
    """
    writer = p._writer
    if writer is None:
        raise ProtocolError("commit without an open checkpoint")
    # Save and reset the Late-Message-Registry (and the event log, which
    # carries the non-per-message non-determinism of Section 4).
    log_bytes = 0
    log_bytes += writer.save("late_registry", p.late_reg.to_wire())
    log_bytes += writer.save("event_log", p.event_log.to_wire())
    log_bytes += writer.save("request_table",
                             p.reqtable.on_commit(p.resolve_state_key,
                                                  line_epoch=p.epoch))
    p.stats.last_log_bytes = log_bytes
    p.late_reg.reset()
    p.event_log.reset()
    # Commit checkpoint to disk; close checkpoint.
    p.mpi.compute(log_bytes / SERIALIZE_BANDWIDTH)
    p._writer = None
    p.control.forget_line(p.epoch)
    if p.config.save_to_disk and p.config.overlap:
        durable_at = p._device.submit(p.rank, log_bytes, p.mpi.Wtime())
        p._pending.append((writer.version, writer, durable_at))
        # The staging instant is itself a mid-drain fault point: every
        # section is on storage, the COMMIT marker is not — a kill here
        # (``in_drain`` specs) must leave a line restore rejects.
        p.mpi._ctx.drain_fault_point(writer.version)
        return
    if p.config.save_to_disk:
        p.mpi.compute(p.machine.disk_write_time(log_bytes))
    p._durable_commit(writer, p.mpi.Wtime())


def _line_usable(p: "C3Protocol", version: int) -> bool:
    """Can this rank actually restore from line ``version``?

    Deep-validates the line itself (manifest sizes + payload digests)
    and, under incremental checkpointing, walks the record chain to the
    last full save deep-validating every ancestor line on the way — an
    ancestor is a separate line with its own marker that the candidate's
    manifest does not cover, so bit-rot or GC damage there must reject
    the candidate *before* restore starts mutating protocol state.
    """
    if not p.store.validate_line(version, p.rank, deep=True):
        return False
    v = version
    while True:
        try:
            snap = CheckpointReader(p.store, v, p.rank).load("app")
        except Exception:   # torn, missing, or undeserializable section
            return False
        rec = snap.get("incremental") if isinstance(snap, dict) else None
        if rec is None or rec.get("full"):
            return True
        v -= 1
        if v < 1:
            return False   # chain has no full save on stable storage
        if not p.store.validate_line(v, p.rank, deep=True):
            return False


def _best_usable_line(p: "C3Protocol", ceiling: int):
    """This rank's newest committed line ``<= ceiling`` that
    :func:`_line_usable` accepts, or None."""
    versions = p.store.committed_map().get(p.rank, [])
    for v in reversed(versions):
        if v > ceiling:
            continue
        if _line_usable(p, v):
            return v
    return None


def restore_checkpoint(p: "C3Protocol") -> bool:
    """Figure 5, ``chkpt_RestoreCheckpoint``.

    Returns False when no recovery line has been committed everywhere (the
    job simply restarts from the beginning).
    """
    if p.ctx is None:
        raise ProtocolError("protocol has no bound application context")
    p.recovering = True
    t_restore_start = p.mpi.Wtime()
    # Query the last local checkpoint committed to disk, then a global
    # reduction for the last line committed on all nodes.  ``validate``
    # skips *torn* lines — a COMMIT manifest naming a missing, truncated,
    # or digest-mismatched section (a crash mid-drain or mid-commit) —
    # falling back to the previous committed line instead of restoring
    # garbage.
    newest = p.store.last_committed_local(p.rank)
    # Version agreement with per-rank re-validation.  A rank deep-proves
    # only its own candidate; the agreed minimum may be an *older* line
    # this rank never checked (a peer fell back further), and bit-rot in
    # that line — or in an unvalidated ancestor of its incremental chain
    # — must reject the line collectively, not crash the restore.  Every
    # iteration lowers the ceiling, so the loop terminates at cold
    # restart in the worst case.  (Found by the fault fuzzer: bit-rot in
    # a fallen-back-to line used to escape as a raw CheckpointError.)
    ceiling: int = 1 << 62
    mine = np.empty(1, dtype=np.int64)
    everyone = np.empty(1, dtype=np.int64)
    while True:
        local = _best_usable_line(p, ceiling)
        if newest is not None and newest != local:
            # the newest marker-bearing line failed deep validation —
            # torn sections or bit-rot — and recovery fell back past it
            p.stats.restore_fallbacks += 1
            coverage.hit("path:restore_fallback")
            newest = local  # count each fallback once
        mine[0] = local if local is not None else -1
        p.control.comm.Allreduce(mine, everyone, MIN)
        version = int(everyone[0])
        if version <= 0:
            coverage.hit("path:cold_restart")
            return False
        # every rank vets the *agreed* line (its own copy of it)
        mine[0] = 1 if (version == local
                        or _line_usable(p, version)) else 0
        p.control.comm.Allreduce(mine, everyone, MIN)
        if int(everyone[0]):
            break
        ceiling = version - 1
    coverage.hit("path:restore")
    reader = CheckpointReader(p.store, version, p.rank)
    # Restore basic MPI state and sanity-check the world geometry.
    mpi_state = reader.load("mpi_state")
    if mpi_state["nprocs"] != p.nprocs or mpi_state["rank"] != p.rank:
        raise ProtocolError(
            f"checkpoint v{version} was taken on a different world: "
            f"{mpi_state['nprocs']} procs, rank {mpi_state['rank']}"
        )
    p.epoch = mpi_state["epoch"]
    for nbytes in mpi_state["attached_buffers"]:
        p.mpi.Buffer_attach(nbytes)
    # Restore handle tables: datatypes then communicators.
    handles = reader.load("handles")
    p.datatable.restore_wire(handles["datatypes"])
    p.commtable.restore_wire(handles["comms"], p.mpi.COMM_WORLD)
    p.world_entry = p.commtable.get(0)
    # Restore counters and message registries.
    p.counters.restore_wire(reader.load("counters"))
    p.late_reg = LateMessageRegistry.from_wire(reader.load("late_registry"))
    p.event_log = EventLog.from_wire(reader.load("event_log"))
    early = EarlyMessageRegistry.from_wire(reader.load("early_registry"))
    # Restore the application state (in place where possible).  Under
    # incremental checkpointing, rebuild the arrays by walking the record
    # chain back to the last full save.
    app_snap = reader.load("app")
    if "incremental" in app_snap:
        from ..statesave.incremental import IncrementalTracker
        records = [app_snap["incremental"]]
        v = version
        while not records[0]["full"]:
            v -= 1
            if v < 1:
                raise ProtocolError(
                    "incremental chain has no full save on stable storage")
            prev = CheckpointReader(p.store, v, p.rank).load("app")
            records.insert(0, prev["incremental"])
        # lines back to the chain's full save stay pinned against GC
        p._full_saves = [v]
        arrays = IncrementalTracker.decode_chain(records)
        app_snap = {**app_snap,
                    "state": {**app_snap["state"], **arrays}}
        app_snap.pop("incremental")
    p.ctx.restore_state(app_snap)
    # Mode := Restore.
    from .modes import ModeTracker
    p.modes = ModeTracker(Mode.RESTORE)
    # Distribute Early-Message-Registry entries to their original senders
    # to form the Was-Early-Registry.
    for dest, tag, ctx_id in p.control.exchange_early_registries(
            early.by_sender()):
        p.was_early.add(dest, tag, ctx_id)
    # Roll the request table back to the line and recreate requests.
    survivors = p.reqtable.restore_wire(reader.load("request_table"),
                                        line_epoch=version)
    for entry in survivors:
        if entry.kind != "recv":
            continue
        centry = p.commtable.get(entry.comm_key)
        if entry.from_log:
            m = p.late_reg.match_rid(entry.rid)
            if m is None:
                raise ProtocolError(
                    f"request {entry.rid} was completed by a late message "
                    "but the log has no matching entry"
                )
            p.late_reg.pop(m)
            entry.log_payload = m.payload
            entry.source, entry.tag = m.source, m.tag
            p.stats.replayed_from_log += 1
            continue
        # Re-post into the restored buffer, found through its state key.
        if entry.state_key is None or entry.state_key not in p.ctx.state:
            raise ProtocolError(
                f"cannot re-post request {entry.rid}: its buffer's state "
                f"key {entry.state_key!r} is missing from the restored state"
            )
        entry.buffer = p.ctx.state[entry.state_key]
        dtype = p._named_handle(entry.dtype_name)
        p._post_recv(entry, centry, p.datatable.resolve(dtype))
    # Storage bookkeeping for the commit/GC pipeline: lines newer than
    # the restored one are pre-crash garbage — torn drains, or commits
    # some dead rank never matched — that the re-execution will rewrite,
    # so drop mine now rather than let stale sections shadow the fresh
    # ones' accounting.  (The GC floor itself is re-read from the
    # storage manifest at each durable commit.)
    p._my_lines = [v for v in p.store.committed_versions(p.rank)
                   if v <= version]
    if p.config.gc_lines:
        for v in p.store.lines_on_storage().get(p.rank, []):
            if v > version:
                p.store.delete_line(v, p.rank)
    # Charge the restore I/O time.
    p.mpi.compute(p.machine.disk_read_time(reader.total_bytes()))
    p.stats.restored_version = version
    p._timer_base = p.mpi.Wtime()
    p.stats.restore_seconds = p.mpi.Wtime() - t_restore_start
    p._maybe_finish_restore()
    return True
