"""Top-level C3 runner: make an application fault-tolerant and run it.

The Figure-1 pipeline, in library form: an application written against the
:class:`~repro.statesave.context.Context` API (or instrumented into that
form by :mod:`repro.precompiler`) is linked with the coordination layer
and executed on the simulated MPI runtime.  On a fail-stop fault the job
aborts; :func:`run_fault_tolerant` relaunches it, each rank restores from
the last recovery line committed on all nodes, and execution resumes.

Three entry points:

* :func:`run_original` — the uninstrumented application (baseline rows of
  Tables 2-3);
* :func:`run_c3` — one run under the coordination layer (optionally with
  fault injection); returns per-rank protocol stats;
* :func:`run_fault_tolerant` — run + restart loop until completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..mpi.api import MPI
from ..mpi.engine import JobResult, run_job
from ..mpi.faults import FaultPlan
from ..mpi.timemodel import MachineModel, TESTING
from ..statesave.context import Context
from ..storage.stable import InMemoryStorage, StorageBackend
from ..storage.store import CheckpointStore, as_store
from ..storage.wal import WalStore
from .checkpoint import restore_checkpoint
from .comms import C3Comm
from .modes import ProtocolError
from .protocol import C3Config, C3Protocol, C3Stats


@dataclass
class C3RunResult:
    """Outcome of a complete fault-tolerant execution."""

    job: JobResult
    stats: List[Optional[C3Stats]]
    restarts: int = 0
    history: List[JobResult] = field(default_factory=list)

    @property
    def virtual_time(self) -> float:
        return self.job.virtual_time

    @property
    def returns(self) -> List[Any]:
        return self.job.returns


def _c3_main(mpi: MPI, app: Callable, config: C3Config,
             storage, restoring: bool, app_args: Tuple):
    """Per-rank job body: build the layer, maybe restore, run the app."""
    protocol = C3Protocol(mpi, storage, config)
    ctx = Context(mpi, comm=C3Comm(protocol, protocol.world_entry),
                  pragma_hook=protocol.pragma)
    ctx.c3 = protocol
    protocol.bind(ctx)
    if restoring:
        restore_checkpoint(protocol)
        # After a restore the world entry may have been replaced.
        ctx.comm = C3Comm(protocol, protocol.commtable.get(0))
    result = app(ctx, *app_args)
    protocol.finalize()
    return result, protocol.stats


def run_c3(app: Callable, nprocs: int, machine: MachineModel = TESTING,
           storage=None,
           config: Optional[C3Config] = None,
           fault_plan: Optional[FaultPlan] = None,
           restoring: bool = False, app_args: Tuple = (),
           wall_timeout: float = 300.0,
           engine: Optional[str] = None) -> Tuple[JobResult, List[Optional[C3Stats]]]:
    """One job execution under the coordination layer.

    ``storage`` may be a :class:`CheckpointStore` or a bare
    :class:`StorageBackend` (wrapped through
    :func:`~repro.storage.store.as_store` — a backend already holding WAL
    segments opens as a shared :class:`WalStore`).  The default is the
    production engine: a WAL over in-memory storage.
    """
    # Normalize to ONE store instance before the job starts: the WAL is
    # stateful (staged buffers, group-commit accounting), so every rank
    # must share it rather than wrap the backend independently.
    store = as_store(storage) if storage is not None \
        else WalStore(InMemoryStorage())
    config = config or C3Config()
    result = run_job(
        nprocs, _c3_main,
        args=(app, config, store, restoring, app_args),
        machine=machine, fault_plan=fault_plan, wall_timeout=wall_timeout,
        engine=engine,
    )
    # Job-lifetime boundary: a clean end drains staged group commits; a
    # fail-stop applies the store's crash semantics (the WAL tears the
    # failed node's unsynced tail and rebuilds its index by replay).
    store.on_job_end(result.failure.rank if result.failure else None)
    stats: List[Optional[C3Stats]] = []
    returns = []
    for r in result.returns:
        if isinstance(r, tuple) and len(r) == 2 and isinstance(r[1], C3Stats):
            returns.append(r[0])
            stats.append(r[1])
        else:
            returns.append(None)
            stats.append(None)
    result.returns = returns
    return result, stats


def run_fault_tolerant(app: Callable, nprocs: int,
                       machine: MachineModel = TESTING,
                       storage=None,
                       config: Optional[C3Config] = None,
                       fault_plan: Optional[FaultPlan] = None,
                       app_args: Tuple = (), max_restarts: int = 8,
                       wall_timeout: float = 300.0,
                       engine: Optional[str] = None) -> C3RunResult:
    """Run to completion, restarting from the last recovery line on failure.

    The fault plan applies only to the first execution (the paper's model:
    one failure, then recovery); pass a plan with multiple specs to test
    repeated failures — specs that already fired do not fire again.
    """
    # One store for the whole restart loop: the failed run's survivors and
    # the restarted run must see the same durable state.
    storage = as_store(storage) if storage is not None \
        else WalStore(InMemoryStorage())
    config = config or C3Config()
    history: List[JobResult] = []
    plan = fault_plan or FaultPlan.none()
    restoring = False
    restarts = 0
    while True:
        result, stats = run_c3(app, nprocs, machine=machine, storage=storage,
                               config=config, fault_plan=plan,
                               restoring=restoring, app_args=app_args,
                               wall_timeout=wall_timeout, engine=engine)
        result.raise_errors()
        if result.failure is None:
            return C3RunResult(job=result, stats=stats, restarts=restarts,
                               history=history)
        history.append(result)
        restarts += 1
        if restarts > max_restarts:
            raise ProtocolError(
                f"job failed {restarts} times; giving up "
                f"(last failure: {result.failure})"
            )
        restoring = True


def resume_from_manifest(app: Callable, nprocs: int,
                         storage,
                         machine: MachineModel = TESTING,
                         config: Optional[C3Config] = None,
                         fault_plan: Optional[FaultPlan] = None,
                         app_args: Tuple = (),
                         wall_timeout: float = 300.0,
                         require_line: bool = True,
                         engine: Optional[str] = None,
                         ) -> Tuple[JobResult, List[Optional[C3Stats]]]:
    """Restart a job directly from the checkpoints a storage backend holds.

    The entry point for restarting *outside* the in-process
    :func:`run_fault_tolerant` loop — a campaign driver, an operator
    script, or a fresh process pointed at the stable storage of a failed
    job.  It queries the commit manifest for the last recovery line
    committed on **all** ranks (the same answer the per-rank global
    reduction of ``chkpt_RestoreCheckpoint`` computes), then relaunches
    the job in restore mode.

    ``require_line=True`` (default) raises :class:`ProtocolError` when the
    storage holds no complete recovery line, instead of silently
    re-running the application from the beginning.
    """
    # as_store auto-detects the layout: a backend holding WAL segments
    # opens as a WalStore (replaying the log), anything else as the
    # scatter layout.  validate=True: torn lines (a crash
    # mid-drain/mid-commit left a marker-less or truncated line) are
    # invisible, exactly as they are to the per-rank restore scan.
    store = as_store(storage)
    line = store.last_committed_global(nprocs, validate=True)
    if line is None and require_line:
        raise ProtocolError(
            f"storage holds no recovery line committed by all {nprocs} "
            "ranks; nothing to restart from"
        )
    return run_c3(app, nprocs, machine=machine, storage=store,
                  config=config, fault_plan=fault_plan,
                  restoring=line is not None,
                  app_args=app_args, wall_timeout=wall_timeout,
                  engine=engine)


def _original_main(mpi: MPI, app: Callable, app_args: Tuple):
    ctx = Context(mpi)
    return app(ctx, *app_args)


def run_original(app: Callable, nprocs: int, machine: MachineModel = TESTING,
                 app_args: Tuple = (), wall_timeout: float = 300.0,
                 engine: Optional[str] = None) -> JobResult:
    """Run the uninstrumented application (no coordination layer)."""
    return run_job(nprocs, _original_main, args=(app, app_args),
                   machine=machine, wall_timeout=wall_timeout, engine=engine)


def cached_comm(ctx: Context, name: str, factory: Callable[[], C3Comm]):
    """Create a sub-communicator once per job lifetime.

    On the first execution ``factory()`` runs (and the protocol records the
    creation); after a restart the recorded creation was already replayed
    by ``chkpt_RestoreCheckpoint``, so the handle is rebuilt from the
    communicator table instead of calling ``factory`` again.
    """
    key_name = f"__comm_{name}"
    protocol: Optional[C3Protocol] = getattr(ctx, "c3", None)
    if ctx.first_time(key_name):
        comm = factory()
        ctx.done(key_name)
        if protocol is not None:
            ctx.state[key_name] = comm._entry.key
        return comm
    if protocol is None:
        # Original mode has no restarts; first_time can only be False if
        # the application called this twice with the same name.
        raise ProtocolError(f"communicator {name!r} created twice")
    key = int(ctx.state[key_name])
    entry = protocol.commtable.get(key)
    from .comms import C3CartComm
    if entry.recipe.get("kind") == "cart":
        return C3CartComm(protocol, entry)
    return C3Comm(protocol, entry)
