"""Per-process message counters (Section 3.1).

* ``sent_count[Q]`` — messages sent to Q in the current epoch; its value is
  shipped with the Checkpoint-Initiated control message so Q knows how many
  late messages to expect.
* ``received_count[Q]`` — intra-epoch messages received from Q.
* ``early_received[Q]`` — early (next-epoch) messages received from Q.
* ``late_received[Q]`` — previous-epoch messages received from Q, counted
  against ``expected_late[Q]`` to decide when logging can stop.

``on_start_checkpoint`` performs the counter shuffle of Figure 5's
"Prepare counters": intra-epoch receipts become the late baseline (they are
previous-epoch messages now), early receipts become the new intra-epoch
baseline, and early counters reset.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .modes import ProtocolError


class CounterSet:
    """All per-peer counters for one process."""

    def __init__(self, nprocs: int, rank: int):
        self.nprocs = nprocs
        self.rank = rank
        self.sent_count = [0] * nprocs
        self.received_count = [0] * nprocs
        self.early_received = [0] * nprocs
        self.late_received = [0] * nprocs
        #: late messages each peer announced for the epoch that just ended;
        #: None until that peer's Checkpoint-Initiated message arrives
        self.expected_late: List[Optional[int]] = [None] * nprocs

    # -- normal-execution updates ---------------------------------------------
    def on_send(self, dest: int) -> None:
        self.sent_count[dest] += 1

    def on_intra_received(self, source: int) -> None:
        self.received_count[source] += 1

    def on_early_received(self, source: int) -> None:
        self.early_received[source] += 1

    def on_late_received(self, source: int) -> None:
        self.late_received[source] += 1
        if (self.expected_late[source] is not None
                and self.late_received[source] > self.expected_late[source]):
            raise ProtocolError(
                f"rank {self.rank}: received {self.late_received[source]} "
                f"late messages from {source}, but only "
                f"{self.expected_late[source]} were announced"
            )

    # -- checkpoint boundary ------------------------------------------------------
    def on_start_checkpoint(self) -> List[int]:
        """Figure 5 "Prepare counters"; returns the sent counts to announce."""
        announced = list(self.sent_count)
        self.late_received = list(self.received_count)
        self.received_count = list(self.early_received)
        self.early_received = [0] * self.nprocs
        self.sent_count = [0] * self.nprocs
        self.expected_late = [None] * self.nprocs
        return announced

    def on_control_received(self, source: int, their_sent_to_me: int) -> None:
        """A peer's Checkpoint-Initiated message announced its sent count."""
        if self.expected_late[source] is not None:
            raise ProtocolError(
                f"rank {self.rank}: duplicate Checkpoint-Initiated from {source}"
            )
        self.expected_late[source] = their_sent_to_me

    # -- logging-completion predicates ------------------------------------------------
    def late_drained(self) -> bool:
        """Have all announced late messages arrived?"""
        for q in range(self.nprocs):
            if q == self.rank:
                continue
            expected = self.expected_late[q]
            if expected is None or self.late_received[q] < expected:
                return False
        return True

    def late_expected(self) -> bool:
        """Are any late messages still outstanding (or unannounced)?"""
        return not self.late_drained()

    # -- checkpoint plumbing ----------------------------------------------------------
    def to_wire(self) -> dict:
        # Saved at StartCheckpoint, i.e. *after* the counter shuffle: the
        # checkpointed received_count is the new epoch's baseline (it already
        # contains the early messages that crossed the recovery line).
        return {
            "sent_count": list(self.sent_count),
            "received_count": list(self.received_count),
            "early_received": list(self.early_received),
        }

    def restore_wire(self, wire: dict) -> None:
        self.sent_count = list(wire["sent_count"])
        self.received_count = list(wire["received_count"])
        self.early_received = list(wire["early_received"])
        self.late_received = [0] * self.nprocs
        self.expected_late = [None] * self.nprocs
