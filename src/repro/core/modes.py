"""Protocol modes and the Figure-3 state machine.

Each process is always in exactly one mode:

* ``RUN`` — normal execution;
* ``NONDET_LOG`` — a checkpoint was started; late messages *and*
  non-deterministic events are logged;
* ``RECVONLY_LOG`` — every process has started the checkpoint, so no new
  early messages can exist; only late messages are still logged;
* ``RESTORE`` — recovering: replaying late messages from the log and
  suppressing sends recorded in the Was-Early-Registry.

:class:`ModeTracker` enforces the legal transitions of Figure 3 —
an illegal transition indicates a protocol bug, so it raises.
"""

from __future__ import annotations

import enum
from typing import Optional


class ProtocolError(Exception):
    """An internal C3 protocol invariant was violated."""


class Mode(enum.Enum):
    RUN = "Run"
    NONDET_LOG = "NonDet-Log"
    RECVONLY_LOG = "RecvOnly-Log"
    RESTORE = "Restore"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


#: legal (from, to) transitions; RUN->RUN covers a checkpoint that commits
#: immediately (uniprocessor / no late messages expected).
_LEGAL = {
    (Mode.RUN, Mode.NONDET_LOG),     # start checkpoint, others pending
    (Mode.RUN, Mode.RECVONLY_LOG),   # start checkpoint, all already started
    (Mode.RUN, Mode.RUN),            # start checkpoint, nothing to log
    (Mode.NONDET_LOG, Mode.RECVONLY_LOG),
    (Mode.NONDET_LOG, Mode.RUN),     # all started and no late outstanding
    (Mode.RECVONLY_LOG, Mode.RUN),   # commit
    (Mode.RESTORE, Mode.RUN),        # registries drained
}


class ModeTracker:
    """Current mode plus transition validation and history."""

    def __init__(self, initial: Mode = Mode.RUN):
        self.mode = initial
        self.history = [initial]

    def transition(self, to: Mode, reason: str = "") -> None:
        if to == self.mode:
            return
        if (self.mode, to) not in _LEGAL:
            raise ProtocolError(
                f"illegal mode transition {self.mode} -> {to}"
                + (f" ({reason})" if reason else "")
            )
        self.mode = to
        self.history.append(to)

    # transitions named after the Figure-3 edges -----------------------------
    def start_checkpoint(self, all_started: bool, late_expected: bool) -> None:
        """Leaving the pragma after ``chkpt_StartCheckpoint``."""
        if self.mode is not Mode.RUN:
            raise ProtocolError(f"checkpoint started outside Run mode ({self.mode})")
        if not all_started:
            self.transition(Mode.NONDET_LOG, "start checkpoint")
        elif late_expected:
            self.transition(Mode.RECVONLY_LOG, "start checkpoint, all started")
        else:
            self.transition(Mode.RUN, "start checkpoint, nothing to log")

    def stop_nondet_logging(self, late_expected: bool) -> None:
        """All nodes started the checkpoint (or a stopped-logging message arrived)."""
        if self.mode is not Mode.NONDET_LOG:
            raise ProtocolError(f"stop_nondet_logging in mode {self.mode}")
        self.transition(Mode.RECVONLY_LOG if late_expected else Mode.RUN,
                        "all nodes started checkpoint")

    def commit(self) -> None:
        """All late messages received."""
        if self.mode is not Mode.RECVONLY_LOG:
            raise ProtocolError(f"commit in mode {self.mode}")
        self.transition(Mode.RUN, "received all late messages")

    def finish_restore(self) -> None:
        """Late-Message-Registry and Was-Early-Registry both empty."""
        if self.mode is not Mode.RESTORE:
            raise ProtocolError(f"finish_restore in mode {self.mode}")
        self.transition(Mode.RUN, "registries empty")

    @property
    def is_logging_nondet(self) -> bool:
        return self.mode is Mode.NONDET_LOG

    @property
    def is_logging_late(self) -> bool:
        return self.mode in (Mode.NONDET_LOG, Mode.RECVONLY_LOG)
