"""repro — a reproduction of "Implementation and Evaluation of a Scalable
Application-Level Checkpoint-Recovery Scheme for MPI Programs" (SC 2004).

The package provides:

* :mod:`repro.mpi` — a simulated MPI runtime (the substrate);
* :mod:`repro.core` — the C3 coordination layer (the contribution);
* :mod:`repro.statesave` — application-level state saving;
* :mod:`repro.storage` — stable storage, commit manifest, drain daemon;
* :mod:`repro.precompiler` — the source-to-source instrumenter;
* :mod:`repro.baselines` — Condor-style SLC, blocking coordinated
  checkpointing, Chandy-Lamport;
* :mod:`repro.apps` — NPB-style kernels and demo applications;
* :mod:`repro.harness` — experiment drivers regenerating Tables 1-7.

Quickstart::

    from repro import run_fault_tolerant, C3Config, FaultPlan, FaultSpec

    def app(ctx):
        for step in ctx.range("t", 100):
            ctx.checkpoint()          # ``#pragma ccc checkpoint``
            ... compute and communicate through ctx.comm ...

    result = run_fault_tolerant(
        app, nprocs=8,
        fault_plan=FaultPlan([FaultSpec(rank=3, after_ops=500)]),
        config=C3Config(checkpoint_interval=1.0),
    )
"""

from .core import (
    C3Config, C3Protocol, C3RunResult, C3Stats, run_c3, run_fault_tolerant,
    run_original,
)
from .mpi import (
    CMI, FaultPlan, FaultSpec, LEMIEUX, MACHINES, MachineModel, TESTING,
    VELOCITY2, run_job,
)
from .statesave import Context
from .storage import DiskStorage, InMemoryStorage

__version__ = "1.0.0"

__all__ = [
    "run_fault_tolerant", "run_c3", "run_original",
    "C3Config", "C3Protocol", "C3Stats", "C3RunResult",
    "Context", "run_job",
    "FaultPlan", "FaultSpec",
    "MachineModel", "MACHINES", "LEMIEUX", "VELOCITY2", "CMI", "TESTING",
    "InMemoryStorage", "DiskStorage",
    "__version__",
]
