"""Protocol-state coverage counters for the fault fuzzer.

The fuzzer (:mod:`repro.harness.fuzz`) steers schedule generation by the
protocol paths a run lights up — but the interesting paths often execute
in runs that *die* (a killed job returns no per-rank stats, so
:class:`~repro.core.protocol.C3Stats` from the final clean execution
misses everything the fault window exercised).  This module is the side
channel: a process-global :class:`CoverageMap` that instrumented code in
:mod:`repro.core.protocol`, :mod:`repro.core.checkpoint`,
:mod:`repro.storage.wal`, and :mod:`repro.storage.faulty` reports into
with :func:`hit`, surviving engine teardown and job aborts.  It lives at
the top of the package (not in ``repro.core``) so the storage layer can
import it without a cycle through the protocol modules.

When no map is installed (the default — every normal run, test, and
campaign), :func:`hit` is a single attribute check and returns; the
counters cost nothing measurable on the hot paths.

Coverage points are plain strings, namespaced by origin:

* ``msg:<class>`` — message-class signatures matched by the protocol's
  delivery classifier (``late``, ``intra``, ``early``, ``wildcard``);
* ``path:<event>`` — commit/fallback/GC/replay/truncation paths taken
  (e.g. ``path:commit``, ``path:restore_fallback``, ``path:gc``,
  ``path:wal_truncated``, ``path:ckpt_abandoned``);
* ``window:<trigger>`` — fault windows hit, reported by the fuzz runner
  from :attr:`FaultPlan.fired` (e.g. ``window:at_epoch``);
* ``storage:<fault>`` — storage faults actually injected by
  :class:`~repro.storage.faulty.FaultyStorage` (e.g. ``storage:bit_rot``).

The map is deliberately not thread-local: the threads backend runs ranks
concurrently, and a lost increment under a data race only underreports a
*count*, never unsets a point — set-of-points coverage stays exact
because dict key insertion is atomic under the GIL.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional


class CoverageMap:
    """A bag of named coverage counters."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def hit(self, point: str, n: int = 1) -> None:
        self.counts[point] = self.counts.get(point, 0) + n

    def points(self) -> FrozenSet[str]:
        """The set of coverage points hit at least once."""
        return frozenset(p for p, n in self.counts.items() if n > 0)

    def merge(self, other: "CoverageMap") -> None:
        for point, n in other.counts.items():
            self.hit(point, n)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoverageMap({self.counts!r})"


#: the installed sink, or None (coverage disabled)
_active: Optional[CoverageMap] = None


def install(cmap: Optional[CoverageMap]) -> Optional[CoverageMap]:
    """Install ``cmap`` as the process-global sink; returns the previous
    one so callers can nest/restore.  Pass ``None`` to disable."""
    global _active
    previous = _active
    _active = cmap
    return previous


def active() -> Optional[CoverageMap]:
    return _active


def hit(point: str, n: int = 1) -> None:
    """Report one coverage event; no-op unless a map is installed."""
    if _active is not None:
        _active.hit(point, n)
