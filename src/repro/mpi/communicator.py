"""Communicators, groups, and cartesian topologies.

A :class:`Communicator` is a rank-local handle: it knows the member group
(world ranks), this process's rank within the group, and a *context id*
used for message matching.  Each communicator also owns a *shadow* context
id on which the built-in collective algorithms exchange their internal
point-to-point traffic, so collective internals can never match
application receives — mirroring how a real MPI hides collective traffic
from the application (and why the C3 layer applies its protocol at the
collective *call sites*, Section 4.3).

Communicator creation (``Dup``/``Split``/``Cart_create``) is collective;
all members derive the same new context id from a deterministic key
``(parent context, per-communicator creation sequence number)`` resolved
through an engine-global registry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import collectives as _coll
from .datatypes import Datatype, from_numpy_dtype
from .errors import InvalidCommunicatorError, InvalidRankError, InvalidTagError
from .matching import ANY_SOURCE, ANY_TAG, PostedRecv
from .message import Envelope, MessageSignature
from .ops import Op
from .requests import Request
from .status import Status

PROC_NULL = -3
#: Tags must stay below this; the runtime reserves larger values.
TAG_UB = 1 << 24


class Group:
    """An ordered set of world ranks (``MPI_Group``)."""

    def __init__(self, world_ranks: Sequence[int]):
        self.world_ranks: Tuple[int, ...] = tuple(world_ranks)

    def size(self) -> int:
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> Optional[int]:
        """Group rank of a world rank, or None if not a member."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            return None

    def translate(self, group_rank: int) -> int:
        return self.world_ranks[group_rank]

    def __eq__(self, other) -> bool:
        return isinstance(other, Group) and self.world_ranks == other.world_ranks

    def __hash__(self) -> int:
        return hash(self.world_ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group({list(self.world_ranks)})"


class Communicator:
    """Rank-local communicator handle."""

    def __init__(self, rank_ctx, group: Group, context_id: int, shadow_id: int,
                 name: str = "comm"):
        self._ctx = rank_ctx
        self.group = group
        self.context_id = context_id
        self.shadow_id = shadow_id
        self.name = name
        self.rank = group.rank_of(rank_ctx.rank)
        if self.rank is None:
            raise InvalidCommunicatorError(
                f"world rank {rank_ctx.rank} is not a member of {name}"
            )
        self.size = group.size()
        self.freed = False
        self._creation_seq = 0  # per-communicator collective-creation counter

    # ------------------------------------------------------------------ util
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.size

    def _check(self) -> None:
        if self.freed:
            raise InvalidCommunicatorError(f"communicator {self.name} has been freed")

    def _world_rank(self, comm_rank: int) -> int:
        if not 0 <= comm_rank < self.size:
            raise InvalidRankError(
                f"rank {comm_rank} out of range for {self.name} of size {self.size}"
            )
        return self.group.translate(comm_rank)

    def _check_tag(self, tag: int, allow_wildcard: bool = False) -> None:
        if tag == ANY_TAG and allow_wildcard:
            return
        if tag < 0 or tag >= TAG_UB:
            raise InvalidTagError(f"tag {tag} out of range [0, {TAG_UB})")

    @staticmethod
    def _resolve_type(buf, datatype: Optional[Datatype]) -> Datatype:
        if datatype is not None:
            return datatype
        if isinstance(buf, np.ndarray):
            return from_numpy_dtype(buf.dtype)
        raise InvalidCommunicatorError(
            "datatype required for non-numpy buffers"
        )

    # --------------------------------------------------------------- sending
    def Send(self, buf, dest: int, tag: int = 0, datatype: Optional[Datatype] = None,
             count: Optional[int] = None, piggyback=None) -> None:
        """Blocking standard-mode send (buffered by the simulator)."""
        self._check()
        if dest == PROC_NULL:
            return
        self._check_tag(tag)
        dt = self._resolve_type(buf, datatype)
        n = count if count is not None else (buf.size if isinstance(buf, np.ndarray) else 1)
        payload = dt.pack(buf, n)
        self.send_packed(payload, dest, tag, count=n, type_name=dt.name,
                         piggyback=piggyback)

    def send_packed(self, payload: bytes, dest: int, tag: int, count: int = 0,
                    type_name: str = "MPI_BYTE", piggyback=None,
                    context_id: Optional[int] = None, system: bool = False) -> None:
        """Send pre-packed bytes (used by the C3 layer for replay/forwarding)."""
        self._check()
        if dest == PROC_NULL:
            return
        ctx = self._ctx
        ctx.enter_mpi_call()
        cid = self.context_id if context_id is None else context_id
        sig = MessageSignature(source=self.rank, tag=tag, context_id=cid)
        env = Envelope(signature=sig, payload=payload, count=count,
                       type_name=type_name, dest=self._world_rank(dest),
                       piggyback=piggyback, system=system)
        ctx.post_envelope(env)

    def Isend(self, buf, dest: int, tag: int = 0, datatype: Optional[Datatype] = None,
              count: Optional[int] = None, piggyback=None) -> Request:
        """Non-blocking send; complete immediately (eager buffering)."""
        self.Send(buf, dest, tag, datatype=datatype, count=count, piggyback=piggyback)
        n = count if count is not None else (buf.size if isinstance(buf, np.ndarray) else 1)
        return Request(Request.SEND, self._ctx, buffer=buf, count=n)

    # -------------------------------------------------------------- receiving
    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype: Optional[Datatype] = None, status: Optional[Status] = None) -> Status:
        """Blocking receive into ``buf``; returns a filled :class:`Status`."""
        req = self.Irecv(buf, source=source, tag=tag, datatype=datatype)
        st = req.wait()
        if status is not None:
            status.__dict__.update(st.__dict__)
        return st

    def Irecv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              datatype: Optional[Datatype] = None,
              context_id: Optional[int] = None) -> Request:
        """Non-blocking receive."""
        self._check()
        ctx = self._ctx
        ctx.enter_mpi_call()
        if source == PROC_NULL:
            req = Request(Request.RECV, ctx, buffer=buf, count=0)
            req.envelope = Envelope(
                signature=MessageSignature(PROC_NULL, tag if tag != ANY_TAG else 0,
                                           self.context_id),
                payload=b"", count=0, type_name="MPI_BYTE", dest=ctx.rank,
                avail_time=ctx.clock.now,
            )
            return req
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise InvalidRankError(f"source {source} out of range for {self.name}")
        self._check_tag(tag, allow_wildcard=True)
        dt = self._resolve_type(buf, datatype) if buf is not None else None
        max_bytes = buf.nbytes if isinstance(buf, np.ndarray) else (1 << 62)
        cid = self.context_id if context_id is None else context_id
        pr = PostedRecv(cid, source, tag, max_bytes)
        req = Request(Request.RECV, ctx, buffer=buf,
                      count=(buf.size if isinstance(buf, np.ndarray) else 0),
                      datatype=dt)
        req.posted = pr
        ctx.mailbox.post(pr)
        return req

    def Sendrecv(self, sendbuf, dest: int, sendtag: int, recvbuf, source: int,
                 recvtag: int, status: Optional[Status] = None) -> Status:
        """Combined send+receive (deadlock-free)."""
        rreq = self.Irecv(recvbuf, source=source, tag=recvtag)
        self.Send(sendbuf, dest, sendtag)
        st = rreq.wait()
        if status is not None:
            status.__dict__.update(st.__dict__)
        return st

    # ---------------------------------------------------------------- probing
    def has_pending(self, context_id: Optional[int] = None) -> bool:
        """O(1): is any unmatched message pending on this communicator?

        Cheaper than :meth:`Iprobe` when polled on a hot path (the C3
        control plane checks this on every intercepted call).
        """
        self._check()
        cid = self.context_id if context_id is None else context_id
        if self._ctx.mailbox.has_pending(cid):
            return True
        # Cooperative fairness (amortized): probe spin loops must yield.
        self._ctx.nb_poll()
        return False

    def recv_out_of_band(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                         datatype: Optional[Datatype] = None) -> Optional[Status]:
        """Consume one matching pending message without touching virtual time.

        The consumption path of an out-of-band control daemon (the
        PSC-style process the C3 paper assumes): the receive charges no
        call overhead and performs no availability sync, so *when* the
        daemon happens to drain a control message leaves no trace on the
        application's virtual clock.  That is what keeps clock traces
        identical across execution backends whose physical delivery
        points differ (one fiber schedule vs. sharded epoch releases) —
        the send side still pays its full per-message cost.  Returns
        ``None`` when nothing matching is pending (after yielding the
        scheduler a turn, like a failed probe).
        """
        self._check()
        env = self._ctx.mailbox.pop_pending(self.context_id, source, tag)
        if env is None:
            self._ctx.nb_poll()
            return None
        dt = self._resolve_type(buf, datatype)
        elems = env.nbytes // dt.size if dt.size else env.count
        dt.unpack(env.payload, buf, count=elems)
        return Status(source=env.source, tag=env.tag, count=elems,
                      nbytes=env.nbytes)

    def Iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               context_id: Optional[int] = None) -> Tuple[bool, Optional[Status]]:
        """Non-blocking probe for a matching pending message."""
        self._check()
        cid = self.context_id if context_id is None else context_id
        env = self._ctx.mailbox.probe_pending(cid, source, tag)
        if env is None:
            # Cooperative fairness: let peers progress during probe loops.
            self._ctx.nb_poll()
            return False, None
        return True, Status(source=env.source, tag=env.tag, count=env.count,
                            nbytes=env.nbytes)

    def Probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status:
        """Blocking probe."""
        self._check()
        ctx = self._ctx

        def found() -> bool:
            return ctx.mailbox.probe_pending(self.context_id, source, tag) is not None

        ctx.mailbox.wait_for(found, poll=ctx.poll_hook)
        env = ctx.mailbox.probe_pending(self.context_id, source, tag)
        assert env is not None
        return Status(source=env.source, tag=env.tag, count=env.count, nbytes=env.nbytes)

    # ------------------------------------------------------------- collectives
    def Barrier(self) -> None:
        _coll.barrier(self)

    def Bcast(self, buf, root: int = 0) -> None:
        _coll.bcast(self, buf, root)

    def Reduce(self, sendbuf, recvbuf, op: Op, root: int = 0) -> None:
        _coll.reduce(self, sendbuf, recvbuf, op, root)

    def Allreduce(self, sendbuf, recvbuf, op: Op) -> None:
        _coll.allreduce(self, sendbuf, recvbuf, op)

    def Scan(self, sendbuf, recvbuf, op: Op) -> None:
        _coll.scan(self, sendbuf, recvbuf, op)

    def Gather(self, sendbuf, recvbuf, root: int = 0) -> None:
        _coll.gather(self, sendbuf, recvbuf, root)

    def Gatherv(self, sendbuf, recvbuf, counts: Sequence[int], root: int = 0) -> None:
        _coll.gatherv(self, sendbuf, recvbuf, counts, root)

    def Scatter(self, sendbuf, recvbuf, root: int = 0) -> None:
        _coll.scatter(self, sendbuf, recvbuf, root)

    def Scatterv(self, sendbuf, recvbuf, counts: Sequence[int], root: int = 0) -> None:
        _coll.scatterv(self, sendbuf, recvbuf, counts, root)

    def Allgather(self, sendbuf, recvbuf) -> None:
        _coll.allgather(self, sendbuf, recvbuf)

    def Alltoall(self, sendbuf, recvbuf) -> None:
        _coll.alltoall(self, sendbuf, recvbuf)

    def Alltoallv(self, sendbuf, sendcounts: Sequence[int], recvbuf,
                  recvcounts: Sequence[int]) -> None:
        _coll.alltoallv(self, sendbuf, sendcounts, recvbuf, recvcounts)

    # ------------------------------------------------- communicator management
    def _next_creation_key(self) -> Tuple[int, int]:
        key = (self.context_id, self._creation_seq)
        self._creation_seq += 1
        return key

    def Dup(self, name: Optional[str] = None,
            _force_ids: Optional[Tuple[int, int]] = None) -> "Communicator":
        """Collective duplicate (``MPI_Comm_dup``).

        ``_force_ids`` pins the (context, shadow) ids — used only by
        checkpoint-restore replay, which must reproduce the original
        run's ids (see :meth:`Engine.context_for`).
        """
        self._check()
        key = self._next_creation_key()
        cid, shadow = self._ctx.engine.context_for(key, force=_force_ids)
        return Communicator(self._ctx, self.group, cid, shadow,
                            name=name or f"{self.name}.dup")

    def Split(self, color: int, key: int = 0,
              _force_ids: Optional[Tuple[int, int]] = None
              ) -> Optional["Communicator"]:
        """Collective split (``MPI_Comm_split``); color < 0 means undefined."""
        self._check()
        ckey = self._next_creation_key()
        # Allgather (color, key, world_rank) over the shadow context.
        mine = np.array([color, key, self._ctx.rank], dtype=np.int64)
        allv = np.empty((self.size, 3), dtype=np.int64)
        _coll.allgather(self, mine, allv)
        if color < 0:
            return None
        members = [(int(k), int(wr)) for c, k, wr in allv if int(c) == color]
        members.sort()
        group = Group([wr for _k, wr in members])
        cid, shadow = self._ctx.engine.context_for((ckey, color),
                                                   force=_force_ids)
        return Communicator(self._ctx, group, cid, shadow,
                            name=f"{self.name}.split({color})")

    def Cart_create(self, dims: Sequence[int], periods: Sequence[int],
                    reorder: bool = False,
                    _force_ids: Optional[Tuple[int, int]] = None) -> "CartComm":
        """Collective cartesian-topology creation (``MPI_Cart_create``)."""
        self._check()
        ndims = int(np.prod(dims))
        if ndims != self.size:
            raise InvalidCommunicatorError(
                f"cartesian grid {tuple(dims)} does not cover {self.size} ranks"
            )
        key = self._next_creation_key()
        cid, shadow = self._ctx.engine.context_for(key, force=_force_ids)
        return CartComm(self._ctx, self.group, cid, shadow, tuple(dims),
                        tuple(bool(p) for p in periods), name=f"{self.name}.cart")

    def Free(self) -> None:
        """Release the handle (``MPI_Comm_free``)."""
        self._check()
        self.freed = True


class CartComm(Communicator):
    """Communicator with a cartesian virtual topology."""

    def __init__(self, rank_ctx, group: Group, context_id: int, shadow_id: int,
                 dims: Tuple[int, ...], periods: Tuple[bool, ...], name: str = "cart"):
        super().__init__(rank_ctx, group, context_id, shadow_id, name=name)
        self.dims = dims
        self.periods = periods

    def Get_coords(self, rank: Optional[int] = None) -> List[int]:
        """Row-major coordinates of a rank (default: this rank)."""
        r = self.rank if rank is None else rank
        coords: List[int] = []
        for extent in reversed(self.dims):
            coords.append(r % extent)
            r //= extent
        coords.reverse()
        return coords

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """Rank at the given coordinates (applies periodicity)."""
        r = 0
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return PROC_NULL
            r = r * extent + c
        return r

    def Shift(self, direction: int, disp: int = 1) -> Tuple[int, int]:
        """``MPI_Cart_shift``: returns (source, dest) ranks for a shift."""
        coords = self.Get_coords()
        up = list(coords)
        up[direction] += disp
        down = list(coords)
        down[direction] -= disp
        return self.Get_cart_rank(down), self.Get_cart_rank(up)
