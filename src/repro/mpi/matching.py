"""Per-rank mailbox with MPI matching semantics.

The mailbox owns two collections, both indexed by the full match
signature ``(context_id, source, tag)`` so the hot paths are O(1)
amortized instead of linear scans:

* ``pending`` — envelopes that have arrived but not yet matched a
  receive, bucketed by signature.  Each bucket keeps arrival order (=
  per-source send order, which is what gives MPI its per-signature
  non-overtaking guarantee), and every envelope carries a mailbox-wide
  arrival stamp so wildcard receives can select the *oldest* matching
  envelope across buckets — exactly the order a linear arrival-ordered
  scan would produce;
* ``posted`` — receives that have been posted but not yet matched.
  Fully-specified receives are bucketed by signature; receives with
  ``ANY_SOURCE`` / ``ANY_TAG`` wildcards go to a (short) overflow list.
  Both sides keep post order, and a mailbox-wide post stamp arbitrates
  between an exact bucket head and a wildcard candidate, preserving
  MPI's earliest-posted-receive-wins rule.

Messages with different signatures may be consumed in any order the
application chooses — the property Section 2.4 of the paper calls out as
breaking Chandy-Lamport's FIFO assumption.

Paper mapping: the mailbox is the runtime's model of the MPI matching
engine the C3 protocol reasons about — Section 2.4's non-FIFO channels
(signature-indexed consumption), Section 3's late/early message
classification (every envelope carries send/avail timestamps and a
sender sequence number, which the protocol layer compares against
epochs), and Section 4.1's piggyback channel (envelopes carry the
sender's C3 piggyback alongside the payload).

Synchronization is backend-dependent.  Under the default cooperative
scheduler (:mod:`repro.mpi.scheduler`) exactly one rank runs at a time,
so the mailbox uses **no locks and no condition variables**: blocking
operations suspend their rank fiber and deliveries mark the destination
rank dirty, waking exactly the ranks whose wait predicate became true.
Under the ``engine="threads"`` backend all state is protected by a
single condition variable; blocking operations wait on it
*indefinitely* — there is no timeout poll — and are woken precisely by
deliveries, job aborts, the engine's virtual-time fault scheduler, and
the wall-clock watchdog (see :mod:`repro.mpi.engine`).
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import nullcontext
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .errors import JobAborted, TruncationError
from .message import Envelope

ANY_SOURCE = -1
ANY_TAG = -1

#: a pending-bucket key / posted-bucket key
Signature = Tuple[int, int, int]


def signature_matches(env: Envelope, context_id: int, source: int, tag: int) -> bool:
    """Does an envelope match a receive's ``(context, source, tag)`` triple?"""
    if env.context_id != context_id:
        return False
    if source != ANY_SOURCE and env.source != source:
        return False
    if tag != ANY_TAG and env.tag != tag:
        return False
    return True


class PostedRecv:
    """A receive posted to the mailbox, waiting for a matching envelope."""

    __slots__ = (
        "context_id", "source", "tag", "max_bytes", "envelope", "matched",
        "on_match", "cancelled", "post_seq",
    )

    def __init__(self, context_id: int, source: int, tag: int, max_bytes: int,
                 on_match: Optional[Callable[["PostedRecv"], None]] = None):
        self.context_id = context_id
        self.source = source
        self.tag = tag
        self.max_bytes = max_bytes
        self.envelope: Optional[Envelope] = None
        self.matched = False
        self.cancelled = False
        self.on_match = on_match
        #: mailbox-wide post order; assigned when queued unmatched
        self.post_seq = -1

    @property
    def wildcard(self) -> bool:
        return self.source == ANY_SOURCE or self.tag == ANY_TAG

    def accepts(self, env: Envelope) -> bool:
        return not self.matched and not self.cancelled and signature_matches(
            env, self.context_id, self.source, self.tag
        )

    def _match(self, env: Envelope) -> None:
        if env.nbytes > self.max_bytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes truncates receive buffer of "
                f"{self.max_bytes} bytes (src={env.source}, tag={env.tag})"
            )
        self.envelope = env
        self.matched = True
        if self.on_match is not None:
            self.on_match(self)


#: shared reusable no-op mutex for scheduler-bound (single-runner) mailboxes
_NO_MUTEX = nullcontext()


class Mailbox:
    """All incoming traffic for one rank."""

    def __init__(self, rank: int, abort_event: threading.Event):
        self.rank = rank
        self._abort = abort_event
        self._cond = threading.Condition()
        #: condition variable (threads) or no-op (cooperative scheduler)
        self._mutex = self._cond
        #: cooperative scheduler this mailbox reports wakeups to, if any
        self._sched = None
        #: signature -> deque of (arrival stamp, envelope), arrival order
        self._pending: Dict[Signature, Deque[Tuple[int, Envelope]]] = {}
        self._arrival_seq = 0
        self._pending_total = 0
        self._pending_by_ctx: Dict[int, int] = {}
        #: context -> live pending signatures; wildcard matching scans
        #: only its own context's buckets instead of every bucket in
        #: the mailbox (collectives keep a second context permanently
        #: populated, which made the global scan quadratic-ish for
        #: wildcard-heavy apps at high rank counts)
        self._ctx_sigs: Dict[int, set] = {}
        #: signature -> deque of fully-specified receives, post order
        self._posted_exact: Dict[Signature, Deque[PostedRecv]] = {}
        #: wildcard receives, post order (the overflow list)
        self._posted_wild: List[PostedRecv] = []
        self._post_seq = 0
        self._posted_total = 0
        #: statistics, read by the harness
        self.delivered_count = 0
        self.delivered_bytes = 0

    # -- backend binding -----------------------------------------------------
    def bind_scheduler(self, scheduler) -> None:
        """Run lock-free under a cooperative scheduler.

        With a single runner the condition variable is dead weight: the
        mutex becomes a no-op and wakeups become exact dirty-rank notes
        into the scheduler's run loop.  Called by the engine before a
        cooperative run; a bound mailbox must no longer be touched from
        free-running threads.
        """
        self._sched = scheduler
        self._mutex = _NO_MUTEX

    def _wake(self) -> None:
        """Wake whoever waits on this mailbox (backend-appropriate)."""
        if self._sched is not None:
            self._sched.mailbox_activity(self.rank)
        else:
            self._cond.notify_all()

    # -- delivery (called from sender threads) ------------------------------
    def deliver(self, env: Envelope) -> None:
        """Hand an envelope to this rank; matches a posted receive if any."""
        with self._mutex:
            self.delivered_count += 1
            self.delivered_bytes += env.nbytes
            pr = self._take_posted(env)
            if pr is not None:
                pr._match(env)
                self._wake()
                return
            key = (env.context_id, env.source, env.tag)
            bucket = self._pending.get(key)
            if bucket is None:
                bucket = self._pending[key] = deque()
                self._ctx_sigs.setdefault(env.context_id, set()).add(key)
            bucket.append((self._arrival_seq, env))
            self._arrival_seq += 1
            self._pending_total += 1
            ctx = env.context_id
            self._pending_by_ctx[ctx] = self._pending_by_ctx.get(ctx, 0) + 1
            self._wake()

    def _take_posted(self, env: Envelope) -> Optional[PostedRecv]:
        """Pop the earliest-posted receive accepting ``env``, if any."""
        key = (env.context_id, env.source, env.tag)
        bucket = self._posted_exact.get(key)
        exact = bucket[0] if bucket else None
        wild: Optional[PostedRecv] = None
        if self._posted_wild:
            for pr in self._posted_wild:
                if pr.accepts(env):
                    wild = pr
                    break
        if exact is None and wild is None:
            return None
        if wild is None or (exact is not None and exact.post_seq < wild.post_seq):
            bucket.popleft()
            if not bucket:
                del self._posted_exact[key]
            self._posted_total -= 1
            return exact
        self._posted_wild.remove(wild)
        self._posted_total -= 1
        return wild

    # -- posting receives ----------------------------------------------------
    def post(self, pr: PostedRecv) -> None:
        """Post a receive; matches the oldest pending envelope if one fits."""
        with self._mutex:
            key = self._oldest_pending_key(pr.context_id, pr.source, pr.tag)
            if key is not None:
                env = self._pop_pending(key)
                pr._match(env)
                self._wake()
                return
            pr.post_seq = self._post_seq
            self._post_seq += 1
            if pr.wildcard:
                self._posted_wild.append(pr)
            else:
                sig = (pr.context_id, pr.source, pr.tag)
                bucket = self._posted_exact.get(sig)
                if bucket is None:
                    bucket = self._posted_exact[sig] = deque()
                bucket.append(pr)
            self._posted_total += 1

    def _oldest_pending_key(self, context_id: int, source: int,
                            tag: int) -> Optional[Signature]:
        """Bucket holding the oldest pending envelope matching the triple."""
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (context_id, source, tag)
            return key if self._pending.get(key) else None
        if not self._pending_by_ctx.get(context_id):
            return None
        # Scan only this context's live buckets; the winner is the
        # unique minimal arrival stamp, so set iteration order cannot
        # leak into matching order.
        best_key: Optional[Signature] = None
        best_arrival = -1
        pending = self._pending
        for key in self._ctx_sigs.get(context_id, ()):
            if source != ANY_SOURCE and key[1] != source:
                continue
            if tag != ANY_TAG and key[2] != tag:
                continue
            arrival = pending[key][0][0]
            if best_key is None or arrival < best_arrival:
                best_key, best_arrival = key, arrival
        return best_key

    def _pop_pending(self, key: Signature) -> Envelope:
        bucket = self._pending[key]
        _, env = bucket.popleft()
        if not bucket:
            del self._pending[key]
            sigs = self._ctx_sigs[key[0]]
            sigs.discard(key)
            if not sigs:
                del self._ctx_sigs[key[0]]
        self._pending_total -= 1
        remaining = self._pending_by_ctx[key[0]] - 1
        if remaining:
            self._pending_by_ctx[key[0]] = remaining
        else:
            del self._pending_by_ctx[key[0]]
        return env

    def cancel(self, pr: PostedRecv) -> bool:
        """Cancel a posted receive; returns False if it already matched."""
        with self._mutex:
            if pr.matched:
                return False
            pr.cancelled = True
            if pr.wildcard:
                if pr in self._posted_wild:
                    self._posted_wild.remove(pr)
                    self._posted_total -= 1
            else:
                sig = (pr.context_id, pr.source, pr.tag)
                bucket = self._posted_exact.get(sig)
                if bucket is not None and pr in bucket:
                    bucket.remove(pr)
                    if not bucket:
                        del self._posted_exact[sig]
                    self._posted_total -= 1
            return True

    # -- waiting --------------------------------------------------------------
    def wait_for(self, predicate: Callable[[], bool], poll: Optional[Callable[[], None]] = None) -> None:
        """Block until ``predicate()`` is true or the job aborts.

        The predicate is checked *before* the abort flag so an operation
        whose match has already arrived completes instead of being
        retroactively reported as aborted.

        There is no timeout: the wait is woken precisely by deliveries
        into this mailbox, by :meth:`notify` (job abort, due virtual-time
        faults, the wall-clock watchdog).  ``poll`` (if given) runs on
        every wakeup — the engine uses it to raise due faults and
        deadline errors inside the blocked rank's own thread.

        Under a cooperative scheduler the same contract holds, but the
        wait suspends this rank's fiber instead of a condition variable;
        the scheduler resumes it when the predicate becomes true.
        """
        if self._sched is not None:
            self._sched.wait(predicate, poll)
            return
        with self._mutex:
            while True:
                if predicate():
                    return
                if self._abort.is_set():
                    raise JobAborted()
                if poll is not None:
                    poll()
                    if predicate():
                        return
                self._cond.wait()

    def notify(self) -> None:
        """Wake any thread blocked on this mailbox (abort, fault, watchdog)."""
        with self._mutex:
            self._wake()

    def pop_pending(self, context_id: int, source: int, tag: int) -> Optional[Envelope]:
        """Pop the oldest pending envelope matching the triple, if any.

        The out-of-band consumption path: no posted receive is involved,
        so the caller (the C3 control daemon) takes the envelope without
        the matching engine ever seeing a posted/pending rendezvous.
        Ordering is the same oldest-arrival rule a wildcard receive uses.
        """
        with self._mutex:
            key = self._oldest_pending_key(context_id, source, tag)
            if key is None:
                return None
            return self._pop_pending(key)

    # -- probing ---------------------------------------------------------------
    def probe_pending(self, context_id: int, source: int, tag: int) -> Optional[Envelope]:
        """Oldest pending envelope matching the triple, without removing it."""
        with self._mutex:
            key = self._oldest_pending_key(context_id, source, tag)
            if key is None:
                return None
            return self._pending[key][0][1]

    def has_pending(self, context_id: int) -> bool:
        """O(1): is any envelope pending on this context?"""
        with self._mutex:
            return bool(self._pending_by_ctx.get(context_id))

    def pending_count(self, context_id: Optional[int] = None) -> int:
        with self._mutex:
            if context_id is None:
                return self._pending_total
            return self._pending_by_ctx.get(context_id, 0)

    def posted_count(self) -> int:
        with self._mutex:
            return self._posted_total
