"""Per-rank mailbox with MPI matching semantics.

The mailbox owns two queues:

* ``pending`` — envelopes that have arrived but not yet matched a receive,
  kept in arrival order (= per-source send order, which is what gives MPI
  its per-signature non-overtaking guarantee);
* ``posted`` — receives that have been posted but not yet matched, kept in
  post order (MPI matches the *earliest* posted receive that fits).

Matching compares ``(context_id, source, tag)`` with ``ANY_SOURCE`` /
``ANY_TAG`` wildcards.  Messages with different signatures may be consumed
in any order the application chooses — the property Section 2.4 of the
paper calls out as breaking Chandy-Lamport's FIFO assumption.

All mailbox state is protected by a single condition variable; blocking
operations wait on it and are woken by deliveries or by a job abort.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from .errors import JobAborted, TruncationError
from .message import Envelope

ANY_SOURCE = -1
ANY_TAG = -1


def signature_matches(env: Envelope, context_id: int, source: int, tag: int) -> bool:
    """Does an envelope match a receive's ``(context, source, tag)`` triple?"""
    if env.context_id != context_id:
        return False
    if source != ANY_SOURCE and env.source != source:
        return False
    if tag != ANY_TAG and env.tag != tag:
        return False
    return True


class PostedRecv:
    """A receive posted to the mailbox, waiting for a matching envelope."""

    __slots__ = (
        "context_id", "source", "tag", "max_bytes", "envelope", "matched",
        "on_match", "cancelled",
    )

    def __init__(self, context_id: int, source: int, tag: int, max_bytes: int,
                 on_match: Optional[Callable[["PostedRecv"], None]] = None):
        self.context_id = context_id
        self.source = source
        self.tag = tag
        self.max_bytes = max_bytes
        self.envelope: Optional[Envelope] = None
        self.matched = False
        self.cancelled = False
        self.on_match = on_match

    def accepts(self, env: Envelope) -> bool:
        return not self.matched and not self.cancelled and signature_matches(
            env, self.context_id, self.source, self.tag
        )

    def _match(self, env: Envelope) -> None:
        if env.nbytes > self.max_bytes:
            raise TruncationError(
                f"message of {env.nbytes} bytes truncates receive buffer of "
                f"{self.max_bytes} bytes (src={env.source}, tag={env.tag})"
            )
        self.envelope = env
        self.matched = True
        if self.on_match is not None:
            self.on_match(self)


class Mailbox:
    """All incoming traffic for one rank."""

    def __init__(self, rank: int, abort_event: threading.Event):
        self.rank = rank
        self._abort = abort_event
        self._cond = threading.Condition()
        self._pending: List[Envelope] = []
        self._posted: List[PostedRecv] = []
        #: statistics, read by the harness
        self.delivered_count = 0
        self.delivered_bytes = 0

    # -- delivery (called from sender threads) ------------------------------
    def deliver(self, env: Envelope) -> None:
        """Hand an envelope to this rank; matches a posted receive if any."""
        with self._cond:
            self.delivered_count += 1
            self.delivered_bytes += env.nbytes
            for pr in self._posted:
                if pr.accepts(env):
                    self._posted.remove(pr)
                    pr._match(env)
                    self._cond.notify_all()
                    return
            self._pending.append(env)
            self._cond.notify_all()

    # -- posting receives ----------------------------------------------------
    def post(self, pr: PostedRecv) -> None:
        """Post a receive; matches the oldest pending envelope if one fits."""
        with self._cond:
            for env in self._pending:
                if pr.accepts(env):
                    self._pending.remove(env)
                    pr._match(env)
                    self._cond.notify_all()
                    return
            self._posted.append(pr)

    def cancel(self, pr: PostedRecv) -> bool:
        """Cancel a posted receive; returns False if it already matched."""
        with self._cond:
            if pr.matched:
                return False
            pr.cancelled = True
            if pr in self._posted:
                self._posted.remove(pr)
            return True

    # -- waiting --------------------------------------------------------------
    def wait_for(self, predicate: Callable[[], bool], poll: Optional[Callable[[], None]] = None) -> None:
        """Block until ``predicate()`` is true or the job aborts.

        ``poll`` (if given) runs on every wakeup — the engine uses it for
        fault triggers that fire at a virtual time.
        """
        with self._cond:
            while True:
                if self._abort.is_set():
                    raise JobAborted()
                if predicate():
                    return
                if poll is not None:
                    poll()
                    if predicate():
                        return
                self._cond.wait(timeout=0.05)

    def notify(self) -> None:
        """Wake any thread blocked on this mailbox (used on job abort)."""
        with self._cond:
            self._cond.notify_all()

    # -- probing ---------------------------------------------------------------
    def probe_pending(self, context_id: int, source: int, tag: int) -> Optional[Envelope]:
        """First pending envelope matching the triple, without removing it."""
        with self._cond:
            for env in self._pending:
                if signature_matches(env, context_id, source, tag):
                    return env
            return None

    def pending_count(self, context_id: Optional[int] = None) -> int:
        with self._cond:
            if context_id is None:
                return len(self._pending)
            return sum(1 for e in self._pending if e.context_id == context_id)

    def posted_count(self) -> int:
        with self._cond:
            return len(self._posted)
