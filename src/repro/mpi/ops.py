"""Reduction operations for the simulated MPI runtime.

Operations work element-wise on numpy arrays.  User-defined operations are
supported through :func:`Op.create`, mirroring ``MPI_Op_create``; the
commutativity flag is honoured by the reduction algorithms in
:mod:`repro.mpi.collectives` (non-commutative ops are reduced strictly in
rank order, as the MPI standard requires).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .errors import InvalidOpError


class Op:
    """A reduction operation: a binary, element-wise combiner.

    ``fn(a, b)`` must accept two numpy arrays (same shape/dtype) and return
    the combined array.  ``a`` is the partial result accumulated from lower
    ranks when the op is non-commutative.
    """

    _next_id = 1

    def __init__(self, name: str, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], commutative: bool = True):
        self.name = name
        self.fn = fn
        self.commutative = commutative
        self.freed = False
        self.handle = Op._next_id
        Op._next_id += 1

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.freed:
            raise InvalidOpError(f"operation {self.name} has been freed")
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name}, commutative={self.commutative})"

    @classmethod
    def create(cls, fn: Callable[[np.ndarray, np.ndarray], np.ndarray], commute: bool = True, name: str = "user") -> "Op":
        """Create a user-defined reduction operation (``MPI_Op_create``)."""
        return cls(name, fn, commutative=commute)

    def free(self) -> None:
        """Release the operation (``MPI_Op_free``)."""
        self.freed = True


def _maxloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # value/index pairs: arrays of shape (..., 2); ties pick the lower index.
    out = a.copy()
    take_b = (b[..., 0] > a[..., 0]) | ((b[..., 0] == a[..., 0]) & (b[..., 1] < a[..., 1]))
    out[take_b] = b[take_b]
    return out


def _minloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    out = a.copy()
    take_b = (b[..., 0] < a[..., 0]) | ((b[..., 0] == a[..., 0]) & (b[..., 1] < a[..., 1]))
    out[take_b] = b[take_b]
    return out


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", np.logical_and)
LOR = Op("MPI_LOR", np.logical_or)
LXOR = Op("MPI_LXOR", np.logical_xor)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)
BXOR = Op("MPI_BXOR", np.bitwise_xor)
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)

BUILTIN_OPS = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR, MAXLOC, MINLOC)
}
