"""``engine="processes"``: real OS processes, real SIGKILL crashes.

Every other backend *simulates* a fail-stop fault as a Python unwind
inside one process.  This backend makes the paper's fault model literal:
each simulated node is a real forked OS process (ranks scheduled
cooperatively inside it, exactly like one shard of the sharded backend),
and a :class:`~repro.mpi.faults.FaultSpec` coming due delivers an actual
``SIGKILL`` to the victim's node process — no ``finally`` blocks, no
flushes, no goodbye.  Whatever checkpoint state that process had staged
but not made durable is genuinely lost, which is precisely the crash
semantics application-level checkpointing must survive.

Mechanically the backend is the sharded machinery
(:mod:`repro.mpi.sharded`) in *real-kill* mode — same fork-per-node
layout, same length-prefixed framed-message discipline with unbuffered
reads and epoch-stamped wakes, same strict quiescence epochs — with
three deltas (DESIGN.md §12 has the full protocol):

* **fault delivery** — a structural fault (``at_epoch``,
  ``in_collective``, ``at_commit``, ...) fires *inside* the victim
  process at the exact deterministic point the cooperative oracle would
  fire it; the :class:`~repro.mpi.faults.FaultPlan` kill hook sends one
  dying-breath ``"dy"`` frame (injection bookkeeping only: victim rank,
  virtual time, fired spec indices — never application or storage
  state) and then ``SIGKILL``\\ s its own process, so there is no Python
  unwind at all.  ``at_time`` faults whose victim is blocked are
  delivered by the coordinator as a direct ``SIGKILL`` of the node
  process (mirroring the cooperative rule that a fault fires when *any*
  rank's clock crosses it).
* **death confirmation** — the coordinator reaps every killed process
  and asserts via ``os.waitpid`` status that it died by ``SIGKILL``;
  the evidence rows land in :attr:`JobResult.real_kills
  <repro.mpi.engine.JobResult>` and the recovery harness counts them.
* **recovery** — restart is the existing operator path
  (:func:`repro.core.ccc.resume_from_manifest`) over *shared* stable
  storage: the WAL engine on a disk-backed medium
  (``shared_across_fork``), whose bytes survive the killed process.
  The coordinator reloads the store from its own bytes after the run,
  so the restart sees exactly what group commit made durable before
  the crash — and nothing more.  A killed node's staged log tail is
  lost whole (the simulated engines model a torn tail instead), and
  surviving nodes flush their staged tails on abort, matching the
  simulated engines' survivors-drain semantics.

Because a kill takes the whole node process, co-located ranks die with
the victim — acceptable under fail-stop, where the recovery line is
global anyway.  Fault-injected jobs on a non-shared store would lose
their *committed* lines with the process too, so the backend refuses
them up front with instructions to use a disk-backed store.

The cooperative engine remains the deterministic oracle:
``repro.harness.procstudy`` runs the campaign matrix on both engines
and diffs the rows under the shardstudy tolerance contract (real-kill
grade: fields coupled to where the SIGKILL physically lands are
compared structurally, verification evidence exactly).
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Tuple

from .backends import ExecutionBackend, register

__all__ = ["ProcessesBackend", "require_shared_store"]


def require_shared_store(engine) -> None:
    """Refuse a fault-injected run whose stable storage dies with a kill.

    Real kills destroy the victim process wholesale — including any
    in-memory store "backend" living inside it.  Committed lines must
    survive the crash for recovery to mean anything, so every checkpoint
    store in the job args must sit on a ``shared_across_fork`` medium
    (real disk).  Clean runs (no unfired fault specs) may use any store:
    the coordinator replays the workers' operation logs like the sharded
    backend does.
    """
    if not engine.fault_plan.unfired():
        return
    from ..storage.store import CheckpointStore
    bad = [
        type(arg).__name__
        for arg in engine._job_args
        if isinstance(arg, CheckpointStore)
        and not getattr(arg.backend, "shared_across_fork", False)
    ]
    if bad:
        raise ValueError(
            "engine='processes' delivers faults as real SIGKILLs, so a "
            "fault-injected job needs stable storage that survives the "
            "killed process: use a disk-backed store (--storage wal-disk "
            f"or disk); got in-memory-backed store(s) {bad}")


class ProcessesBackend(ExecutionBackend):
    """One real OS process per simulated node; faults are real SIGKILLs."""

    name = "processes"
    aliases = ("process", "procs")
    summary = "one OS process per node, faults delivered as real SIGKILLs"
    takes_count = True
    supports_shards = True
    supports_real_kill = True

    def available(self) -> Optional[str]:
        # Real kills need real processes — fork is the only hard
        # requirement.  Core count is deliberately NOT gated here: on a
        # 1-core box the backend is slower, not wrong (kills are still
        # real); only throughput-oriented layers (the service executor
        # gate, shardstudy's --require-speedup) care about cores.
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return "os.fork is not available on this platform"
        return None

    def worker_count(self, engine) -> int:
        """Default: one process per simulated node (``plan_shards``
        clamps the request to the node count); ``processes:N`` caps it."""
        _base, _sep, count = engine.backend.partition(":")
        if count:
            return int(count)
        return engine.nprocs  # >= node count, so: one process per node

    def _launch(self, engine, body: Callable[[int], None], timeout: float,
                errors: List[Tuple[int, str]], returns: List[Any]) -> None:
        require_shared_store(engine)
        from .sharded import run_sharded  # local import, no cycle
        run_sharded(engine, body, timeout, errors, returns,
                    n_shards=self.worker_count(engine), real_kill=True)


register(ProcessesBackend())
