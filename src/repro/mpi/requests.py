"""Request objects for non-blocking communication.

The simulator buffers sends eagerly, so a send request is complete as soon
as it is created (standard-mode semantics permit buffering).  A receive
request completes when the mailbox matches an envelope to it; the payload
is unpacked into the user buffer at completion-observation time (Wait/Test)
so the C3 layer can interpose on "the point where the application is able
to read the received data" (paper, Section 4.1, Figure 6).
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from .datatypes import Datatype
from .errors import InvalidRequestError
from .matching import PostedRecv
from .message import Envelope
from .status import Status


class Request:
    """One outstanding non-blocking operation."""

    SEND = "send"
    RECV = "recv"

    def __init__(self, kind: str, rank_ctx, buffer=None, count: int = 0,
                 datatype: Optional[Datatype] = None):
        self.kind = kind
        self._rank_ctx = rank_ctx
        self.buffer = buffer
        self.count = count
        self.datatype = datatype
        self.posted: Optional[PostedRecv] = None
        self.envelope: Optional[Envelope] = None
        self.complete_time: Optional[float] = None
        self.released = False
        self._delivered = False  # payload unpacked into the user buffer

    # -- state ---------------------------------------------------------------
    def is_complete(self) -> bool:
        """Has the operation finished (data arrived / send buffered)?"""
        if self.kind == Request.SEND:
            return True
        if self.envelope is not None:
            return True
        if self.posted is not None and self.posted.matched:
            self.envelope = self.posted.envelope
            return True
        return False

    def _deliver_to_buffer(self) -> Status:
        """Unpack the payload into the user buffer, once, and build a Status."""
        if self.kind == Request.SEND:
            return Status(source=self._rank_ctx.rank, tag=0, count=self.count)
        env = self.envelope
        assert env is not None
        if not self._delivered:
            if self.buffer is not None and self.datatype is not None:
                # Element count in the payload may be smaller than posted.
                elems = env.nbytes // self.datatype.size if self.datatype.size else 0
                self.datatype.unpack(env.payload, self.buffer, count=elems)
            self._delivered = True
        elems = (env.nbytes // self.datatype.size) if (self.datatype and self.datatype.size) else env.count
        return Status(source=env.source, tag=env.tag, count=elems, nbytes=env.nbytes)

    # -- completion ------------------------------------------------------------
    def wait(self) -> Status:
        """Block until complete; returns the filled Status (``MPI_Wait``)."""
        self._check_not_released()
        ctx = self._rank_ctx
        ctx.mailbox.wait_for(self.is_complete, poll=ctx.poll_hook)
        status = self._finish()
        self.released = True
        return status

    def test(self) -> Tuple[bool, Optional[Status]]:
        """Non-blocking completion check (``MPI_Test``)."""
        self._check_not_released()
        if not self.is_complete():
            # Cooperative fairness: a failed poll yields the scheduler a
            # turn so Test spin loops cannot starve the sending rank.
            self._rank_ctx.nb_poll()
            return False, None
        status = self._finish()
        self.released = True
        return True, status

    def _finish(self) -> Status:
        ctx = self._rank_ctx
        if self.kind == Request.RECV:
            env = self.envelope
            assert env is not None
            ctx.clock.sync_to(env.avail_time)
        ctx.clock.advance(ctx.machine.call_overhead)
        if self.complete_time is None:
            self.complete_time = ctx.clock.now
        return self._deliver_to_buffer()

    def cancel(self) -> bool:
        """Cancel an unmatched receive request (``MPI_Cancel``)."""
        if self.kind == Request.SEND or self.posted is None:
            return False
        ok = self._rank_ctx.mailbox.cancel(self.posted)
        if ok:
            self.released = True
        return ok

    def _check_not_released(self) -> None:
        if self.released:
            raise InvalidRequestError("request already waited on / released")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if (self.released or self.is_complete()) else "pending"
        return f"<Request {self.kind} {state}>"


# -- multi-request completion (MPI_Wait{all,any,some}, MPI_Test{all,any,some}) -

def wait_all(requests: Sequence[Request]) -> List[Status]:
    """Complete every request, in index order (``MPI_Waitall``).

    One blocking wait covers the whole array (a single mailbox sleep per
    call instead of one per request); completion observation — clock
    syncs, overhead charges, buffer delivery — still runs in index order,
    so the virtual-time accounting is identical to waiting one by one.
    """
    if not requests:
        return []
    for r in requests:
        r._check_not_released()
    live = [r for r in requests if not r.is_complete()]
    if live:
        ctx = live[0]._rank_ctx
        ctx.mailbox.wait_for(lambda: all(r.is_complete() for r in live),
                             poll=ctx.poll_hook)
    statuses: List[Status] = []
    for r in requests:
        r._check_not_released()  # a duplicated request raises, as r.wait() would
        statuses.append(r._finish())
        r.released = True
    return statuses


def wait_any(requests: Sequence[Request]) -> Tuple[int, Status]:
    """Block until some request completes; returns (index, status).

    Matches ``MPI_Waitany``: the lowest-indexed completed request wins.
    """
    live = [r for r in requests if not r.released]
    if not live:
        raise InvalidRequestError("wait_any on empty / fully released request list")
    ctx = live[0]._rank_ctx

    def some_done() -> bool:
        return any(r.is_complete() for r in live)

    ctx.mailbox.wait_for(some_done, poll=ctx.poll_hook)
    for i, r in enumerate(requests):
        if not r.released and r.is_complete():
            status = r._finish()
            r.released = True
            return i, status
    raise AssertionError("wait_any woke without a completed request")


def wait_some(requests: Sequence[Request]) -> Tuple[List[int], List[Status]]:
    """Block until at least one completes; returns all completed (``MPI_Waitsome``)."""
    live = [r for r in requests if not r.released]
    if not live:
        return [], []
    ctx = live[0]._rank_ctx
    ctx.mailbox.wait_for(lambda: any(r.is_complete() for r in live), poll=ctx.poll_hook)
    indices: List[int] = []
    statuses: List[Status] = []
    for i, r in enumerate(requests):
        if not r.released and r.is_complete():
            statuses.append(r._finish())
            r.released = True
            indices.append(i)
    return indices, statuses


def test_all(requests: Sequence[Request]) -> Tuple[bool, Optional[List[Status]]]:
    """``MPI_Testall``: complete all or none."""
    live = [r for r in requests if not r.released]
    if not all(r.is_complete() for r in live):
        if live:
            live[0]._rank_ctx.nb_poll()
        return False, None
    out: List[Status] = []
    for r in requests:
        if not r.released:
            out.append(r._finish())
            r.released = True
        else:
            out.append(Status())
    return True, out


def test_any(requests: Sequence[Request]) -> Tuple[bool, int, Optional[Status]]:
    """``MPI_Testany``: complete at most one (lowest index)."""
    live = None
    for i, r in enumerate(requests):
        if not r.released:
            live = live if live is not None else r
            if r.is_complete():
                status = r._finish()
                r.released = True
                return True, i, status
    if live is not None:
        live._rank_ctx.nb_poll()
    return False, -1, None
