"""Message envelopes and signatures.

A :class:`MessageSignature` is the triple the paper uses to identify
messages in its registries: ``<sending node number, tag, communicator>``.
An :class:`Envelope` is a message in flight: signature, payload bytes,
element count/type info, the virtual time at which it becomes available at
the receiver, and a small *piggyback* area used by the C3 coordination
layer (the paper piggybacks 3 bits: a 2-bit epoch color and 1 logging bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple


@dataclass(frozen=True)
class MessageSignature:
    """``<sending node number, tag, communicator>`` (paper, Section 2.3)."""

    source: int
    tag: int
    context_id: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.source, self.tag, self.context_id)


# Sequence numbers give the mailbox its per-signature non-overtaking order.
@dataclass
class Envelope:
    signature: MessageSignature
    payload: bytes
    count: int
    type_name: str
    dest: int
    seq: int = 0
    send_time: float = 0.0
    avail_time: float = 0.0
    piggyback: Any = None
    system: bool = False  # control-plane / collective-internal traffic

    @property
    def source(self) -> int:
        return self.signature.source

    @property
    def tag(self) -> int:
        return self.signature.tag

    @property
    def context_id(self) -> int:
        return self.signature.context_id

    @property
    def nbytes(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Envelope {self.source}->{self.dest} tag={self.tag} "
            f"ctx={self.context_id} {self.nbytes}B seq={self.seq}>"
        )
