"""Simulated MPI runtime — the substrate the C3 coordination layer sits on.

Public surface:

* :func:`run_job` / :class:`Engine` — launch an SPMD job.  Two backends:
  the default deterministic cooperative scheduler (one rank fiber at a
  time; scales to the paper's 256+ process counts) and a thread-per-rank
  escape hatch (``engine="threads"``).
* :class:`MPI` — the per-rank facade handed to application ``main(mpi)``.
* :mod:`~repro.mpi.timemodel` — virtual-time machine models (Lemieux,
  Velocity 2, CMI, the Table-1 uniprocessors, and a testing model).
* :class:`FaultPlan` / :class:`FaultSpec` — fail-stop fault injection.
"""

from .api import MPI
from .communicator import Communicator, Group, CartComm, PROC_NULL
from .datatypes import (
    BYTE, CHAR, SHORT, INT, LONG, FLOAT, DOUBLE, COMPLEX, DOUBLE_COMPLEX,
    ContiguousType, Datatype, IndexedType, NamedType, StructType, VectorType,
    from_numpy_dtype,
)
from .engine import Engine, JobResult, RankContext, resolve_backend, run_job
from .scheduler import CooperativeScheduler
from .errors import (
    DeadlockError, InvalidCommunicatorError, InvalidDatatypeError,
    InvalidRankError, InvalidRequestError, InvalidTagError, JobAborted,
    MPIError, ProcessFailure, SimulationError, TruncationError,
)
from .faults import FaultPlan, FaultSpec
from .matching import ANY_SOURCE, ANY_TAG
from .message import Envelope, MessageSignature
from .ops import MAX, MAXLOC, MIN, MINLOC, PROD, SUM, Op
from .requests import Request
from .status import Status
from .timemodel import (
    CMI, LEMIEUX, LINUX_UNIPROC, MACHINES, MachineModel, SOLARIS_UNIPROC,
    TESTING, VELOCITY2,
)

__all__ = [
    "MPI", "Communicator", "Group", "CartComm", "PROC_NULL",
    "Engine", "JobResult", "RankContext", "run_job", "resolve_backend",
    "CooperativeScheduler",
    "FaultPlan", "FaultSpec",
    "ANY_SOURCE", "ANY_TAG", "Envelope", "MessageSignature",
    "Op", "SUM", "PROD", "MAX", "MIN", "MAXLOC", "MINLOC",
    "Request", "Status",
    "Datatype", "NamedType", "ContiguousType", "VectorType", "IndexedType",
    "StructType", "from_numpy_dtype",
    "BYTE", "CHAR", "SHORT", "INT", "LONG", "FLOAT", "DOUBLE", "COMPLEX",
    "DOUBLE_COMPLEX",
    "MachineModel", "MACHINES", "LEMIEUX", "VELOCITY2", "CMI",
    "SOLARIS_UNIPROC", "LINUX_UNIPROC", "TESTING",
    "MPIError", "SimulationError", "ProcessFailure", "JobAborted",
    "DeadlockError", "TruncationError", "InvalidRankError", "InvalidTagError",
    "InvalidDatatypeError", "InvalidCommunicatorError", "InvalidRequestError",
]
