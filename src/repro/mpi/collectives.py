"""Built-in collective algorithms over point-to-point messaging.

Collectives exchange their internal traffic on the communicator's *shadow*
context id so it never matches application receives.  The algorithms are
the classic ones (binomial trees, dissemination barrier, ring/pairwise
exchanges), so the virtual-time cost of a collective emerges naturally
from the point-to-point time model: e.g. a broadcast costs about
``ceil(log2 p)`` message latencies, as on a real machine.

Non-commutative reductions are evaluated strictly in rank order
(gather-and-fold), as the MPI standard requires.  ``scan`` uses a rank
chain, matching the "strictly ordered dependency chain" the paper relies
on in Section 4.3 to argue `MPI_Scan` can be replayed from a result log.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .datatypes import from_numpy_dtype
from .matching import ANY_TAG
from .ops import Op
from .requests import wait_all

#: Tag space for collective-internal traffic; each collective call on a
#: communicator uses a fresh tag so concurrent phases cannot interfere.
_COLL_TAG_BASE = 1 << 20


def _next_tag(comm) -> int:
    ctx = comm._ctx
    ctx.begin_collective()
    key = ("coll_seq", comm.shadow_id)
    seq = ctx.scratch.get(key, 0)
    ctx.scratch[key] = seq + 1
    return _COLL_TAG_BASE + (seq % (1 << 18))


def _send(comm, buf: np.ndarray, dest: int, tag: int) -> None:
    comm._ctx.collective_fault_point()
    dt = from_numpy_dtype(buf.dtype)
    payload = dt.pack(buf, buf.size)
    comm.send_packed(payload, dest, tag, count=buf.size, type_name=dt.name,
                     context_id=comm.shadow_id, system=True)


def _recv(comm, buf: np.ndarray, source: int, tag: int) -> None:
    comm._ctx.collective_fault_point()
    req = comm.Irecv(buf, source=source, tag=tag, context_id=comm.shadow_id)
    req.wait()


def _recv_all(comm, bufs_by_source, tag: int) -> None:
    """Post fully-specified receives for every (source, buf) pair, then
    complete them with one blocking wait (source order).

    Collective internals always know their peers, so these receives all
    take the mailbox's exact-signature fast path; batching them turns p-1
    sleep/wake cycles into one.
    """
    comm._ctx.collective_fault_point()
    reqs = [comm.Irecv(buf, source=source, tag=tag, context_id=comm.shadow_id)
            for source, buf in bufs_by_source]
    wait_all(reqs)


# --------------------------------------------------------------------------
def barrier(comm) -> None:
    """Dissemination barrier: ceil(log2 p) rounds of pairwise signals."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    token = np.zeros(1, dtype=np.uint8)
    k = 1
    while k < size:
        dest = (rank + k) % size
        src = (rank - k) % size
        _send(comm, token, dest, tag)
        _recv(comm, token, src, tag)
        k <<= 1


def bcast(comm, buf: np.ndarray, root: int = 0) -> None:
    """Binomial-tree broadcast."""
    size = comm.size
    if size == 1:
        return
    tag = _next_tag(comm)
    # Rotate so the root is virtual rank 0.
    vrank = (comm.rank - root) % size
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank | mask
            if partner < size:
                _send(comm, buf, (partner + root) % size, tag)
        elif vrank < (mask << 1):
            partner = vrank & ~mask
            _recv(comm, buf, (partner + root) % size, tag)
        mask <<= 1


def reduce(comm, sendbuf: np.ndarray, recvbuf, op: Op, root: int = 0) -> None:
    """Reduction to root: binomial tree if commutative, rank-ordered fold if not."""
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    if size == 1:
        if recvbuf is not None:
            np.copyto(recvbuf, sendbuf)
        return
    if not op.commutative:
        _reduce_ordered(comm, sendbuf, recvbuf, op, root, tag)
        return
    # Binomial-tree combine towards virtual rank 0 (= root).
    vrank = (rank - root) % size
    acc = np.array(sendbuf, copy=True)
    tmp = np.empty_like(acc)
    mask = 1
    while mask < size:
        if vrank & mask:
            partner = vrank & ~mask
            _send(comm, acc, (partner + root) % size, tag)
            break
        partner = vrank | mask
        if partner < size:
            _recv(comm, tmp, (partner + root) % size, tag)
            acc = op(acc, tmp)
        mask <<= 1
    if rank == root and recvbuf is not None:
        np.copyto(recvbuf, acc)


def _reduce_ordered(comm, sendbuf, recvbuf, op: Op, root: int, tag: int) -> None:
    size, rank = comm.size, comm.rank
    if rank == root:
        parts = [np.array(sendbuf, copy=True) if r == rank
                 else np.empty_like(np.asarray(sendbuf)) for r in range(size)]
        _recv_all(comm, [(r, parts[r]) for r in range(size) if r != rank], tag)
        acc = parts[0]
        for p in parts[1:]:
            acc = op(acc, p)
        np.copyto(recvbuf, acc)
    else:
        _send(comm, np.ascontiguousarray(sendbuf), root, tag)


def allreduce(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op) -> None:
    """Reduce to rank 0, then broadcast."""
    reduce(comm, sendbuf, recvbuf if comm.rank == 0 else np.empty_like(np.asarray(sendbuf)), op, root=0)
    if comm.rank == 0:
        bcast(comm, recvbuf, root=0)
    else:
        bcast(comm, recvbuf, root=0)


def scan(comm, sendbuf: np.ndarray, recvbuf: np.ndarray, op: Op) -> None:
    """Inclusive prefix reduction along the rank chain."""
    rank, size = comm.rank, comm.size
    tag = _next_tag(comm)
    acc = np.array(sendbuf, copy=True)
    if rank > 0:
        prefix = np.empty_like(acc)
        _recv(comm, prefix, rank - 1, tag)
        acc = op(prefix, acc)
    np.copyto(recvbuf, acc)
    if rank + 1 < size:
        _send(comm, acc, rank + 1, tag)


def gather(comm, sendbuf: np.ndarray, recvbuf, root: int = 0) -> None:
    """Binomial-tree gather (rank order restored at the root).

    Real MPI implementations gather short messages through a tree, which
    puts ~log2(p) message latencies on the critical path; a linear gather
    would let the root overlap all receives and under-charge the virtual
    time model.
    """
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    send = np.ascontiguousarray(sendbuf).reshape(-1)
    if size == 1:
        if recvbuf is not None:
            recvbuf.reshape(1, -1)[0, :] = send
        return
    vrank = (rank - root) % size
    # staging area indexed by virtual rank; my piece goes to slot vrank
    stage = np.zeros((size, send.size), dtype=sendbuf.dtype)
    stage[vrank, :] = send
    mask = 1
    while mask < size:
        if vrank & mask:
            # send my accumulated subtree [vrank, vrank+mask) to the parent
            parent = ((vrank & ~mask) + root) % size
            hi = min(vrank + mask, size)
            _send(comm, np.ascontiguousarray(stage[vrank:hi]), parent, tag)
            break
        child_v = vrank | mask
        if child_v < size:
            hi = min(child_v + mask, size)
            _recv(comm, stage[child_v:hi], (child_v + root) % size, tag)
        mask <<= 1
    if rank == root:
        out = recvbuf.reshape(size, -1)
        for v in range(size):
            out[(v + root) % size, :] = stage[v]


def gatherv(comm, sendbuf: np.ndarray, recvbuf, counts: Sequence[int], root: int = 0) -> None:
    """Gather varying-size contributions; ``counts`` in elements per rank."""
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    send = np.ascontiguousarray(sendbuf)
    if rank == root:
        flat = recvbuf.reshape(-1)
        pieces = []
        offset = 0
        for r in range(size):
            n = int(counts[r])
            if r == rank:
                flat[offset:offset + n] = send.reshape(-1)[:n]
            else:
                pieces.append((r, flat[offset:offset + n]))
            offset += n
        _recv_all(comm, pieces, tag)
    else:
        _send(comm, send, root, tag)


def scatter(comm, sendbuf, recvbuf: np.ndarray, root: int = 0) -> None:
    """Binomial-tree scatter (the mirror image of :func:`gather`)."""
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    if size == 1:
        recvbuf.reshape(-1)[:] = sendbuf.reshape(-1)
        return
    vrank = (rank - root) % size
    piece_len = recvbuf.reshape(-1).size
    stage = np.zeros((size, piece_len), dtype=recvbuf.dtype)
    if rank == root:
        pieces = sendbuf.reshape(size, -1)
        for r in range(size):
            stage[(r - root) % size, :] = pieces[r]
        span = size
    else:
        # wait for my subtree's block from the parent
        mask = 1
        while not vrank & mask:
            mask <<= 1
        span = min(vrank + mask, size) - vrank
        parent = ((vrank & ~mask) + root) % size
        _recv(comm, stage[vrank:vrank + span], parent, tag)
    # forward sub-blocks to children (highest bit first)
    mask = 1
    while mask < size and not vrank & mask:
        mask <<= 1
    mask >>= 1
    while mask:
        child_v = vrank | mask
        if child_v < size and child_v < vrank + span:
            hi = min(child_v + mask, size)
            _send(comm, np.ascontiguousarray(stage[child_v:hi]),
                  (child_v + root) % size, tag)
        mask >>= 1
    recvbuf.reshape(-1)[:] = stage[vrank]


def scatterv(comm, sendbuf, recvbuf: np.ndarray, counts: Sequence[int], root: int = 0) -> None:
    """Scatter varying-size pieces; ``counts`` in elements per rank."""
    size, rank = comm.size, comm.rank
    tag = _next_tag(comm)
    if rank == root:
        flat = sendbuf.reshape(-1)
        offset = 0
        for r in range(size):
            n = int(counts[r])
            if r == rank:
                recvbuf.reshape(-1)[:n] = flat[offset:offset + n]
            else:
                _send(comm, np.ascontiguousarray(flat[offset:offset + n]), r, tag)
            offset += n
    else:
        _recv(comm, recvbuf.reshape(-1), root, tag)


def allgather(comm, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
    """Ring allgather: p-1 rounds, each rank forwards the piece it received."""
    size, rank = comm.size, comm.rank
    send = np.ascontiguousarray(sendbuf)
    out = recvbuf.reshape(size, -1)
    out[rank, :] = send.reshape(-1)
    if size == 1:
        return
    tag = _next_tag(comm)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        src_piece = (rank - step) % size
        dst_piece = (rank - step - 1) % size
        _send(comm, np.ascontiguousarray(out[src_piece]), right, tag)
        _recv(comm, out[dst_piece], left, tag)


def alltoall(comm, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
    """Pairwise-exchange all-to-all with equal piece sizes."""
    size, rank = comm.size, comm.rank
    sp = sendbuf.reshape(size, -1)
    rp = recvbuf.reshape(size, -1)
    rp[rank, :] = sp[rank]
    tag = _next_tag(comm)
    for offset in range(1, size):
        dest = (rank + offset) % size
        src = (rank - offset) % size
        req = comm.Irecv(rp[src], source=src, tag=tag, context_id=comm.shadow_id)
        _send(comm, np.ascontiguousarray(sp[dest]), dest, tag)
        req.wait()


def alltoallv(comm, sendbuf: np.ndarray, sendcounts: Sequence[int],
              recvbuf: np.ndarray, recvcounts: Sequence[int]) -> None:
    """Pairwise-exchange all-to-all with varying piece sizes (elements)."""
    size, rank = comm.size, comm.rank
    sflat = sendbuf.reshape(-1)
    rflat = recvbuf.reshape(-1)
    soff = np.concatenate([[0], np.cumsum(np.asarray(sendcounts))]).astype(int)
    roff = np.concatenate([[0], np.cumsum(np.asarray(recvcounts))]).astype(int)
    rflat[roff[rank]:roff[rank + 1]] = sflat[soff[rank]:soff[rank + 1]]
    tag = _next_tag(comm)
    for offset in range(1, size):
        dest = (rank + offset) % size
        src = (rank - offset) % size
        req = comm.Irecv(rflat[roff[src]:roff[src + 1]], source=src, tag=tag,
                         context_id=comm.shadow_id)
        _send(comm, np.ascontiguousarray(sflat[soff[dest]:soff[dest + 1]]), dest, tag)
        req.wait()
