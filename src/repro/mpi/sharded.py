"""Sharded execution backend: rank fibers partitioned across processes.

``engine="sharded"`` partitions a job's ranks **by simulated node**
(the per-node boundary PRs 5-6 established with ``procs_per_node`` and
the per-node :class:`~repro.storage.drain.DrainDevice`) across forked
worker processes.  Each shard runs its nodes' ranks under the existing
deterministic cooperative loop (:mod:`repro.mpi.scheduler`); only
cross-shard sends leave the process, as pickled envelopes over pipes to
a master that routes them under the conservative LBTS window of
:mod:`repro.mpi.lookahead`.

Why this shape:

* **fork, not multiprocessing** — campaign pool workers are daemonic
  processes, which may not spawn ``multiprocessing`` children; a raw
  ``os.fork`` has no such restriction, and the child inherits the whole
  engine (contexts, mailboxes, fault plan, the rank ``main`` closure)
  without any of it having to be picklable;
* **strict quiescence epochs** — the master releases cross-shard
  envelopes only when *no* shard is running (every shard is blocked at
  a barrier, soft-spinning, or done).  Each shard's input batches are
  then a pure function of the prior epochs, never of wall-clock races,
  which is what makes a sharded run reproducible against itself.
  Every waking message carries a per-shard epoch stamp that the worker
  echoes in its statuses, so a status written before a wake — but read
  after it — can never regress the master's view of a running shard;
* **bitwise against the cooperative oracle** — for the
  schedule-independent kernels PR 3's differential battery established
  (wildcard matching pinned per source, senders serialized by
  barriers), per-stream FIFO release preserves exactly the arrival
  orders matching depends on, so a completed run's
  :class:`~repro.mpi.engine.JobResult` (returns, clocks, sent counts)
  is bit-identical to the cooperative engine's.  Killed runs guarantee
  the victim's failure record; surviving peers' unwind clocks are not
  compared (same grade as the threads backend), and kill+restart is
  pinned end-to-end on the recovered result instead;
* **shards=1 degenerates exactly** — one shard means no fork and no
  window: the run *is* the cooperative run, same scheduler, same
  switch count.

Cross-shard semantics beyond messages:

* **abort** is a byte in anonymous shared memory (:class:`SharedFlag`),
  so a fail-stop fault in one shard is observed by every rank's next
  MPI call in every shard without a round-trip;
* **deadlock** is global: when every shard reports quiescence and no
  envelope is in transit, the master names the union of blocked ranks
  and every rank unwinds with the same
  :class:`~repro.mpi.errors.DeadlockError` message the cooperative
  engine would have produced;
* **virtual-time faults**: the master tracks the global clock
  high-water from shard statuses and notifies the victim's shard when
  an ``at_time`` spec comes due, mirroring the cooperative engine's
  rule that a fault fires when *any* rank's clock crosses it.  The
  victim's failure record ``(rank, clock, reason)`` is deterministic
  because a blocked victim's clock does not advance while it waits;
* **storage**: checkpoint stores found in the job args are wrapped
  per-shard in a :class:`~repro.storage.store.RecordingStore`; commit
  notices travel through the master at epoch boundaries (so GC floors
  converge), and the parent replays each shard's operation log into
  the real store after the run — per-node WAL/scatter keyspaces are
  shard-disjoint, so replay in shard order reconstructs the exact
  store state.  Backends marked ``shared_across_fork`` (real disk) are
  instead reloaded from their own bytes.

See DESIGN.md section 10 for the full protocol and determinism
argument.

The processes backend (:mod:`repro.mpi.processes`) reuses this whole
machinery in *real-kill* mode — ``run_sharded(..., real_kill=True)``:
fault delivery becomes an actual SIGKILL of the victim's node process
(a structural fault self-delivers at its fire site with a dying-breath
``"dy"`` frame; a blocked ``at_time`` victim is killed by the master
directly), every death is waitpid-confirmed, and a one-node job still
forks instead of degenerating to the cooperative loop.  DESIGN.md §12
documents the deltas.
"""

from __future__ import annotations

import io
import mmap
import os
import pickle
import select
import signal
import struct
import time as _time
import traceback
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import ProcessFailure
from .lookahead import LookaheadWindow
from .scheduler import CooperativeScheduler

__all__ = ["SharedFlag", "plan_shards", "run_sharded"]

_LEN = struct.Struct("<I")

#: shard states tracked by the master
_BUSY, _WAIT, _SOFT, _EXITED = "busy", "wait", "soft", "exited"


class SharedFlag:
    """A one-byte abort flag in anonymous shared memory.

    Duck-types the slice of :class:`threading.Event` the engine uses
    (``is_set``/``set``/``clear``) but is inherited across ``fork``, so
    a rank killed in one shard aborts every other shard's ranks at
    their next MPI call — the same fail-stop observation points as the
    single-process engine, at the cost of one shared-memory byte read.
    """

    def __init__(self):
        self._map = mmap.mmap(-1, 1)
        self._map[0] = 0

    def is_set(self) -> bool:
        return self._map[0] != 0

    def set(self) -> None:
        self._map[0] = 1

    def clear(self) -> None:
        self._map[0] = 0


def plan_shards(nprocs: int, procs_per_node: int, n_shards: int
                ) -> List[List[int]]:
    """Contiguous node blocks -> shards; ranks of one node never split.

    The shard boundary is the simulated node: co-located ranks share a
    drain device and (for the WAL) a node log, so keeping a node whole
    keeps all per-node state single-writer.  ``n_shards`` is clamped to
    the node count.  The split is deterministic: first
    ``n_nodes % n_shards`` shards get one extra node.
    """
    ppn = max(1, int(procs_per_node))
    n_nodes = (nprocs + ppn - 1) // ppn
    n_shards = max(1, min(int(n_shards), n_nodes))
    base, extra = divmod(n_nodes, n_shards)
    shards: List[List[int]] = []
    node = 0
    for s in range(n_shards):
        take = base + (1 if s < extra else 0)
        lo = node * ppn
        hi = min(nprocs, (node + take) * ppn)
        shards.append(list(range(lo, hi)))
        node += take
    return shards


# -- pipe framing ------------------------------------------------------------
#
# Readers are UNBUFFERED (``os.fdopen(fd, "rb", buffering=0)``): both
# loops gate reads on ``select()`` of the raw fd, and a buffered reader
# would slurp whole frames into a Python-level buffer that select cannot
# see, stranding the second of two back-to-back frames until unrelated
# traffic arrives.  Raw reads may return short, so frames are assembled
# with exact-length loops.

def _write_msg(fd: int, obj: Any) -> None:
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    data = _LEN.pack(len(blob)) + blob
    view = memoryview(data)
    while view:
        n = os.write(fd, view)
        view = view[n:]


def _read_exact(reader: io.RawIOBase, length: int) -> bytes:
    buf = bytearray()
    while len(buf) < length:
        chunk = reader.read(length - len(buf))
        if not chunk:
            raise EOFError("shard pipe closed"
                           + (" mid-frame" if buf else ""))
        buf.extend(chunk)
    return bytes(buf)


def _read_msg(reader: io.RawIOBase) -> Any:
    (length,) = _LEN.unpack(_read_exact(reader, _LEN.size))
    return pickle.loads(_read_exact(reader, length))


def _wait_readable(fd: int, timeout: Optional[float]) -> bool:
    while True:
        try:
            ready, _, _ = select.select([fd], [], [], timeout)
            return bool(ready)
        except InterruptedError:  # pragma: no cover - signal noise
            continue


# -- worker side -------------------------------------------------------------

class _RemoteMailbox:
    """Mailbox stand-in for a rank living on another shard.

    ``deliver`` captures the envelope into the worker's outbox (with the
    sending world rank — exactly one fiber runs at a time, so the
    scheduler's current task is the sender); ``notify`` is a no-op
    (aborts reach remote ranks through the shared flag and the master).
    """

    __slots__ = ("rank", "_worker")

    def __init__(self, rank: int, worker: "_ShardWorker"):
        self.rank = rank
        self._worker = worker

    def deliver(self, env) -> None:
        self._worker.capture_send(env)

    def notify(self) -> None:
        pass


class _ShardScheduler(CooperativeScheduler):
    """Cooperative loop for one shard's ranks, with master hooks."""

    def __init__(self, engine, ranks, worker: "_ShardWorker"):
        super().__init__(engine, ranks=ranks)
        self._worker = worker

    def _on_quiescent(self) -> bool:
        return self._worker.on_quiescent(self)

    def _on_idle_spin(self) -> None:
        self._worker.on_idle_spin(self)


class _ShardWorker:
    """Everything one forked shard process does."""

    def __init__(self, engine, shard: int, ranks: List[int],
                 rfd: int, wfd: int, time_specs: List, deadline: float,
                 real_kill: bool = False):
        self.engine = engine
        self.shard = shard
        self.ranks = ranks
        self.local = set(ranks)
        self.rfd = rfd
        self.wfd = wfd
        self.reader = os.fdopen(rfd, "rb", buffering=0)
        self.time_specs = time_specs
        self.deadline = deadline
        #: faults SIGKILL this process instead of unwinding (processes
        #: backend); see :meth:`_real_die`
        self.real_kill = real_kill
        #: epoch of the last master message processed, echoed in every
        #: status so the master can spot statuses written before a grant
        self.epoch = 0
        self.outbox: List[Tuple[int, Any]] = []
        self.sched: Optional[_ShardScheduler] = None
        #: recording stores substituted into the job args, by position
        self.stores: List[Tuple[int, Any]] = []

    # -- plumbing -----------------------------------------------------------
    def capture_send(self, env) -> None:
        src = self.sched._current.rank
        self.outbox.append((src, env))

    def _drain_notices(self) -> List[Tuple[int, int]]:
        notices: List[Tuple[int, int]] = []
        for _pos, store in self.stores:
            notices.extend(store.take_notices())
        return notices

    def _send_status(self, kind: str, floor: Optional[float],
                     blocked: List[int]) -> None:
        clock_high = max(
            (self.engine.rank_contexts[r].clock.now for r in self.ranks),
            default=0.0)
        outbox, self.outbox = self.outbox, []
        _write_msg(self.wfd, ("st", self.shard, kind, floor, blocked,
                              clock_high, outbox, self._drain_notices(),
                              self.epoch))

    def _handle(self, msg, sched: _ShardScheduler) -> bool:
        """Apply one master message; False ends the loop in deadlock."""
        tag = msg[0]
        self.epoch = msg[-1]  # every master message carries the epoch
        if tag == "gr":
            _tag, items, notices, _epoch = msg
            for _pos, store in self.stores:
                store.apply_remote_commits(notices)
            for _src, env in items:
                self.engine.mailboxes[env.dest].deliver(env)
            return True
        if tag == "fd":
            spec = self.time_specs[msg[1]]
            self.engine.rank_contexts[spec.rank].set_due_fault(spec)
            return True
        if tag == "dl":
            sched._deadlock_ranks = list(msg[1])
            return False
        # "wk": wake — the loop re-checks abort/deadline itself
        return True

    # -- scheduler hooks ----------------------------------------------------
    def on_quiescent(self, sched: _ShardScheduler) -> bool:
        # Drain anything the master sent while we were running, so a
        # spontaneous message (fault notice, wake) is never mistaken
        # for the reply to the status we are about to send.
        drained = False
        while _wait_readable(self.rfd, 0.0):
            if not self._handle(_read_msg(self.reader), sched):
                return False
            drained = True
        if drained:
            return True
        if self.engine.abort_event.is_set():
            return True  # the loop's own abort path wakes everyone
        self._send_status("b", None, sorted(sched._blocked))
        budget = self.deadline + CooperativeScheduler.HANDOFF_GRACE \
            - _time.monotonic()
        if not _wait_readable(self.rfd, max(1.0, budget)):
            # Master gone silent past the wall deadline: abort locally.
            self.engine.abort(None)  # pragma: no cover - degraded mode
            return True  # pragma: no cover
        try:
            msg = _read_msg(self.reader)
        except EOFError:  # pragma: no cover - master died
            self.engine.abort(None)
            return True
        return self._handle(msg, sched)

    def on_idle_spin(self, sched: _ShardScheduler) -> None:
        # Runnable ranks are spinning in Test/Iprobe loops with nothing
        # arriving: publish a soft status (finite floor — we might still
        # send) and poll the master without blocking.
        floor = min(
            (self.engine.rank_contexts[t.rank].clock.now
             for t in sched._tasks if t.state == "yielded"),
            default=None)
        self._send_status("s", floor, sorted(sched._blocked))
        while _wait_readable(self.rfd, 0.0):
            try:
                msg = _read_msg(self.reader)
            except EOFError:  # pragma: no cover - master died
                self.engine.abort(None)
                return
            if not self._handle(msg, sched):  # pragma: no cover - stale race
                # A deadlock verdict while ranks are still spinning can
                # only follow a master/worker state divergence (the
                # epoch stamps make that unreachable); do not leave a
                # half-applied verdict — drop the rank list and degrade
                # to an abort so the loop actually terminates.
                sched._deadlock_ranks = []
                self.engine.abort(None)
                return

    # -- real-kill fault delivery -------------------------------------------
    def _real_die(self, spec, rank: int, now: float) -> None:
        """Fault-plan kill hook: SIGKILL this node process at the fire
        site.

        One dying-breath ``"dy"`` frame first — injection *bookkeeping*
        only (victim rank, virtual fire time, fired spec indices), never
        application or storage state, so recovery can never depend on a
        message a real crash would not have sent.  Then the process
        kills itself with SIGKILL: no Python unwind, no ``finally``
        blocks, no flushes — staged checkpoint state not yet durable is
        genuinely lost.  Never returns.
        """
        plan = self.engine.fault_plan
        index = {id(s): i for i, s in enumerate(plan.all_specs())}
        fired = sorted(index[id(s)] for s in plan.fired if id(s) in index)
        try:
            _write_msg(self.wfd, ("dy", self.shard,
                                  (rank, now, spec.reason), fired))
        except OSError:  # pragma: no cover - master already gone
            pass
        os.kill(os.getpid(), signal.SIGKILL)
        os._exit(1)  # pragma: no cover - unreachable (SIGKILL lands first)

    # -- lifecycle ----------------------------------------------------------
    def install(self) -> None:
        """Rewire the forked engine copy for this shard."""
        engine = self.engine
        self.sched = _ShardScheduler(engine, self.ranks, self)
        engine.scheduler = self.sched
        if self.real_kill:
            # Post-fork, child-only: the parent's plan keeps simulated
            # delivery, this copy SIGKILLs at every fire site (check(),
            # note_*(), and the scheduled-fault delivery path alike).
            engine.fault_plan._kill_hook = self._real_die
        for r in range(engine.nprocs):
            if r in self.local:
                engine.mailboxes[r].bind_scheduler(self.sched)
            else:
                engine.mailboxes[r] = _RemoteMailbox(r, self)
        # Substitute recording wrappers for every checkpoint store in
        # the job args: local mutations are logged for the parent's
        # replay, remote commit notices overlay the fork-private view.
        from ..storage.store import CheckpointStore, RecordingStore
        args = list(engine._job_args)
        seen: Dict[int, Any] = {}
        for pos, value in enumerate(args):
            if isinstance(value, CheckpointStore):
                wrapper = seen.get(id(value))
                if wrapper is None:
                    wrapper = RecordingStore(value)
                    seen[id(value)] = wrapper
                    self.stores.append((pos, wrapper))
                args[pos] = wrapper
        engine._job_args = tuple(args)

    def run(self, body: Callable[[int], None],
            returns: List[Any], errors: List) -> None:
        self.sched.run(body, deadline=self.deadline, errors=errors)
        engine = self.engine
        if self.real_kill and engine.abort_event.is_set():
            # Surviving nodes of a real kill drain their staged tails
            # before exiting — the same survivors-flush semantics the
            # simulated engines apply in store.on_job_end (which cannot
            # reach state staged inside this process).  The *killed*
            # node never gets here: its staged tail is lost whole.
            for _pos, store in self.stores:
                try:
                    store.flush()
                except Exception:  # noqa: BLE001 - crash-grade abandon
                    pass
        spec_index = {id(s): i
                      for i, s in enumerate(engine.fault_plan.all_specs())}
        report = {
            "returns": {r: returns[r] for r in self.ranks},
            "clocks": {r: engine.rank_contexts[r].clock.now
                       for r in self.ranks},
            "sent_counts": {r: engine.rank_contexts[r].sent_count
                            for r in self.ranks},
            "sent_bytes": {r: engine.rank_contexts[r].sent_bytes
                           for r in self.ranks},
            "errors": list(errors),
            # ProcessFailure does not pickle round-trip (its args hold
            # the formatted message, not the constructor arguments), so
            # ship the fields and rebuild on the parent side.
            "failure": None if engine.failure is None else
                       (engine.failure.rank, engine.failure.time,
                        engine.failure.reason),
            "fired": sorted(spec_index[id(s)]
                            for s in engine.fault_plan.fired
                            if id(s) in spec_index),
            "store_ops": [(pos, store.ops) for pos, store in self.stores],
            "outbox": self.outbox,
            "notices": self._drain_notices(),
        }
        try:
            _write_msg(self.wfd, ("ex", self.shard, report))
        except (pickle.PicklingError, TypeError):
            report["returns"] = {r: None for r in self.ranks}
            report["store_ops"] = []
            report["errors"] = list(errors) + [
                (self.ranks[0], "sharded engine: shard report was not "
                                "picklable (unpicklable return value?)")]
            _write_msg(self.wfd, ("ex", self.shard, report))


def _worker_main(engine, shard: int, ranks: List[int], rfd: int, wfd: int,
                 time_specs: List, deadline: float,
                 body: Callable[[int], None],
                 returns: List[Any], errors: List,
                 real_kill: bool = False) -> None:
    """Child-process entry; never returns (``os._exit``)."""
    status = 0
    try:
        worker = _ShardWorker(engine, shard, ranks, rfd, wfd,
                              time_specs, deadline, real_kill=real_kill)
        worker.install()
        worker.run(body, returns, errors)
    except BaseException:
        status = 1
        try:
            _write_msg(wfd, ("cr", shard, traceback.format_exc()))
        except OSError:
            pass
    finally:
        # Skip atexit/IO teardown of the forked interpreter: the parent
        # owns stdout, coverage hooks, pytest capture, etc.
        os._exit(status)


# -- master side -------------------------------------------------------------

class _ShardHandle:
    __slots__ = ("shard", "ranks", "pid", "rfd", "wfd", "reader", "state",
                 "blocked", "report", "notices_sent", "epoch", "killed")

    def __init__(self, shard: int, ranks: List[int]):
        self.shard = shard
        self.ranks = ranks
        self.pid = -1
        self.rfd = -1
        self.wfd = -1
        self.reader: Optional[io.RawIOBase] = None
        self.state = _BUSY
        self.blocked: List[int] = []
        self.report: Optional[dict] = None
        #: how many global store notices this shard has been sent
        self.notices_sent = 0
        #: bumped on every waking message sent to this shard; a status
        #: echoing an older epoch was written before the wake and must
        #: not regress the shard's state (see absorb())
        self.epoch = 0
        #: this shard's process died (or was killed) by a real SIGKILL
        #: fault delivery; already reaped, never an error at EOF
        self.killed = False


def run_sharded(engine, body: Callable[[int], None], timeout: float,
                errors: List, returns: List[Any], *,
                n_shards: Optional[int] = None,
                real_kill: bool = False) -> None:
    """Fork one worker per shard and route cross-shard traffic.

    Mutates ``errors``/``returns`` and the engine's rank contexts in
    place, exactly like the other backends, so ``Engine.run`` assembles
    the :class:`JobResult` without knowing the backend.

    ``real_kill=True`` is the processes backend (:mod:`repro.mpi.
    processes`): fault specs are delivered as actual SIGKILLs to the
    victim's node process — structural faults self-deliver at the fire
    site inside the child (one dying-breath ``"dy"`` frame, then
    SIGKILL), blocked ``at_time`` victims are killed by this
    coordinator directly — and every death is confirmed by waitpid
    status before its evidence lands in ``engine.real_kills``.
    """
    shards = plan_shards(engine.nprocs, engine.machine.procs_per_node,
                         engine.shard_count() if n_shards is None
                         else n_shards)
    if len(shards) == 1 and not real_kill:
        # Exact reduction: one shard IS the cooperative engine — same
        # scheduler, same schedule, same switch count, no fork.  A
        # real-kill run must still fork: SIGKILLing the caller is not
        # an option.
        engine._run_cooperative(body, errors)
        return

    flag = SharedFlag()
    if engine.abort_event.is_set():  # pragma: no cover - defensive
        flag.set()
    engine.abort_event = flag

    # Deterministic enumeration of unfired at_time specs, shared with
    # every child through fork: the master refers to specs by index.
    time_specs = sorted(
        (s for s in engine.fault_plan.unfired() if s.at_time is not None),
        key=lambda s: (s.at_time, s.rank))
    spec_list = list(engine.fault_plan.all_specs())

    deadline = engine._deadline
    window = LookaheadWindow(len(shards), engine.machine.latency)
    handles: List[_ShardHandle] = []
    shard_of_rank: Dict[int, int] = {}
    for idx, ranks in enumerate(shards):
        for r in ranks:
            window.route(r, idx)
            shard_of_rank[r] = idx
        handles.append(_ShardHandle(idx, ranks))

    for h in handles:
        p2c_r, p2c_w = os.pipe()
        c2p_r, c2p_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(p2c_w)
            os.close(c2p_r)
            for other in handles:
                if other is not h and other.pid > 0:
                    os.close(other.wfd)
                    os.close(other.rfd)
            _worker_main(engine, h.shard, h.ranks, p2c_r, c2p_w,
                         time_specs, deadline, body, returns, errors,
                         real_kill=real_kill)
            raise SystemExit(1)  # pragma: no cover - unreachable
        os.close(p2c_r)
        os.close(c2p_w)
        h.pid = pid
        h.wfd = p2c_w
        h.rfd = c2p_r
        h.reader = os.fdopen(c2p_r, "rb", buffering=0)

    notices_log: List[Tuple[int, int]] = []
    notified_specs = [False] * len(time_specs)
    clock_high = 0.0
    #: fail-stop records from real kills (child self-kills reported by
    #: "dy" frames, plus coordinator-delivered at_time kills); folded
    #: into engine.failure by _merge — a killed shard sends no report
    real_failures: List[ProcessFailure] = []

    def confirm_death(h: _ShardHandle) -> Optional[int]:
        """Reap a killed node process; waitpid-confirmed termination
        signal (the acceptance evidence), or None if it somehow exited
        on its own.  Marks the handle so _reap skips the pid."""
        pid, h.pid = h.pid, -1  # -1: _reap must not waitpid again
        try:
            _pid, status = os.waitpid(pid, 0)
        except ChildProcessError:  # pragma: no cover - reaped elsewhere
            return None
        return os.WTERMSIG(status) if os.WIFSIGNALED(status) else None

    def record_kill(h: _ShardHandle, rank: int, now: float, reason: str,
                    pid: int, termsig: Optional[int]) -> None:
        """Fold one confirmed real kill into the master-side run state."""
        h.killed = True
        h.state = _EXITED
        real_failures.append(ProcessFailure(rank, now, reason))
        engine.real_kills.append({
            "rank": rank, "shard": h.shard, "pid": pid,
            "termsig": termsig,
            "sigkill": termsig == signal.SIGKILL,
            "time": now, "reason": reason,
        })
        window.drop_dest(h.shard)
        flag.set()
        # Wake blocked survivors immediately: they observe the abort
        # flag at their next poll and unwind — fail-stop detection with
        # no dependence on the select loop's timeout.
        for other in handles:
            if other.state == _WAIT:
                post(other, "wk")
                other.state = _BUSY

    def strike(h: _ShardHandle, spec) -> None:
        """Coordinator-delivered at_time kill: SIGKILL the node process.

        Mirrors the cooperative rule that an ``at_time`` fault fires
        when *any* rank's clock crosses it: a victim blocked at the
        quiescence barrier cannot self-deliver, so the coordinator
        kills its process directly.  The failure record uses the spec's
        own time — deterministic, like the blocked victim's frozen
        clock under the simulated engines.
        """
        pid = h.pid
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:  # pragma: no cover - lost the race
            pass
        termsig = confirm_death(h)
        engine.fault_plan.mark_fired(spec)
        record_kill(h, spec.rank, spec.at_time, spec.reason, pid, termsig)

    def post(h: _ShardHandle, *parts) -> None:
        """Send a waking message, stamped with a bumped shard epoch.

        The worker echoes the epoch of the last master message it has
        processed in every status, so a status written *before* this
        message — possibly still sitting in the pipe — is recognizably
        stale and cannot regress the shard's master-side state.
        """
        h.epoch += 1
        try:
            _write_msg(h.wfd, parts + (h.epoch,))
        except (BrokenPipeError, OSError):  # pragma: no cover - child died
            pass

    def grant(h: _ShardHandle, items) -> None:
        fresh = notices_log[h.notices_sent:]
        h.notices_sent = len(notices_log)
        post(h, "gr", [item[4] for item in items], fresh)
        h.state = _BUSY

    def progress() -> None:
        nonlocal clock_high
        live = [h for h in handles if h.state != _EXITED]
        if flag.is_set():
            for h in live:
                if h.state == _WAIT:
                    post(h, "wk")
                    h.state = _BUSY
            return
        # Virtual-time fault notices: a fault comes due when ANY rank's
        # clock crosses it (the cooperative engine's rule).  Simulated
        # delivery posts a notice for the victim rank to raise; a real-
        # kill run SIGKILLs the victim's node process from here instead
        # (the victim may be blocked at the barrier, unable to self-
        # deliver; a *running* victim usually beats us to it via its own
        # fault check, which also counts as a real kill — see "dy").
        for i, spec in enumerate(time_specs):
            if notified_specs[i] or spec.at_time > clock_high:
                continue
            notified_specs[i] = True
            victim = handles[shard_of_rank[spec.rank]]
            if victim.state == _EXITED:
                continue
            if real_kill:
                strike(victim, spec)
                return  # the flag is set; next pass wakes the others
            post(victim, "fd", i)
            if victim.state == _WAIT:
                victim.state = _BUSY
        if any(h.state == _BUSY for h in handles):
            return  # strict epochs: release only at full quiescence
        if not live:
            return
        released_any = False
        for h in live:
            items = window.release(h.shard)
            if items:
                released_any = True
                grant(h, items)
        if released_any:
            return
        if (window.transit_count() == 0
                and all(h.state == _WAIT for h in live)):
            # Global quiescence with nothing in flight: no rank on any
            # shard can ever be woken again — the cross-shard deadlock.
            # Only the shard owning the lowest blocked rank is told: in
            # the cooperative engine blocked ranks wake in rank order,
            # so exactly the lowest raises DeadlockError and its abort
            # makes every later rank unwind as JobAborted.  The other
            # shards stay parked until the abort flag is set and the
            # master wakes them (the flag branch above), which keeps
            # the error list deterministic across process boundaries.
            ranks = sorted(r for h in live for r in h.blocked)
            if ranks:
                owner = handles[shard_of_rank[ranks[0]]]
                post(owner, "dl", ranks)
                owner.state = _BUSY

    def absorb(h: _ShardHandle, msg) -> None:
        nonlocal clock_high
        tag = msg[0]
        if tag == "st":
            (_t, _shard, kind, floor, blocked, high, outbox, notices,
             epoch) = msg
            # Sends, notices and the clock high-water are real no matter
            # when the status was written; absorb them unconditionally.
            clock_high = max(clock_high, high)
            for src, env in outbox:
                dest = shard_of_rank[env.dest]
                if handles[dest].state == _EXITED:
                    continue  # unconsumable: the destination completed
                window.send(src, env.dest, env.avail_time, (src, env))
            notices_log.extend(notices)
            if epoch != h.epoch:
                # Written before a wake we already sent (grant/fault/
                # deadlock): the worker is running that wake right now,
                # so taking this state would regress a _BUSY shard to
                # _WAIT/_SOFT with a stale blocked list — the raw
                # material of a spurious cross-shard deadlock verdict
                # or a release epoch started mid-run.  The worker
                # re-sends a fresh status at its next quiescence/spin.
                return
            h.state = _WAIT if kind == "b" else _SOFT
            h.blocked = blocked
            window.report(h.shard, floor)
        elif tag == "ex":
            _t, _shard, report = msg
            h.state = _EXITED
            h.report = report
            clock_high = max(clock_high,
                             max(report["clocks"].values(), default=0.0))
            for src, env in report["outbox"]:
                dest = shard_of_rank[env.dest]
                if handles[dest].state == _EXITED:
                    continue
                window.send(src, env.dest, env.avail_time, (src, env))
            notices_log.extend(report["notices"])
            window.drop_dest(h.shard)
        elif tag == "dy":
            # Dying breath of a real-kill child: it fired a fault spec
            # at its deterministic fire site, reported the injection
            # bookkeeping, and SIGKILLed itself — confirm the death by
            # waitpid before trusting the frame.
            _t, _shard, (rank, now, reason), fired_idx = msg
            pid = h.pid
            termsig = confirm_death(h)
            for idx in fired_idx:
                engine.fault_plan.mark_fired(spec_list[idx])
            record_kill(h, rank, now, reason, pid, termsig)
        else:  # "cr" — the shard process itself crashed
            _t, _shard, tb = msg
            h.state = _EXITED
            errors.append((-1, f"sharded engine: shard {h.shard} "
                               f"(ranks {h.ranks[0]}-{h.ranks[-1]}) "
                               f"crashed:\n{tb}"))
            window.drop_dest(h.shard)
            flag.set()

    hard_deadline = deadline + CooperativeScheduler.HANDOFF_GRACE
    try:
        while any(h.state != _EXITED for h in handles):
            now = _time.monotonic()
            if now > hard_deadline:
                break  # pragma: no cover - stuck children killed below
            if now > deadline and not flag.is_set():
                flag.set()  # ranks unwind via their deadline checks
            fds = {h.rfd: h for h in handles if h.state != _EXITED}
            if _wait_readable_any(list(fds), min(1.0, hard_deadline - now)):
                for rfd, h in list(fds.items()):
                    if not _wait_readable(rfd, 0.0):
                        continue
                    try:
                        msg = _read_msg(h.reader)
                    except EOFError:
                        if h.state != _EXITED:
                            h.state = _EXITED
                            errors.append(
                                (-1, f"sharded engine: shard {h.shard} "
                                     f"exited without a report"))
                            window.drop_dest(h.shard)
                            flag.set()
                        continue
                    absorb(h, msg)
            progress()
    finally:
        _reap(handles, errors)

    _merge(engine, handles, spec_list, errors, returns,
           extra_failures=real_failures)


def _wait_readable_any(fds: List[int], timeout: float) -> bool:
    if not fds:
        return False
    while True:
        try:
            ready, _, _ = select.select(fds, [], [], max(0.0, timeout))
            return bool(ready)
        except InterruptedError:  # pragma: no cover - signal noise
            continue


def _reap(handles: List[_ShardHandle], errors: List) -> None:
    """Tear down children: close pipes, then collect (or kill) them."""
    for h in handles:
        try:
            os.close(h.wfd)
        except OSError:
            pass
    deadline = _time.monotonic() + 5.0
    for h in handles:
        if h.pid <= 0:
            # Already reaped (a confirmed real kill) or never forked;
            # still close the read end so a long campaign of kills
            # cannot leak descriptors.
            if h.reader is not None:
                try:
                    h.reader.close()
                except OSError:  # pragma: no cover
                    pass
            continue
        while True:
            try:
                pid, _status = os.waitpid(h.pid, os.WNOHANG)
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                break
            if pid:
                break
            if _time.monotonic() > deadline:  # pragma: no cover - stuck
                try:
                    os.kill(h.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                try:
                    os.waitpid(h.pid, 0)
                except ChildProcessError:
                    pass
                errors.append((-1, f"sharded engine: shard {h.shard} "
                                   f"killed after timeout"))
                break
            _time.sleep(0.01)
        try:
            h.reader.close()
        except OSError:  # pragma: no cover
            pass


def _merge(engine, handles: List[_ShardHandle], spec_list: List,
           errors: List, returns: List[Any],
           extra_failures: Optional[List[ProcessFailure]] = None) -> None:
    """Fold shard reports back into the parent engine's run state.

    ``extra_failures`` carries real-kill fail-stop records: a SIGKILLed
    shard sends no exit report, so its failure arrives out of band.
    """
    failures: List[ProcessFailure] = list(extra_failures or ())
    store_ops: Dict[int, List[Tuple[int, List]]] = {}
    for h in handles:
        report = h.report
        if report is None:
            continue
        for r, value in report["returns"].items():
            returns[r] = value
        for r, clock in report["clocks"].items():
            ctx = engine.rank_contexts[r]
            if clock > ctx.clock.now:
                ctx.clock.sync_to(clock)
        for r, n in report["sent_counts"].items():
            engine.rank_contexts[r].sent_count = n
        for r, n in report["sent_bytes"].items():
            engine.rank_contexts[r].sent_bytes = n
        errors.extend(tuple(e) for e in report["errors"])
        if report["failure"] is not None:
            failures.append(ProcessFailure(*report["failure"]))
        for idx in report["fired"]:
            engine.fault_plan.mark_fired(spec_list[idx])
        for pos, ops in report["store_ops"]:
            store_ops.setdefault(pos, []).append((h.shard, ops))
    if failures and engine.failure is None:
        # The schedule-level "first" failure is not observable across
        # processes; pick the earliest virtual time (rank breaks ties),
        # which matches the cooperative engine for every single-victim
        # plan — the only case whose failure record we pin bitwise.
        failures.sort(key=lambda f: (f.time, f.rank))
        engine.failure = failures[0]
    # Replay each shard's store mutations into the parent's real store.
    # Per-node keyspaces are shard-disjoint, so shard-order replay
    # reconstructs the cooperative store state; shared-across-fork
    # backends (real disk) already hold the bytes and reload instead.
    from ..storage.store import replay_ops
    replayed: set = set()
    for pos in sorted(store_ops):
        store = engine._job_args[pos]
        if id(store) in replayed:
            continue
        replayed.add(id(store))
        if getattr(store.backend, "shared_across_fork", False):
            store.reload()
            continue
        for _shard, ops in sorted(store_ops[pos]):
            replay_ops(store, ops)
