"""MPI datatypes for the simulated runtime.

Named types wrap numpy scalar dtypes.  Derived types are built with the
MPI-2 constructors (contiguous, vector, indexed, struct) and may nest
arbitrarily, forming the *type hierarchy* that Section 4.2 of the paper
tracks in its datatype handle table.

A datatype describes a byte layout relative to a base address.  ``pack``
gathers the described bytes out of a buffer into a contiguous ``bytes``
payload; ``unpack`` scatters a payload back.  Payloads are what travel
through the simulated network and what the C3 protocol logs, so
non-contiguous regions are logged piece-by-piece exactly as the paper
describes ("the datatype hierarchy is recursively traversed to identify and
individually store or retrieve each piece of the message").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .errors import InvalidDatatypeError


class Datatype:
    """Base class for all datatypes.

    Attributes
    ----------
    size:
        Number of payload bytes per element (sum of base-type bytes).
    extent:
        Span in bytes from the first to one past the last byte described,
        used to step between consecutive elements of this type.
    """

    def __init__(self, name: str, size: int, extent: int, children: Tuple["Datatype", ...] = ()):
        self.name = name
        self.size = size
        self.extent = extent
        self.children = children
        self.committed = False
        self.freed = False
        #: cached (offsets array, dense?) layout — types are immutable once
        #: constructed, so the byte map never changes
        self._layout_cache: Tuple[np.ndarray, bool] = None

    # -- lifecycle ---------------------------------------------------------
    def Commit(self) -> "Datatype":
        """Mark the type ready for use in communication (``MPI_Type_commit``)."""
        self._check_not_freed()
        self.committed = True
        return self

    def Free(self) -> None:
        """Release the handle (``MPI_Type_free``)."""
        self._check_not_freed()
        self.freed = True

    def _check_not_freed(self) -> None:
        if self.freed:
            raise InvalidDatatypeError(f"datatype {self.name} has been freed")

    def _check_usable(self) -> None:
        self._check_not_freed()
        if not self.committed:
            raise InvalidDatatypeError(f"datatype {self.name} used before Commit()")

    # -- layout ------------------------------------------------------------
    def byte_offsets(self) -> List[int]:
        """Offsets (relative to an element's base) of each payload byte."""
        raise NotImplementedError

    def describe(self) -> dict:
        """A constructor recipe: enough to recreate the type after restart."""
        raise NotImplementedError

    # -- pack / unpack -----------------------------------------------------
    def _layout(self) -> Tuple[np.ndarray, bool]:
        """Cached byte map: (per-element offsets, is the layout dense?).

        A *dense* layout (every byte of the extent is payload, in order —
        all named scalar types, and contiguous compositions of them)
        packs with a single slice instead of an index gather.
        """
        cached = self._layout_cache
        if cached is None:
            offs = np.asarray(self.byte_offsets(), dtype=np.intp)
            dense = (self.extent == self.size and len(offs) == self.size
                     and bool((offs == np.arange(self.size, dtype=np.intp)).all()))
            cached = self._layout_cache = (offs, dense)
        return cached

    def pack(self, buffer, count: int = 1) -> bytes:
        """Gather ``count`` elements of this type from ``buffer`` into bytes."""
        self._check_usable_for_pack()
        raw = _as_byte_view(buffer)
        offs, dense = self._layout()
        need = count * len(offs)
        if dense:
            if raw.size < need:
                raise InvalidDatatypeError(
                    f"buffer of {raw.size} bytes too short to pack "
                    f"{count} x {self.name}"
                )
            return raw[:need].tobytes()
        if count == 1:
            return raw[offs].tobytes()
        idx = (np.arange(count, dtype=np.intp)[:, None] * self.extent
               + offs[None, :]).ravel()
        return raw[idx].tobytes()

    def unpack(self, payload: bytes, buffer, count: int = 1) -> None:
        """Scatter a packed payload into ``buffer`` (inverse of :meth:`pack`)."""
        self._check_usable_for_pack()
        raw = _as_byte_view(buffer)
        offs, dense = self._layout()
        src = np.frombuffer(payload, dtype=np.uint8)
        need = count * len(offs)
        if len(src) < need:
            raise InvalidDatatypeError(
                f"payload of {len(src)} bytes too short for {count} x {self.name}"
            )
        if dense:
            raw[:need] = src[:need]
            return
        if count == 1:
            raw[offs] = src[:need]
            return
        idx = (np.arange(count, dtype=np.intp)[:, None] * self.extent
               + offs[None, :]).ravel()
        raw[idx] = src[:need]

    def _check_usable_for_pack(self) -> None:
        # Named types are implicitly committed; derived ones must be.
        self._check_not_freed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} size={self.size} extent={self.extent}>"


class NamedType(Datatype):
    """A predefined scalar type backed by a numpy dtype."""

    def __init__(self, name: str, np_dtype):
        self.np_dtype = np.dtype(np_dtype)
        super().__init__(name, self.np_dtype.itemsize, self.np_dtype.itemsize)
        self.committed = True

    def byte_offsets(self) -> List[int]:
        return list(range(self.np_dtype.itemsize))

    def describe(self) -> dict:
        return {"kind": "named", "name": self.name}

    # Named types are never truly freed in MPI; make Free a no-op.
    def Free(self) -> None:
        return


class ContiguousType(Datatype):
    """``MPI_Type_contiguous``: ``count`` consecutive elements of a base type."""

    def __init__(self, count: int, base: Datatype):
        base._check_not_freed()
        self.count = count
        self.base = base
        super().__init__(
            f"contig({count},{base.name})",
            size=count * base.size,
            extent=count * base.extent,
            children=(base,),
        )

    def byte_offsets(self) -> List[int]:
        base_offs = self.base.byte_offsets()
        return [i * self.base.extent + o for i in range(self.count) for o in base_offs]

    def describe(self) -> dict:
        return {"kind": "contiguous", "count": self.count}

    def _check_usable_for_pack(self) -> None:
        self._check_usable()


class VectorType(Datatype):
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
    separated by ``stride`` elements (all in units of the base type)."""

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        base._check_not_freed()
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base
        last = (count - 1) * stride + blocklength if count > 0 else 0
        super().__init__(
            f"vector({count},{blocklength},{stride},{base.name})",
            size=count * blocklength * base.size,
            extent=last * base.extent,
            children=(base,),
        )

    def byte_offsets(self) -> List[int]:
        base_offs = self.base.byte_offsets()
        offs: List[int] = []
        for b in range(self.count):
            start = b * self.stride
            for j in range(self.blocklength):
                elem = (start + j) * self.base.extent
                offs.extend(elem + o for o in base_offs)
        return offs

    def describe(self) -> dict:
        return {
            "kind": "vector",
            "count": self.count,
            "blocklength": self.blocklength,
            "stride": self.stride,
        }

    def _check_usable_for_pack(self) -> None:
        self._check_usable()


class IndexedType(Datatype):
    """``MPI_Type_indexed``: blocks of varying length at varying displacements
    (both in units of the base type)."""

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype):
        base._check_not_freed()
        if len(blocklengths) != len(displacements):
            raise InvalidDatatypeError("blocklengths and displacements differ in length")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements = tuple(int(d) for d in displacements)
        self.base = base
        total = sum(self.blocklengths)
        span = max(
            (d + b for d, b in zip(self.displacements, self.blocklengths)), default=0
        )
        super().__init__(
            f"indexed({len(blocklengths)} blocks,{base.name})",
            size=total * base.size,
            extent=span * base.extent,
            children=(base,),
        )

    def byte_offsets(self) -> List[int]:
        base_offs = self.base.byte_offsets()
        offs: List[int] = []
        for blen, disp in zip(self.blocklengths, self.displacements):
            for j in range(blen):
                elem = (disp + j) * self.base.extent
                offs.extend(elem + o for o in base_offs)
        return offs

    def describe(self) -> dict:
        return {
            "kind": "indexed",
            "blocklengths": list(self.blocklengths),
            "displacements": list(self.displacements),
        }

    def _check_usable_for_pack(self) -> None:
        self._check_usable()


class StructType(Datatype):
    """``MPI_Type_create_struct``: blocks of (possibly different) base types
    at explicit *byte* displacements."""

    def __init__(self, blocklengths: Sequence[int], byte_displacements: Sequence[int], types: Sequence[Datatype]):
        if not (len(blocklengths) == len(byte_displacements) == len(types)):
            raise InvalidDatatypeError("struct constructor arrays differ in length")
        for t in types:
            t._check_not_freed()
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.byte_displacements = tuple(int(d) for d in byte_displacements)
        self.types = tuple(types)
        size = sum(b * t.size for b, t in zip(self.blocklengths, self.types))
        span = max(
            (d + b * t.extent for b, d, t in zip(self.blocklengths, self.byte_displacements, self.types)),
            default=0,
        )
        super().__init__(
            f"struct({len(types)} blocks)", size=size, extent=span, children=tuple(types)
        )

    def byte_offsets(self) -> List[int]:
        offs: List[int] = []
        for blen, disp, t in zip(self.blocklengths, self.byte_displacements, self.types):
            t_offs = t.byte_offsets()
            for j in range(blen):
                elem = disp + j * t.extent
                offs.extend(elem + o for o in t_offs)
        return offs

    def describe(self) -> dict:
        return {
            "kind": "struct",
            "blocklengths": list(self.blocklengths),
            "byte_displacements": list(self.byte_displacements),
        }

    def _check_usable_for_pack(self) -> None:
        self._check_usable()


def _as_byte_view(buffer) -> np.ndarray:
    """View any contiguous buffer (numpy array / bytearray) as mutable bytes."""
    if isinstance(buffer, np.ndarray):
        if not buffer.flags["C_CONTIGUOUS"]:
            raise InvalidDatatypeError("communication buffers must be C-contiguous")
        return buffer.view(np.uint8).reshape(-1)
    if isinstance(buffer, (bytearray, memoryview)):
        return np.frombuffer(buffer, dtype=np.uint8)
    raise InvalidDatatypeError(f"unsupported buffer type {type(buffer).__name__}")


# -- predefined named types -------------------------------------------------
BYTE = NamedType("MPI_BYTE", np.uint8)
CHAR = NamedType("MPI_CHAR", np.int8)
SHORT = NamedType("MPI_SHORT", np.int16)
INT = NamedType("MPI_INT", np.int32)
LONG = NamedType("MPI_LONG", np.int64)
UNSIGNED = NamedType("MPI_UNSIGNED", np.uint32)
UNSIGNED_LONG = NamedType("MPI_UNSIGNED_LONG", np.uint64)
FLOAT = NamedType("MPI_FLOAT", np.float32)
DOUBLE = NamedType("MPI_DOUBLE", np.float64)
COMPLEX = NamedType("MPI_COMPLEX", np.complex64)
DOUBLE_COMPLEX = NamedType("MPI_DOUBLE_COMPLEX", np.complex128)
BOOL = NamedType("MPI_C_BOOL", np.bool_)

NAMED_TYPES = {
    t.name: t
    for t in (BYTE, CHAR, SHORT, INT, LONG, UNSIGNED, UNSIGNED_LONG, FLOAT,
              DOUBLE, COMPLEX, DOUBLE_COMPLEX, BOOL)
}

_NUMPY_TO_NAMED = {
    np.dtype(np.uint8): BYTE,
    np.dtype(np.int8): CHAR,
    np.dtype(np.int16): SHORT,
    np.dtype(np.int32): INT,
    np.dtype(np.int64): LONG,
    np.dtype(np.uint32): UNSIGNED,
    np.dtype(np.uint64): UNSIGNED_LONG,
    np.dtype(np.float32): FLOAT,
    np.dtype(np.float64): DOUBLE,
    np.dtype(np.complex64): COMPLEX,
    np.dtype(np.complex128): DOUBLE_COMPLEX,
    np.dtype(np.bool_): BOOL,
}


def from_numpy_dtype(dtype) -> NamedType:
    """Automatic datatype discovery for numpy buffers (mpi4py-style)."""
    try:
        return _NUMPY_TO_NAMED[np.dtype(dtype)]
    except KeyError:
        raise InvalidDatatypeError(f"no named MPI type for numpy dtype {dtype}") from None
