"""Conservative virtual-time lookahead window for sharded execution.

The sharded backend (:mod:`repro.mpi.sharded`) partitions ranks by
simulated node across worker processes.  Shards advance virtual time
independently, so a cross-shard envelope must not be released to its
destination "too early": conservative parallel discrete-event simulation
requires that once a shard has been granted a *safe time* S, no envelope
with an availability timestamp below S ever reaches it afterwards — a
straggler would mean the shard had already been allowed past the
message.

:class:`LookaheadWindow` is the pure, process-free core of that
protocol — an LBTS (Lower Bound on Time Stamp) computation in the
distance-matrix style of conservative PDES:

* every shard reports a monotone **floor**: a lower bound on the send
  time of anything it can emit *without first receiving* — the engine
  uses the minimum virtual clock over the shard's runnable ranks.  A
  fully blocked shard reports ``floor=None``: it can emit nothing until
  something is released to it, so it is bounded inductively by the
  traffic queued for it, not by its (arbitrarily old) blocked clocks;
* the **lookahead** matrix gives, per (source shard, dest shard) pair,
  the minimum virtual latency any envelope experiences between them.
  It is closed under the triangle inequality at construction
  (Floyd-Warshall), because the safe bound for *d* must account for
  traffic that influences *d* through an intermediate shard;
* in-transit envelopes are enqueued per ``(source rank, dest rank)``
  stream and only ever released as a prefix of their stream, preserving
  MPI's per-signature non-overtaking order;
* the **effective floor** of shard *i* is
  ``min(floor_i, min avail_time queued for i)`` — a blocked shard's
  future sends are bounded by what it has yet to receive — and the safe
  bound for destination *d* is::

      lbts_for(d) = min over i != d of  eff_floor(i) + lookahead[i][d]

  :meth:`release` hands *d* every queued envelope with
  ``avail_time <= lbts_for(d)`` (FIFO-prefix constrained).

The *granted* safe time recorded at a non-empty release is tighter than
the delivery bound: ``min(lbts_for(d), eff_floor(d) + roundtrip(d))``,
where ``roundtrip(d)`` is the cheapest out-and-back path
``min over k != d of L[d][k] + L[k][d]``.  The second term is the
destination's **self-influence**: a low clock inside *d* (a rank the
release is about to wake) can propagate through a neighbour and return
as a brand-new envelope for *d*, undercutting the raw LBTS — which is
therefore a correct *delivery* gate (everything below it already in
transit is safe to hand over) but not a promise about future traffic.
The grant is the promise.

Invariants (the Hypothesis suite in ``tests/mpi/test_lookahead.py``
checks them over random latency tables and event schedules).  They hold
under the two preconditions the sharded engine supplies — (P1) a shard
only emits with ``avail_time >= its effective floor + lookahead`` (the
avail is a monotone send clock plus at least the pair's minimum
latency), and (P2) per ``(src_rank, dest_rank)`` stream, avail times
are nondecreasing:

1. **Safety (no stragglers):** every envelope released to shard *d* has
   ``avail_time`` at or above the bound granted at *d*'s previous
   non-empty release — a message is never delivered below the receiving
   shard's safe time.
2. **Monotonicity:** the granted safe time of every shard never
   decreases.  (The raw delivery bound ``lbts_for(d)`` may dip — e.g.
   when a woken destination's low clock echoes back through a
   neighbour — which is exactly why the grant subtracts the
   self-influence term instead of promising the raw bound.)
3. **Progress:** while envelopes are in transit and every shard is
   blocked, at least one envelope is releasable — the barrier protocol
   cannot livelock.
4. **FIFO:** per ``(source rank, dest rank)`` stream, release order is
   enqueue order.

The window is deliberately ignorant of processes, pipes and pickling;
the sharded runtime feeds it shard reports at quiescence barriers and
routes whatever it releases.  With one shard there is no cross-shard
traffic and the window degenerates to "nothing is ever queued", which
is what makes ``shards=1`` reduce exactly to the cooperative schedule.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = ["LookaheadWindow", "TransitItem"]

#: (enqueue order stamp, source rank, dest rank, avail_time, payload)
TransitItem = Tuple[int, int, int, float, object]


class LookaheadWindow:
    """LBTS bookkeeping for ``n_shards`` communicating shards."""

    def __init__(self, n_shards: int, lookahead: object = 0.0):
        """``lookahead`` is a scalar (uniform minimum cross-shard
        latency) or an ``n_shards x n_shards`` matrix of per-pair
        minimum latencies.  Negative lookahead is rejected: a message
        available before it was sent would break conservativeness.
        """
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        if isinstance(lookahead, (int, float)):
            matrix = [[float(lookahead)] * n_shards for _ in range(n_shards)]
        else:
            matrix = [[float(x) for x in row] for row in lookahead]
            if len(matrix) != n_shards or any(len(r) != n_shards
                                             for r in matrix):
                raise ValueError("lookahead matrix must be n_shards^2")
        for row in matrix:
            for x in row:
                if x < 0 or math.isnan(x):
                    raise ValueError(f"invalid lookahead {x}")
        # Triangle closure: influence reaching d via an intermediate
        # shard k is delayed by at least L[i][k] + L[k][d], so the
        # per-pair bound used everywhere below must be the shortest
        # path, or a relayed message could undercut a granted bound.
        for k in range(n_shards):
            row_k = matrix[k]
            for i in range(n_shards):
                ik = matrix[i][k]
                row_i = matrix[i]
                for j in range(n_shards):
                    via = ik + row_k[j]
                    if via < row_i[j]:
                        row_i[j] = via
        self.lookahead = matrix
        #: cheapest out-and-back path per shard (self-influence bound);
        #: +inf for a single shard, which has no neighbour to echo off
        self._roundtrip = [
            min((matrix[d][k] + matrix[k][d]
                 for k in range(n_shards) if k != d), default=math.inf)
            for d in range(n_shards)
        ]
        #: last reported floor per shard; None = blocked (bounded by
        #: queued traffic only)
        self._floors: List[Optional[float]] = [0.0] * n_shards
        #: (src_rank, dest_rank) -> FIFO deque of (seq, avail, payload)
        self._streams: Dict[Tuple[int, int], Deque[Tuple[int, float, object]]] = {}
        #: dest shard -> stream keys routed to it (deterministic scan)
        self._by_dest: Dict[int, List[Tuple[int, int]]] = {}
        #: dest shard -> min queued avail_time (term of the eff. floor)
        self._seq = 0
        self._in_transit = 0
        #: bound granted per destination at its last non-empty release
        self.granted: List[float] = [0.0] * n_shards
        #: rank -> shard routing, provided by the caller via route()
        self._shard_of: Dict[int, int] = {}

    # -- routing -------------------------------------------------------------
    def route(self, rank: int, shard: int) -> None:
        """Register which shard owns ``rank`` (used to queue by dest)."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range")
        self._shard_of[rank] = shard

    def shard_of(self, rank: int) -> int:
        return self._shard_of[rank]

    # -- shard reports -------------------------------------------------------
    def report(self, shard: int, floor: Optional[float]) -> None:
        """Update ``shard``'s floor.

        ``None`` means the shard is fully blocked.  Finite floors are
        clamped monotone against the previous finite report: clocks
        never run backwards, so a lower report is a stale observation.
        A shard may legitimately go ``None`` and later report a finite
        floor again after a release woke it; that floor is at or above
        the avail_time of whatever woke it, which the safety induction
        already bounds.
        """
        if not 0 <= shard < self.n_shards:
            raise ValueError(f"shard {shard} out of range")
        prev = self._floors[shard]
        if floor is not None and prev is not None and floor < prev:
            floor = prev
        self._floors[shard] = floor

    def send(self, src_rank: int, dest_rank: int,
             avail_time: float, payload: object = None) -> None:
        """Queue one in-transit envelope for ``dest_rank``'s shard."""
        dest_shard = self._shard_of[dest_rank]
        key = (src_rank, dest_rank)
        stream = self._streams.get(key)
        if stream is None:
            stream = self._streams[key] = deque()
            self._by_dest.setdefault(dest_shard, []).append(key)
        stream.append((self._seq, float(avail_time), payload))
        self._seq += 1
        self._in_transit += 1

    # -- the safe bound ------------------------------------------------------
    def transit_count(self) -> int:
        return self._in_transit

    def _queued_min(self) -> List[float]:
        """Per destination shard, the minimum queued avail_time.

        Per-stream avail times are nondecreasing (precondition P2), so
        a stream's minimum is its head; emptied streams are pruned by
        :meth:`release`/:meth:`drop_dest`, so this walks only streams
        with traffic actually queued — not every (src, dest) pair that
        ever communicated.
        """
        mins = [math.inf] * self.n_shards
        for dest, keys in self._by_dest.items():
            m = mins[dest]
            for key in keys:
                stream = self._streams.get(key)
                if stream:
                    head = stream[0][1]
                    if head < m:
                        m = head
            mins[dest] = m
        return mins

    def _eff_floors(self) -> List[float]:
        """``min(reported floor, min queued avail)`` per shard.

        A blocked shard (floor None) can only act on what it receives,
        so the traffic queued for it bounds everything it may emit.
        """
        queued = self._queued_min()
        eff = []
        for i, floor in enumerate(self._floors):
            f = math.inf if floor is None else floor
            eff.append(min(f, queued[i]))
        return eff

    def lbts_for(self, dest_shard: int) -> float:
        """Safe bound for ``dest_shard``: no future envelope can reach
        it below this timestamp."""
        eff = self._eff_floors()
        bound = math.inf
        row_to_dest = [self.lookahead[i][dest_shard]
                       for i in range(self.n_shards)]
        for i in range(self.n_shards):
            if i == dest_shard:
                continue
            b = eff[i] + row_to_dest[i]
            if b < bound:
                bound = b
        return bound

    # -- releases ------------------------------------------------------------
    def release(self, dest_shard: int) -> List[TransitItem]:
        """Pop every releasable envelope destined to ``dest_shard``.

        Releasable = ``avail_time <= lbts_for(dest_shard)`` and every
        earlier envelope of the same (src_rank, dest_rank) stream
        already released.  The result order is deterministic: streams
        in (src, dest) rank order, each stream's releasable prefix in
        enqueue order.
        """
        keys = self._by_dest.get(dest_shard)
        if not keys:
            return []
        bound = self.lbts_for(dest_shard)
        # Effective floor *before* popping: the queued minimum is about
        # to move, and the grant's self-influence term must bound the
        # clocks this release is about to wake, not the leftovers.
        eff_dest = self._eff_floors()[dest_shard]
        out: List[TransitItem] = []
        emptied = []
        for key in sorted(keys):
            stream = self._streams.get(key)
            if not stream:
                emptied.append(key)  # pragma: no cover - defensive
                continue
            while stream and stream[0][1] <= bound:
                seq, avail, payload = stream.popleft()
                out.append((seq, key[0], key[1], avail, payload))
                self._in_transit -= 1
            if not stream:
                # Prune drained streams so the sorted-keys scan and the
                # queued-min walk stay proportional to live traffic, not
                # to every rank pair that ever communicated; send()
                # re-registers the key on the next envelope.
                del self._streams[key]
                emptied.append(key)
        if emptied:
            dead = set(emptied)
            keys = [k for k in keys if k not in dead]
            if keys:
                self._by_dest[dest_shard] = keys
            else:
                del self._by_dest[dest_shard]
        if out:
            min_avail = min(item[3] for item in out)
            # The promise to the destination: future arrivals stay at or
            # above this.  The raw bound alone would overpromise — a
            # rank this release wakes can resume as low as eff_dest and
            # echo back through the cheapest neighbour round trip.
            grant = min(bound, eff_dest + self._roundtrip[dest_shard])
            if grant != math.inf:
                self.granted[dest_shard] = max(self.granted[dest_shard],
                                               grant)
            else:
                # No echo path back (single neighbourless shard) and
                # every other shard unboundedly quiescent: nothing can
                # undercut the items released.
                self.granted[dest_shard] = max(
                    self.granted[dest_shard],
                    max(item[3] for item in out))
            # A blocked destination wakes on what we just released: its
            # ranks resume with clocks at or above the waking envelope's
            # avail_time, so its floor may legitimately *drop* to the
            # smallest released timestamp (bypassing report()'s monotone
            # clamp, which only models clocks running forward).  This
            # keeps eff_floor monotone: the released items were part of
            # the destination's queued minimum a moment ago.
            prev = self._floors[dest_shard]
            floor = min_avail if prev is None else min(prev, min_avail)
            self._floors[dest_shard] = floor
        return out

    def drop_dest(self, dest_shard: int) -> int:
        """Discard everything queued for ``dest_shard`` (it exited: all
        its ranks completed, so the envelopes could only have rotted
        unconsumed in their mailboxes — exactly what the cooperative
        engine lets happen).  Dropping also stops the dead shard's queue
        from holding down every other destination's safe bound forever.
        Returns the number of envelopes discarded."""
        keys = self._by_dest.pop(dest_shard, [])
        dropped = 0
        for key in keys:
            stream = self._streams.pop(key, None)
            if stream:
                dropped += len(stream)
        self._in_transit -= dropped
        self._floors[dest_shard] = None
        return dropped

    def release_all(self) -> Dict[int, List[TransitItem]]:
        """Release for every destination; only non-empty entries returned."""
        result: Dict[int, List[TransitItem]] = {}
        for dest in range(self.n_shards):
            items = self.release(dest)
            if items:
                result[dest] = items
        return result
