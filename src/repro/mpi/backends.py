"""Pluggable execution backends behind one registry.

``Engine`` used to dispatch its launch paths through an inline
``if/elif`` over backend-name strings, with the spelling table, the
wall-watchdog arming, and the per-study ``--engine`` help text each
keeping a private copy of the backend vocabulary.  This module is the
single source of truth instead:

* :class:`ExecutionBackend` — the interface one backend implements:
  its canonical name and accepted spellings, capability flags
  (``supports_real_kill``, ``supports_shards``, ``deterministic``),
  an :meth:`~ExecutionBackend.available` environment probe, and the
  :meth:`~ExecutionBackend.launch` path that actually runs rank bodies.
  The base class owns the wall-clock watchdog: backends that need a
  Timer (``uses_wall_timer``) get it armed *and* cancelled here, in one
  ``try/finally``, so no launch path — normal exit, abort, or a raise
  mid-start — can leak a live Timer.
* :data:`BACKENDS` / :func:`register` — the registry.  ``harness.jobs``
  derives the ``--engine`` CLI validation and help text from it, and
  ``service.JobSpec`` validates submissions against it, so an unknown
  spelling produces the same error message everywhere.
* :func:`resolve_backend` — spelling -> canonical spec (previously in
  :mod:`repro.mpi.engine`; re-exported there for compatibility).
  Backends with ``takes_count`` accept a ``":N"`` suffix
  (``"sharded:8"``, ``"processes:2"``).

The four registered backends are ``cooperative`` (deterministic fiber
scheduler, the oracle), ``threads`` (thread-per-rank escape hatch),
``sharded[:N]`` (forked node-shards under an LBTS window, DESIGN.md
§10), and ``processes[:N]`` (real OS processes with real SIGKILL fault
delivery and recovery from shared stable storage, DESIGN.md §12 —
defined in :mod:`repro.mpi.processes`).
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "BACKENDS", "ExecutionBackend", "backend_for", "engine_choices",
    "engine_help", "register", "resolve_backend", "split_spec",
]


class ExecutionBackend:
    """One way of executing a job's rank bodies.

    Subclasses implement :meth:`_launch`; everything else — watchdog
    ownership, availability fallback, capability introspection — is
    shared.  Backends are stateless singletons: per-run state lives on
    the :class:`~repro.mpi.engine.Engine`.
    """

    #: canonical name (also the registry key)
    name: str = ""
    #: accepted ``engine=`` spellings besides the canonical name
    aliases: Tuple[str, ...] = ()
    #: accepts a ``":N"`` worker-count suffix (``"sharded:8"``)
    takes_count: bool = False
    #: one-line summary, folded into the shared ``--engine`` help text
    summary: str = ""

    # -- capability flags (satellite: studies consult these instead of
    # -- scattering ``if engine == ...`` checks) ----------------------------
    #: fault specs are delivered as actual SIGKILLs to OS processes;
    #: fault-injected jobs therefore need stable storage that survives
    #: the process (a disk-backed store)
    supports_real_kill: bool = False
    #: ranks are partitioned across forked workers (parallel across
    #: cores; cross-worker clocks synchronized by the LBTS window)
    supports_shards: bool = False
    #: completed runs are bit-reproducible against the cooperative
    #: oracle on the differential battery's kernels
    deterministic: bool = True
    #: arm a wall-clock Timer that wakes all mailboxes at the deadline
    #: (backends whose run loop cannot observe the deadline itself)
    uses_wall_timer: bool = False

    def available(self) -> Optional[str]:
        """``None`` if the backend can run here, else a reason string.

        ``Engine.run`` degrades an unavailable backend to the
        cooperative oracle with a :class:`RuntimeWarning` naming the
        reason, instead of failing the job.
        """
        return None

    def launch(self, engine, body: Callable[[int], None], timeout: float,
               errors: List[Tuple[int, str]], returns: List[Any]) -> None:
        """Run ``body(rank)`` for every rank, mutating state in place.

        Owns the wall watchdog: armed before and cancelled after
        :meth:`_launch` in one ``try/finally``, so neither an abort nor
        an exception mid-launch leaks a live Timer (the bug the old
        per-backend arming made possible).
        """
        watchdog: Optional[threading.Timer] = None
        if self.uses_wall_timer:
            # Blocking waits have no timeout; the watchdog wakes every
            # mailbox at the deadline so blocked ranks observe it
            # (check_deadline) and unwind with DeadlockError.
            watchdog = threading.Timer(timeout + 0.05,
                                       engine._on_wall_deadline)
            watchdog.daemon = True
            watchdog.start()
        try:
            self._launch(engine, body, timeout, errors, returns)
        finally:
            if watchdog is not None:
                watchdog.cancel()

    def _launch(self, engine, body: Callable[[int], None], timeout: float,
                errors: List[Tuple[int, str]], returns: List[Any]) -> None:
        raise NotImplementedError

    def worker_count(self, engine) -> int:
        """Requested worker-process count from a ``name:N`` spec.

        Bare specs default to the CPU count; the shard planner clamps
        to the simulated node count either way.
        """
        _base, _sep, count = engine.backend.partition(":")
        if count:
            return int(count)
        return os.cpu_count() or 1


#: canonical name -> backend singleton, in registration order
BACKENDS: Dict[str, ExecutionBackend] = {}
#: every accepted spelling -> canonical name
_ALIASES: Dict[str, str] = {}


def register(backend: ExecutionBackend) -> ExecutionBackend:
    """Add a backend to the registry (its class is also usable as a
    decorator target: ``register(MyBackend())``)."""
    if not backend.name:
        raise ValueError("backend needs a canonical name")
    BACKENDS[backend.name] = backend
    _ALIASES[backend.name] = backend.name
    for alias in backend.aliases:
        _ALIASES[alias] = backend.name
    return backend


def resolve_backend(name: Optional[str]) -> str:
    """Canonical backend spec: explicit arg > ``REPRO_ENGINE`` > default.

    Count-taking backends accept a worker-count suffix — ``"sharded:8"``
    runs (up to) 8 worker processes, ``"processes:2"`` packs the
    simulated nodes into 2 OS processes; bare spellings default to the
    machine's CPU count (always clamped to the simulated node count).
    """
    if name is None:
        name = os.environ.get("REPRO_ENGINE") or "cooperative"
    text = str(name).lower()
    base, sep, count = text.partition(":")
    backend = _ALIASES.get(base)
    if backend is None:
        raise ValueError(
            f"unknown engine backend {name!r}; "
            f"known: {sorted(set(_ALIASES))}")
    if sep:
        if not BACKENDS[backend].takes_count:
            raise ValueError(
                f"engine backend {base!r} takes no ':N' suffix ({name!r})")
        if not count.isdigit() or int(count) < 1:
            raise ValueError(f"bad worker count in engine spec {name!r}")
        return f"{backend}:{int(count)}"
    return backend


def split_spec(spec: Optional[str]) -> Tuple[str, Optional[int]]:
    """A resolved spec -> ``(canonical name, worker count or None)``."""
    base, _sep, count = resolve_backend(spec).partition(":")
    return base, (int(count) if count else None)


def backend_for(spec: Optional[str]) -> ExecutionBackend:
    """The registered backend a (possibly aliased) spec names."""
    return BACKENDS[split_spec(spec)[0]]


def engine_choices() -> List[str]:
    """Canonical backend names, registration order (CLI help/docs)."""
    return list(BACKENDS)


def engine_help(default: str = "the cooperative scheduler") -> str:
    """The shared ``--engine`` help text, derived from the registry."""
    parts = []
    for b in BACKENDS.values():
        spec = f"{b.name}[:N]" if b.takes_count else b.name
        parts.append(f"{spec} ({b.summary})" if b.summary else spec)
    return (f"execution backend: {', '.join(parts)} "
            f"(default: {default}, or REPRO_ENGINE)")


def warn_unavailable(backend: ExecutionBackend, reason: str) -> None:
    """The single degraded-mode message for an unavailable backend."""
    warnings.warn(
        f"engine backend {backend.name!r} is unavailable here ({reason}); "
        f"falling back to the cooperative scheduler — faults will be "
        f"simulated unwinds, not real kills",
        RuntimeWarning, stacklevel=3)


# ---------------------------------------------------------------------------
# The built-in backends
# ---------------------------------------------------------------------------

class CooperativeBackend(ExecutionBackend):
    """Deterministic rank fibers under one run loop (the oracle).

    No watchdog Timer: the run loop itself checks the wall deadline
    between scheduling steps and detects true deadlocks (all ranks
    blocked, no predicate true) instantly.
    """

    name = "cooperative"
    aliases = ("coop",)
    summary = "deterministic fiber scheduler, the oracle"

    def _launch(self, engine, body, timeout, errors, returns) -> None:
        engine._run_cooperative(body, errors)


class ThreadsBackend(ExecutionBackend):
    """Thread-per-rank escape hatch / differential oracle."""

    name = "threads"
    aliases = ("threaded", "thread")
    summary = "one OS thread per rank"
    deterministic = False
    uses_wall_timer = True

    def _launch(self, engine, body, timeout, errors, returns) -> None:
        old_stack = threading.stack_size()
        try:
            threading.stack_size(1 << 20)
        except (ValueError, RuntimeError):  # pragma: no cover - platform
            pass
        threads = [threading.Thread(target=body, args=(r,), daemon=True,
                                    name=f"rank-{r}")
                   for r in range(engine.nprocs)]
        try:
            # Stack size takes effect when a thread *starts*, so the old
            # value may only be restored after the start loop.
            for t in threads:
                t.start()
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass
        # Join against one shared absolute deadline (watchdog + margin):
        # per-thread timeouts would make a hung many-rank job wait
        # O(nprocs * timeout) instead of O(timeout).
        import time as _time
        join_deadline = _time.monotonic() + timeout + 30.0
        for t in threads:
            t.join(max(0.0, join_deadline - _time.monotonic()))

        if any(t.is_alive() for t in threads):  # pragma: no cover - watchdog
            engine.abort(None)
            for t in threads:
                t.join(5.0)
            errors.append((-1,
                           "engine watchdog: some ranks never terminated"))


class ShardedBackend(ExecutionBackend):
    """Forked node-shards under a conservative LBTS window (§10)."""

    name = "sharded"
    aliases = ("shard", "shards")
    summary = "N forked node-shards, LBTS-synchronized"
    takes_count = True
    supports_shards = True

    def available(self) -> Optional[str]:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return "os.fork is not available on this platform"
        return None

    def _launch(self, engine, body, timeout, errors, returns) -> None:
        from .sharded import run_sharded  # local import, no cycle
        run_sharded(engine, body, timeout, errors, returns,
                    n_shards=self.worker_count(engine))


register(CooperativeBackend())
register(ThreadsBackend())
register(ShardedBackend())

# The processes backend lives in its own module (it is a subsystem, not
# a dispatch arm); importing it registers it.  Import last so it can
# subclass ExecutionBackend and call register() at module load.
from . import processes as _processes  # noqa: E402,F401  (registers)
