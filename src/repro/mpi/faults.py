"""Fail-stop fault injection.

The paper's fault model (footnote 1) is fail-stop: a failing processor
simply stops; it never sends erroneous messages.  A :class:`FaultPlan`
schedules fail-stop faults on chosen ranks.  Five trigger kinds cover the
scenario space of the recovery campaign (``repro.harness.campaign``):

* ``after_ops`` — after the rank's N-th MPI operation;
* ``at_time`` — once the rank's virtual clock passes a time (delivered
  event-driven by the engine's :class:`VirtualTimeFaultScheduler`);
* ``probability`` — independently at each operation, with a seeded RNG so
  runs are repeatable;
* ``at_epoch`` — the instant the rank advances to checkpoint epoch N
  (``chkpt_StartCheckpoint`` has moved the epoch but nothing of the new
  line is committed yet): the kill-at-epoch-boundary scenario;
* ``in_collective`` — at the first internal message of the rank's N-th
  collective operation, after the collective has started and typically
  mid-exchange, so the surviving peers are left blocked inside the
  collective: the kill-mid-collective scenario.

The engine checks the plan on entry to every MPI operation and from the
poll hook of blocking waits; the protocol layer reports epoch advances and
the collective algorithms report their internal traffic.  A triggered
fault raises :class:`~repro.mpi.errors.ProcessFailure` inside the rank's
thread, the engine marks the job failed, and all surviving ranks unwind
with :class:`~repro.mpi.errors.JobAborted` — which is how the peers
"detect" the failure.  The restart harness then relaunches the job from
the last committed recovery line.

A plan may hold many specs (across ranks and kinds); specs that already
fired never fire again, so a restart loop over a multi-fault schedule
converges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import ProcessFailure

#: trigger fields of :class:`FaultSpec`, in priority order for
#: :meth:`FaultSpec.kind` — also the schema of the JSON schedule codec
TRIGGER_FIELDS = ("after_ops", "at_time", "probability", "at_epoch",
                  "in_collective", "in_drain", "at_commit",
                  "at_group_commit")


@dataclass
class FaultSpec:
    """One scheduled fail-stop fault."""

    rank: int
    #: fire when the rank has performed this many MPI operations
    after_ops: Optional[int] = None
    #: fire once the rank's virtual clock passes this time (seconds)
    at_time: Optional[float] = None
    #: fire independently at each operation with this probability
    probability: float = 0.0
    #: fire the moment the rank advances to this checkpoint epoch
    at_epoch: Optional[int] = None
    #: fire inside the rank's N-th collective operation (1-based)
    in_collective: Optional[int] = None
    #: fire while recovery line N is draining to the node disk (sections
    #: staged by the overlapped write-back pipeline, COMMIT not yet
    #: written): the kill-mid-drain scenario — the line must be rejected
    #: as torn at restore
    in_drain: Optional[int] = None
    #: fire the instant line N's staged bytes become durable, right
    #: before its COMMIT marker would be written: the kill-mid-commit
    #: scenario — the narrowest tear window of the commit pipeline
    at_commit: Optional[int] = None
    #: fire right after the rank's COMMIT record for line N has been
    #: staged into its node's WAL buffer, before the group-commit flush
    #: decision: the kill-mid-group-commit scenario — the record is torn
    #: out of the log tail, so replay must truncate and recovery fall
    #: back (WAL stores only; scatter stores never report this window)
    at_group_commit: Optional[int] = None
    reason: str = "injected fail-stop fault"

    #: identity-based fired flag (not a dataclass field: two equal specs
    #: in one plan fire independently, and equality stays trigger-only)
    _fired = False

    def __post_init__(self) -> None:
        if (self.after_ops is None and self.at_time is None
                and self.probability <= 0 and self.at_epoch is None
                and self.in_collective is None and self.in_drain is None
                and self.at_commit is None and self.at_group_commit is None):
            raise ValueError("FaultSpec needs after_ops, at_time, "
                             "probability, at_epoch, in_collective, "
                             "in_drain, at_commit, or at_group_commit")
        if self.in_collective is not None and self.in_collective < 1:
            raise ValueError("in_collective is a 1-based collective index")
        if self.in_drain is not None and self.in_drain < 1:
            raise ValueError("in_drain is a 1-based recovery-line version")
        if self.at_commit is not None and self.at_commit < 1:
            raise ValueError("at_commit is a 1-based recovery-line version")
        if self.at_group_commit is not None and self.at_group_commit < 1:
            raise ValueError(
                "at_group_commit is a 1-based recovery-line version")

    def describe(self) -> str:
        """Human-readable trigger summary for campaign reports."""
        parts = []
        if self.after_ops is not None:
            parts.append(f"after {self.after_ops} ops")
        if self.at_time is not None:
            parts.append(f"at t={self.at_time:.6g}s")
        if self.probability > 0:
            parts.append(f"p={self.probability:g}/op")
        if self.at_epoch is not None:
            parts.append(f"at epoch {self.at_epoch}")
        if self.in_collective is not None:
            parts.append(f"in collective #{self.in_collective}")
        if self.in_drain is not None:
            parts.append(f"in drain of line {self.in_drain}")
        if self.at_commit is not None:
            parts.append(f"at commit of line {self.at_commit}")
        if self.at_group_commit is not None:
            parts.append(f"at group commit of line {self.at_group_commit}")
        return f"rank {self.rank}: " + ", ".join(parts)

    def kind(self) -> str:
        """Name of the spec's primary trigger (its fault-window class)."""
        for name in TRIGGER_FIELDS:
            value = getattr(self, name)
            if name == "probability":
                if value > 0:
                    return name
            elif value is not None:
                return name
        raise ValueError("FaultSpec has no trigger")  # unreachable

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: only the rank and the set triggers.

        The codec round-trips exactly — ``FaultSpec.from_dict(s.to_dict())
        == s`` — so fuzz schedules and corpus repros can carry specs as
        plain JSON objects.
        """
        out: Dict[str, Any] = {"rank": self.rank}
        for name in TRIGGER_FIELDS:
            value = getattr(self, name)
            if name == "probability":
                if value > 0:
                    out[name] = value
            elif value is not None:
                out[name] = value
        if self.reason != "injected fail-stop fault":
            out["reason"] = self.reason
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys raise ``ValueError``."""
        allowed = {f.name for f in fields(cls)}
        bad = sorted(set(data) - allowed)
        if bad:
            raise ValueError(f"unknown FaultSpec fields: {bad}")
        return cls(**data)


class FaultPlan:
    """A set of fault specs plus the seeded RNG for probabilistic faults."""

    #: real-kill delivery hook (class default None = simulated faults).
    #: A backend with ``supports_real_kill`` sets this on its forked
    #: child's plan copy to a ``hook(spec, rank, now)`` that SIGKILLs
    #: the process at the fire site — no Python unwind happens at all.
    _kill_hook = None

    def __init__(self, specs: Optional[List[FaultSpec]] = None, seed: int = 0):
        self.specs: Dict[int, List[FaultSpec]] = {}
        for spec in specs or []:
            self.specs.setdefault(spec.rank, []).append(spec)
        self._rng = random.Random(seed)
        self.fired: List[FaultSpec] = []

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls([])

    @classmethod
    def staggered(cls, kills: Sequence[Tuple[int, float]],
                  reason: str = "staggered fail-stop") -> "FaultPlan":
        """Multi-fault schedule: ``(rank, at_time)`` kills in sequence.

        Each restart resets virtual clocks to zero, so later triggers are
        relative to the *restarted* run — a schedule of increasing times
        therefore kills once per execution until the times run out.
        """
        return cls([FaultSpec(rank=r, at_time=t, reason=reason)
                    for r, t in kills])

    def add(self, spec: FaultSpec) -> None:
        self.specs.setdefault(spec.rank, []).append(spec)

    def all_specs(self) -> Iterable[FaultSpec]:
        for specs in self.specs.values():
            yield from specs

    def unfired(self) -> List[FaultSpec]:
        return [s for s in self.all_specs() if not s._fired]

    def rearm(self) -> None:
        """Forget firing history: every spec becomes eligible again."""
        for spec in self.all_specs():
            spec._fired = False
        self.fired.clear()

    def mark_fired(self, spec: FaultSpec) -> bool:
        """Record that ``spec`` fired; False if it had already fired.

        Firing is tracked per spec *instance* (not by value), so a plan
        holding two identical specs fires each exactly once — e.g. two
        kills of the same rank at the same epoch hit the original run and
        the restarted run.
        """
        if spec._fired:
            return False
        spec._fired = True
        self.fired.append(spec)
        return True

    def _fire(self, spec: FaultSpec, rank: int, now: float) -> None:
        self.mark_fired(spec)
        self.deliver(spec, rank, now)

    def deliver(self, spec: FaultSpec, rank: int, now: float) -> None:
        """Deliver an already-marked fault on the victim's own thread.

        Simulated engines raise :class:`ProcessFailure` (the fail-stop
        unwind).  Under a real-kill backend the hook SIGKILLs the whole
        OS process at this exact point and never returns — the raise
        below is then only the mypy-visible fallback.
        """
        if self._kill_hook is not None:
            self._kill_hook(spec, rank, now)
        raise ProcessFailure(rank, now, spec.reason)

    def check(self, rank: int, op_count: int, now: float) -> None:
        """Raise :class:`ProcessFailure` if a per-operation spec fires."""
        for spec in self.specs.get(rank, ()):
            if spec._fired:
                continue
            hit = False
            if spec.after_ops is not None and op_count >= spec.after_ops:
                hit = True
            if spec.at_time is not None and now >= spec.at_time:
                hit = True
            if spec.probability > 0 and self._rng.random() < spec.probability:
                hit = True
            if hit:
                self._fire(spec, rank, now)

    def note_epoch(self, rank: int, epoch: int, now: float) -> None:
        """Epoch-boundary check point, called by ``chkpt_StartCheckpoint``
        (on the advancing rank's own thread) right after the epoch moves."""
        for spec in self.specs.get(rank, ()):
            if spec._fired or spec.at_epoch is None:
                continue
            if epoch >= spec.at_epoch:
                self._fire(spec, rank, now)

    def note_collective_op(self, rank: int, collective_index: int,
                           now: float) -> None:
        """Mid-collective check point, called by the collective algorithms
        at each internal message of the rank's ``collective_index``-th
        collective (1-based)."""
        for spec in self.specs.get(rank, ()):
            if spec._fired or spec.in_collective is None:
                continue
            if collective_index >= spec.in_collective:
                self._fire(spec, rank, now)

    def note_drain(self, rank: int, version: int, now: float) -> None:
        """Mid-drain check point, called by the C3 layer while recovery
        line ``version`` is staged but not yet durable on the node disk."""
        for spec in self.specs.get(rank, ()):
            if spec._fired or spec.in_drain is None:
                continue
            if version >= spec.in_drain:
                self._fire(spec, rank, now)

    def note_commit(self, rank: int, version: int, now: float) -> None:
        """Commit-instant check point, called by the C3 layer right before
        line ``version``'s COMMIT marker is written."""
        for spec in self.specs.get(rank, ()):
            if spec._fired or spec.at_commit is None:
                continue
            if version >= spec.at_commit:
                self._fire(spec, rank, now)

    def note_group_commit(self, rank: int, version: int, now: float) -> None:
        """Group-commit check point, called by the WAL store right after
        the rank's COMMIT record for line ``version`` is staged in the
        node's log buffer and before the batched-fsync decision."""
        for spec in self.specs.get(rank, ()):
            if spec._fired or spec.at_group_commit is None:
                continue
            if version >= spec.at_group_commit:
                self._fire(spec, rank, now)

    def __bool__(self) -> bool:
        return bool(self.specs)
