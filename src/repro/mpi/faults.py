"""Fail-stop fault injection.

The paper's fault model (footnote 1) is fail-stop: a failing processor
simply stops; it never sends erroneous messages.  A :class:`FaultPlan`
schedules fail-stop faults on chosen ranks, triggered either after the
rank's N-th MPI operation, at a virtual time, or with a per-operation
probability (seeded, so runs are repeatable).

The engine checks the plan on entry to every MPI operation and from the
poll hook of blocking waits; a triggered fault raises
:class:`~repro.mpi.errors.ProcessFailure` inside the rank's thread, the
engine marks the job failed, and all surviving ranks unwind with
:class:`~repro.mpi.errors.JobAborted` — which is how the peers "detect"
the failure.  The restart harness then relaunches the job from the last
committed recovery line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import ProcessFailure


@dataclass
class FaultSpec:
    """One scheduled fail-stop fault."""

    rank: int
    #: fire when the rank has performed this many MPI operations
    after_ops: Optional[int] = None
    #: fire once the rank's virtual clock passes this time (seconds)
    at_time: Optional[float] = None
    #: fire independently at each operation with this probability
    probability: float = 0.0
    reason: str = "injected fail-stop fault"

    def __post_init__(self) -> None:
        if self.after_ops is None and self.at_time is None and self.probability <= 0:
            raise ValueError("FaultSpec needs after_ops, at_time, or probability")


class FaultPlan:
    """A set of fault specs plus the seeded RNG for probabilistic faults."""

    def __init__(self, specs: Optional[List[FaultSpec]] = None, seed: int = 0):
        self.specs: Dict[int, List[FaultSpec]] = {}
        for spec in specs or []:
            self.specs.setdefault(spec.rank, []).append(spec)
        self._rng = random.Random(seed)
        self.fired: List[FaultSpec] = []

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls([])

    def add(self, spec: FaultSpec) -> None:
        self.specs.setdefault(spec.rank, []).append(spec)

    def check(self, rank: int, op_count: int, now: float) -> None:
        """Raise :class:`ProcessFailure` if a spec for this rank fires."""
        for spec in self.specs.get(rank, ()):
            if spec in self.fired:
                continue
            hit = False
            if spec.after_ops is not None and op_count >= spec.after_ops:
                hit = True
            if spec.at_time is not None and now >= spec.at_time:
                hit = True
            if spec.probability > 0 and self._rng.random() < spec.probability:
                hit = True
            if hit:
                self.fired.append(spec)
                raise ProcessFailure(rank, now, spec.reason)

    def __bool__(self) -> bool:
        return bool(self.specs)
