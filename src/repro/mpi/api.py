"""Rank-facing MPI facade.

Application code receives one :class:`MPI` object per rank; it plays the
role the ``mpi.h`` module plays for a C program: communicator handles,
named datatypes, reduction ops, wildcards, request-completion calls, a
wall-clock (virtual) timer, and the compute-charge hook applications use
to account modelled computation time.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from . import datatypes as _dt
from . import ops as _ops
from . import requests as _req
from .communicator import Communicator, Group, PROC_NULL, TAG_UB
from .engine import RankContext
from .matching import ANY_SOURCE, ANY_TAG
from .requests import Request
from .status import Status


class MPI:
    """Per-rank MPI world view."""

    # wildcards / sentinels
    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG
    PROC_NULL = PROC_NULL
    TAG_UB = TAG_UB

    # named datatypes
    BYTE = _dt.BYTE
    CHAR = _dt.CHAR
    SHORT = _dt.SHORT
    INT = _dt.INT
    LONG = _dt.LONG
    UNSIGNED = _dt.UNSIGNED
    UNSIGNED_LONG = _dt.UNSIGNED_LONG
    FLOAT = _dt.FLOAT
    DOUBLE = _dt.DOUBLE
    COMPLEX = _dt.COMPLEX
    DOUBLE_COMPLEX = _dt.DOUBLE_COMPLEX
    BOOL = _dt.BOOL

    # reduction ops
    SUM = _ops.SUM
    PROD = _ops.PROD
    MAX = _ops.MAX
    MIN = _ops.MIN
    LAND = _ops.LAND
    LOR = _ops.LOR
    LXOR = _ops.LXOR
    BAND = _ops.BAND
    BOR = _ops.BOR
    BXOR = _ops.BXOR
    MAXLOC = _ops.MAXLOC
    MINLOC = _ops.MINLOC

    def __init__(self, ctx: RankContext):
        self._ctx = ctx
        world_group = Group(range(ctx.engine.nprocs))
        self.COMM_WORLD = Communicator(
            ctx, world_group, ctx.engine.WORLD_CTX, ctx.engine.WORLD_SHADOW,
            name="MPI_COMM_WORLD",
        )
        self.COMM_SELF = Communicator(
            ctx, Group([ctx.rank]),
            *ctx.engine.context_for(("self", ctx.rank)), name="MPI_COMM_SELF",
        )

    # -- identity ------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.engine.nprocs

    def Get_processor_name(self) -> str:
        node = self._ctx.rank // max(1, self._ctx.machine.procs_per_node)
        return f"{self._ctx.machine.name}-node{node:04d}"

    # -- time ------------------------------------------------------------------
    def Wtime(self) -> float:
        """Virtual wall-clock seconds on this rank."""
        return self._ctx.clock.now

    def compute(self, seconds: float) -> None:
        """Charge ``seconds`` of modelled local computation."""
        self._ctx.clock.advance(seconds)

    def work(self, flops: float) -> None:
        """Charge modelled computation given a FLOP count."""
        self._ctx.clock.advance(flops / self._ctx.machine.flops_per_proc)

    # -- datatype constructors ---------------------------------------------------
    def Type_contiguous(self, count: int, base: _dt.Datatype) -> _dt.ContiguousType:
        return _dt.ContiguousType(count, base)

    def Type_vector(self, count: int, blocklength: int, stride: int,
                    base: _dt.Datatype) -> _dt.VectorType:
        return _dt.VectorType(count, blocklength, stride, base)

    def Type_indexed(self, blocklengths: Sequence[int], displacements: Sequence[int],
                     base: _dt.Datatype) -> _dt.IndexedType:
        return _dt.IndexedType(blocklengths, displacements, base)

    def Type_create_struct(self, blocklengths: Sequence[int],
                           displacements: Sequence[int],
                           types: Sequence[_dt.Datatype]) -> _dt.StructType:
        return _dt.StructType(blocklengths, displacements, types)

    def Op_create(self, fn, commute: bool = True, name: str = "user") -> _ops.Op:
        return _ops.Op.create(fn, commute=commute, name=name)

    # -- request completion --------------------------------------------------------
    def Wait(self, request: Request) -> Status:
        return request.wait()

    def Test(self, request: Request) -> Tuple[bool, Optional[Status]]:
        return request.test()

    def Waitall(self, requests: Sequence[Request]) -> List[Status]:
        return _req.wait_all(requests)

    def Waitany(self, requests: Sequence[Request]) -> Tuple[int, Status]:
        return _req.wait_any(requests)

    def Waitsome(self, requests: Sequence[Request]) -> Tuple[List[int], List[Status]]:
        return _req.wait_some(requests)

    def Testall(self, requests: Sequence[Request]):
        return _req.test_all(requests)

    def Testany(self, requests: Sequence[Request]):
        return _req.test_any(requests)

    # -- buffer attach (tracked for checkpointing of "basic MPI state") -------------
    def Buffer_attach(self, nbytes: int) -> None:
        self._ctx.scratch.setdefault("attached_buffers", []).append(int(nbytes))

    def Buffer_detach(self) -> int:
        bufs = self._ctx.scratch.get("attached_buffers", [])
        return bufs.pop() if bufs else 0

    @property
    def attached_buffers(self) -> List[int]:
        return list(self._ctx.scratch.get("attached_buffers", []))

    # -- abort ------------------------------------------------------------------------
    def Abort(self, errorcode: int = 1) -> None:
        from .errors import ProcessFailure
        raise ProcessFailure(self._ctx.rank, self._ctx.clock.now,
                             f"MPI_Abort({errorcode})")
