"""Job engine: runs one simulated MPI job.

The engine owns the mailboxes, the virtual-time machine model, the fault
plan, and the communicator context-id registry.  ``Engine.run(main)``
executes ``main(mpi)`` on every rank, where ``mpi`` is the rank's
:class:`~repro.mpi.api.MPI` facade, and collects per-rank return values,
final virtual clocks, and traffic statistics into a :class:`JobResult`.

Paper mapping: the engine plays the role of the MPI job launcher plus
the machine under test in Section 6 — it provides the fail-stop fault
model of footnote 1 (a killed rank simply stops; peers observe the
failure and unwind), the per-process clocks whose maximum is the
runtimes reported in Tables 2-7, and the process counts of the
evaluation (the cooperative backend runs the paper's true 32-1024-rank
configurations; see :mod:`repro.harness.platforms`).

Execution backends share all of the above.  ``engine=`` selects one by
name from the pluggable registry in :mod:`repro.mpi.backends` (the
``REPRO_ENGINE`` environment variable overrides the default); the
engine itself no longer knows the launch paths — each backend class
owns its own:

* ``"cooperative"`` (default) — rank mains run as fibers under the
  deterministic cooperative scheduler (:mod:`repro.mpi.scheduler`):
  exactly one rank executes at a time, blocking MPI operations yield to
  a single run loop, wakeups are exact, deadlock is detected the moment
  every live rank blocks, and runs are bit-reproducible.  This backend
  scales to the paper's process counts (256+ ranks).
* ``"sharded"`` / ``"sharded:N"`` — the simulated nodes are partitioned
  across N forked worker processes, each running a cooperative
  scheduler over its own ranks; virtual time is synchronized with a
  conservative lookahead window over the machine's link latencies
  (:mod:`repro.mpi.sharded`, DESIGN.md §10).  Scales past 4096 ranks
  and parallelizes across cores while reproducing the cooperative
  backend's :class:`JobResult` bitwise on point-to-point kernels (the
  differential battery in ``tests/mpi/test_sharded.py`` pins the exact
  cross-engine contract).
* ``"processes"`` / ``"processes:N"`` — each simulated node is a real
  forked OS process and fault specs are delivered as actual SIGKILLs
  to the victim's node process; recovery restarts from shared stable
  storage that survived the crash (:mod:`repro.mpi.processes`,
  DESIGN.md §12).  The coordinator reuses the sharded framed-message
  protocol; kill evidence (waitpid-confirmed termination signals)
  lands in :attr:`JobResult.real_kills`.
* ``"threads"`` — the original thread-per-rank model: free-running OS
  threads, condition-variable mailboxes, 1 MiB stacks, and a wall-clock
  watchdog as the only deadlock detector.  Kept as an escape hatch and
  as a differential-testing oracle for the scheduler (the equivalence
  suite checks both backends produce identical :class:`JobResult`
  timings on deterministic kernels).

Failure semantics: a triggered :class:`ProcessFailure` kills its rank,
sets the job-wide abort flag, and every other rank unwinds with
:class:`JobAborted` at its next MPI operation — call entry, blocking-wait
wakeup, or non-blocking poll hook — fail-stop detection.  Any other
exception in application code also aborts the job the same way but is
recorded (and re-raised by :meth:`JobResult.raise_errors`) so test
failures surface instead of hanging.

Blocking waits carry no timeout: they are woken precisely by deliveries
and aborts, ``at_time`` faults are signalled by the
:class:`VirtualTimeFaultScheduler` the moment any rank's virtual clock
crosses the threshold, and a per-run wall-clock watchdog timer wakes all
mailboxes at the deadline so deadlocked jobs still unwind with
:class:`DeadlockError`.  See DESIGN.md section 2.
"""

from __future__ import annotations

import heapq
import math
import os
import threading
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .backends import BACKENDS, backend_for, resolve_backend, \
    warn_unavailable  # noqa: F401  (resolve_backend re-exported here)
from .errors import DeadlockError, JobAborted, ProcessFailure
from .faults import FaultPlan, FaultSpec
from .matching import Mailbox
from .message import Envelope
from .scheduler import CooperativeScheduler
from .timemodel import MachineModel, RankClock, TESTING


class VirtualTimeFaultScheduler:
    """Engine-level scheduler for virtual-time (``at_time``) fault specs.

    The old engine discovered due ``at_time`` faults by re-running
    ``fault_plan.check`` on every 50 ms timeout wakeup of a blocking wait.
    This scheduler makes them event-driven: every rank clock watches the
    earliest scheduled fault time, and when *any* rank's clock crosses it,
    the due spec is marked on its victim rank and the victim's mailbox is
    notified — so a blocked victim unwinds promptly instead of the fault
    being discovered by timeout.

    ``next_time`` is read locklessly on the clock-advance hot path; the
    heap itself is only mutated under the lock.
    """

    def __init__(self, engine: "Engine", specs: List[FaultSpec]):
        self._engine = engine
        self._lock = threading.Lock()
        self._heap: List[Tuple[float, int, FaultSpec]] = [
            (spec.at_time, i, spec) for i, spec in enumerate(specs)
        ]
        heapq.heapify(self._heap)
        self.next_time: float = self._heap[0][0] if self._heap else math.inf

    def clock_crossed(self, now: float) -> None:
        """A rank clock reached ``now``: mark every spec due by then."""
        due: List[FaultSpec] = []
        with self._lock:
            while self._heap and self._heap[0][0] <= now:
                due.append(heapq.heappop(self._heap)[2])
            self.next_time = self._heap[0][0] if self._heap else math.inf
        for spec in due:
            contexts = self._engine.rank_contexts
            if 0 <= spec.rank < len(contexts):
                contexts[spec.rank].set_due_fault(spec)


class RankContext:
    """Everything the runtime knows about one rank."""

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.machine = engine.machine
        self.clock = RankClock()
        self.mailbox = engine.mailboxes[rank]
        self.op_count = 0
        self.sent_count = 0
        self.sent_bytes = 0
        #: collective operations begun by this rank (1-based after the
        #: first begin_collective; drives ``in_collective`` fault specs)
        self.collective_count = 0
        #: scratch space for runtime-internal per-rank state (collective tag
        #: sequence numbers, attached buffers, ...)
        self.scratch: Dict[Any, Any] = {}
        #: failed non-blocking completion checks since the last nb yield
        self._nb_misses = 0
        self._send_seq: Dict[Tuple[int, int], int] = {}
        #: set by the virtual-time fault scheduler (possibly from another
        #: rank's thread); consumed by this rank at its next check point
        self._due_fault: Optional[FaultSpec] = None

    # -- hooks charged on every MPI call ------------------------------------
    def enter_mpi_call(self) -> None:
        """Account one MPI operation: overhead charge + fault check + abort check."""
        if self.engine.abort_event.is_set():
            # Any abort unwinds at call entry — fail-stop faults and
            # error-triggered aborts alike (wait_for already unwinds on
            # both; entry must agree or error aborts leak past it).
            raise JobAborted()
        self.op_count += 1
        self.clock.advance(self.machine.call_overhead)
        self.raise_due_fault()
        self.engine.fault_plan.check(self.rank, self.op_count, self.clock.now)

    def poll_hook(self) -> None:
        """Abort/fault/watchdog observation point.

        Runs on every wakeup of a blocking wait and on every intercepted
        C3 call.  Checking the abort flag here is what unwinds ranks stuck
        in non-blocking poll loops (Test/Iprobe spinning): those paths
        never reach :meth:`enter_mpi_call`, and before this check a rank
        whose peer died mid-exchange would spin until the wall watchdog.
        Inside :meth:`Mailbox.wait_for` the predicate is evaluated before
        this hook, so an operation whose match already arrived still
        completes.
        """
        if self.engine.abort_event.is_set():
            raise JobAborted()
        self.engine.check_deadline()
        self.raise_due_fault()

    #: consecutive non-blocking misses between cooperative yields.  The
    #: C3 control plane probes (``has_pending``/``Iprobe``) on every
    #: intercepted call, so yielding on *every* miss would cost a fiber
    #: switch per protocol operation; amortizing keeps the hot path at
    #: one integer increment while bounding any spin loop to
    #: ``NB_YIELD_EVERY`` cheap probes per scheduling turn.
    NB_YIELD_EVERY = 16

    def nb_poll(self) -> None:
        """Fairness + observation point for failed non-blocking checks.

        Called when a ``Test``/``Iprobe``/``has_pending``-style
        completion check misses.  Under the cooperative scheduler a spin
        loop would otherwise monopolize the single runner and livelock
        the job, so every ``NB_YIELD_EVERY``-th miss observes
        aborts/faults/deadline (like :meth:`poll_hook`) and then yields
        the loop one scheduling turn.  Under the threaded backend misses
        stay poll-free, exactly as before.
        """
        sched = self.engine.scheduler
        if sched is None:
            return
        self._nb_misses += 1
        if self._nb_misses % self.NB_YIELD_EVERY:
            return
        self.poll_hook()
        sched.yield_now()

    # -- protocol/collective fault check points -------------------------------
    def begin_collective(self) -> None:
        """Count one collective operation started by this rank."""
        self.collective_count += 1

    def collective_fault_point(self) -> None:
        """Mid-collective check point (internal traffic of a collective).

        Called by the collective algorithms for each internal message, so
        an ``in_collective`` fault spec kills its victim after the
        collective has started — with peers already committed to the
        exchange — rather than at a clean operation boundary.
        """
        self.engine.fault_plan.note_collective_op(
            self.rank, self.collective_count, self.clock.now)

    def note_epoch(self, epoch: int) -> None:
        """Epoch-boundary check point (``at_epoch`` fault specs).

        Called by the C3 layer on this rank's own thread immediately after
        ``chkpt_StartCheckpoint`` advances the epoch.
        """
        self.engine.fault_plan.note_epoch(self.rank, epoch, self.clock.now)

    def drain_fault_point(self, version: int) -> None:
        """Mid-drain check point (``in_drain`` fault specs).

        Called by the C3 layer whenever this rank observes that recovery
        line ``version`` is still draining to the node disk — sections
        staged, COMMIT marker not yet written.  A kill here leaves a torn
        line that restore must reject.
        """
        self.engine.fault_plan.note_drain(self.rank, version, self.clock.now)

    def commit_fault_point(self, version: int) -> None:
        """Commit-instant check point (``at_commit`` fault specs).

        Called by the C3 layer the moment line ``version``'s staged bytes
        are durable, immediately *before* the COMMIT marker is written —
        the narrowest tear window of the pipeline.
        """
        self.engine.fault_plan.note_commit(self.rank, version, self.clock.now)

    def group_commit_fault_point(self, version: int) -> None:
        """Group-commit check point (``at_group_commit`` fault specs).

        Called by the WAL checkpoint store right after this rank's COMMIT
        record for line ``version`` is staged in the node's log buffer,
        before the batched-fsync decision — a kill here tears the record
        out of the log tail, the window WAL replay must truncate.
        """
        self.engine.fault_plan.note_group_commit(self.rank, version,
                                                 self.clock.now)

    # -- virtual-time fault delivery -----------------------------------------
    @property
    def has_due_fault(self) -> bool:
        """A scheduled fault awaits delivery on this rank (scheduler wakeups)."""
        return self._due_fault is not None

    def set_due_fault(self, spec: FaultSpec) -> None:
        """Mark a scheduled fault due and wake this rank if it is blocked."""
        self._due_fault = spec
        self.mailbox.notify()

    def raise_due_fault(self) -> None:
        """Deliver the pending scheduled fault, if any (on this rank's
        thread).  Delivery goes through :meth:`FaultPlan.deliver` so a
        real-kill backend's hook can turn it into an actual SIGKILL."""
        spec = self._due_fault
        if spec is None:
            return
        self._due_fault = None
        if not self.engine.fault_plan.mark_fired(spec):
            return
        self.engine.fault_plan.deliver(spec, self.rank, self.clock.now)

    # -- envelope transmission ----------------------------------------------
    def post_envelope(self, env: Envelope) -> None:
        """Timestamp, sequence, and deliver an envelope to its destination."""
        extra = 0.0
        if env.piggyback is not None:
            pb_bytes = getattr(env.piggyback, "nbytes",
                               self.machine.piggyback_bytes)
            extra = (pb_bytes / self.machine.bandwidth
                     + self.machine.piggyback_overhead)
        env.send_time = self.clock.now
        env.avail_time = (self.clock.now
                          + self.machine.transfer_time(env.nbytes) + extra)
        key = (env.dest, env.context_id)
        env.seq = self._send_seq.get(key, 0)
        self._send_seq[key] = env.seq + 1
        self.sent_count += 1
        self.sent_bytes += env.nbytes
        self.engine.mailboxes[env.dest].deliver(env)


@dataclass
class JobResult:
    """Outcome of one engine run."""

    nprocs: int
    returns: List[Any]
    clocks: List[float]
    failure: Optional[ProcessFailure]
    errors: List[Tuple[int, str]] = field(default_factory=list)
    sent_counts: List[int] = field(default_factory=list)
    sent_bytes: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: real-kill evidence from backends with ``supports_real_kill``:
    #: one record per SIGKILLed node process, with the waitpid-confirmed
    #: termination signal (``{"rank", "pid", "termsig", "sigkill", ...}``)
    real_kills: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def aborted(self) -> bool:
        return self.failure is not None or bool(self.errors)

    @property
    def virtual_time(self) -> float:
        """Job makespan in virtual seconds (max over ranks)."""
        return max(self.clocks) if self.clocks else 0.0

    def raise_errors(self) -> None:
        """Re-raise the first non-fault application error, if any."""
        if self.errors:
            rank, tb = self.errors[0]
            raise RuntimeError(f"rank {rank} raised:\n{tb}")


class Engine:
    """One simulated MPI job."""

    #: world communicator context ids
    WORLD_CTX = 0
    WORLD_SHADOW = 1

    def __init__(self, nprocs: int, machine: MachineModel = TESTING,
                 fault_plan: Optional[FaultPlan] = None, seed: int = 0,
                 wall_timeout: float = 300.0, engine: Optional[str] = None):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine
        self.seed = seed
        self.backend = resolve_backend(engine)
        #: virtual-time node-local disk shared by co-located ranks; the
        #: C3 layer's overlapped write-back pipeline drains staged
        #: checkpoint bytes through it (fresh per execution, like clocks)
        from ..storage.drain import DrainDevice  # local import, no cycle
        self.disk = DrainDevice(machine, nprocs)
        self.fault_plan = fault_plan or FaultPlan.none()
        self.abort_event = threading.Event()
        self.failure: Optional[ProcessFailure] = None
        self.mailboxes = [Mailbox(r, self.abort_event) for r in range(nprocs)]
        self._ctx_lock = threading.Lock()
        self._ctx_registry: Dict[Any, Tuple[int, int]] = {}
        self._next_cid = 4
        self._wall_timeout = wall_timeout
        self._deadline = 0.0
        self.rank_contexts: List[RankContext] = []
        self.fault_scheduler: Optional[VirtualTimeFaultScheduler] = None
        #: the cooperative scheduler while a cooperative run is live
        self.scheduler: Optional[CooperativeScheduler] = None
        #: real-kill evidence appended by real-kill backends (parent side)
        self.real_kills: List[Dict[str, Any]] = []
        #: the current run's ``args`` tuple; shard workers substitute
        #: recording store wrappers here, so rank bodies must read the
        #: job arguments through the engine rather than a closure
        self._job_args: Tuple = ()

    def shard_count(self) -> int:
        """Requested worker-process count for the sharded backend.

        ``"sharded:N"`` pins it; bare ``"sharded"`` uses the CPU count.
        :func:`repro.mpi.sharded.plan_shards` clamps to the simulated
        node count, so oversubscription is impossible either way.
        """
        _base, _sep, count = self.backend.partition(":")
        if count:
            return int(count)
        return os.cpu_count() or 1

    # -- communicator context ids ------------------------------------------
    def context_for(self, key, force: Optional[Tuple[int, int]] = None
                    ) -> Tuple[int, int]:
        """Deterministic (context, shadow) pair for a creation key.

        All members of a collective creation call compute the same key, so
        they all receive the same ids without extra synchronization.

        ``force`` binds the key to explicit ids instead of the next free
        pair.  The checkpoint-restore path uses it to replay communicator
        creations with the ids of the original run: within one run the
        first-come key order makes ids consistent across ranks but *not*
        across runs, and the protocol's message registries persist raw
        context ids — a restored communicator must therefore get exactly
        the ids it had when the registries were written (DESIGN.md §3).
        ``_next_cid`` is bumped past forced ids so later creations never
        collide with restored ones.
        """
        with self._ctx_lock:
            if key not in self._ctx_registry:
                if force is not None:
                    self._ctx_registry[key] = force
                    self._next_cid = max(self._next_cid, force[1] + 1)
                else:
                    self._ctx_registry[key] = (self._next_cid,
                                               self._next_cid + 1)
                    self._next_cid += 2
            return self._ctx_registry[key]

    # -- virtual-time fault scheduling ---------------------------------------
    def _arm_fault_scheduler(self) -> None:
        """Attach a scheduler for unfired ``at_time`` specs to every clock."""
        time_specs = [
            spec
            for spec in self.fault_plan.unfired()
            if spec.at_time is not None
        ]
        if not time_specs:
            self.fault_scheduler = None
            return
        self.fault_scheduler = VirtualTimeFaultScheduler(self, time_specs)
        for ctx in self.rank_contexts:
            ctx.clock.watch(self.fault_scheduler)

    # -- watchdog -------------------------------------------------------------
    def _on_wall_deadline(self) -> None:
        """Timer callback: wake all blocked ranks so they see the deadline."""
        for mb in self.mailboxes:
            mb.notify()

    def check_deadline(self) -> None:
        if self._deadline and _time.monotonic() > self._deadline:
            if not self.abort_event.is_set():
                self.abort(None)
            raise DeadlockError(
                f"job exceeded wall timeout of {self._wall_timeout}s "
                "(likely deadlock)"
            )

    def abort(self, failure: Optional[ProcessFailure]) -> None:
        """Mark the job failed and wake every blocked rank."""
        if failure is not None and self.failure is None:
            self.failure = failure
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.notify()

    # -- run --------------------------------------------------------------------
    def run(self, main: Callable, args: Tuple = (), wall_timeout: Optional[float] = None) -> JobResult:
        """Execute ``main(mpi, *args)`` on every rank and gather the results."""
        from .api import MPI  # local import to avoid a cycle

        timeout = wall_timeout if wall_timeout is not None else self._wall_timeout
        self._deadline = _time.monotonic() + timeout
        self._job_args = tuple(args)
        self.rank_contexts = [RankContext(self, r) for r in range(self.nprocs)]
        self.real_kills = []
        self._arm_fault_scheduler()
        returns: List[Any] = [None] * self.nprocs
        errors: List[Tuple[int, str]] = []
        errors_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = self.rank_contexts[rank]
            mpi = MPI(ctx)
            try:
                # read through the engine: shard workers swap recording
                # store wrappers into _job_args after forking
                returns[rank] = main(mpi, *self._job_args)
            except ProcessFailure as pf:
                self.abort(pf)
            except JobAborted:
                pass
            except DeadlockError as exc:
                with errors_lock:
                    if not any(r == rank for r, _ in errors):
                        errors.append((rank, str(exc)))
                self.abort(None)
            except BaseException:
                with errors_lock:
                    errors.append((rank, traceback.format_exc()))
                self.abort(None)

        impl = backend_for(self.backend)
        reason = impl.available()
        if reason is not None:
            # A registered-but-unavailable backend degrades to the
            # cooperative oracle with a clear message, instead of
            # failing the job on environment grounds.
            warn_unavailable(impl, reason)
            impl = BACKENDS["cooperative"]
            self.backend = impl.name

        t0 = _time.monotonic()
        impl.launch(self, worker, timeout, errors, returns)
        wall = _time.monotonic() - t0

        return JobResult(
            nprocs=self.nprocs,
            returns=returns,
            clocks=[c.clock.now for c in self.rank_contexts],
            failure=self.failure,
            errors=errors,
            sent_counts=[c.sent_count for c in self.rank_contexts],
            sent_bytes=[c.sent_bytes for c in self.rank_contexts],
            wall_seconds=wall,
            real_kills=list(self.real_kills),
        )

    def _run_cooperative(self, worker: Callable[[int], None],
                         errors: List[Tuple[int, str]]) -> None:
        """Run every rank as a fiber under the deterministic scheduler.

        No watchdog timer is needed: the run loop itself checks the wall
        deadline between scheduling steps and detects true deadlocks
        (all ranks blocked, no predicate true) instantly.
        """
        self.scheduler = CooperativeScheduler(self)
        for mb in self.mailboxes:
            mb.bind_scheduler(self.scheduler)
        self.scheduler.run(worker, deadline=self._deadline, errors=errors)


def run_job(nprocs: int, main: Callable, args: Tuple = (),
            machine: MachineModel = TESTING,
            fault_plan: Optional[FaultPlan] = None, seed: int = 0,
            wall_timeout: float = 300.0,
            engine: Optional[str] = None) -> JobResult:
    """Convenience wrapper: build an :class:`Engine` and run one job.

    ``engine`` selects the execution backend by registry name
    (:mod:`repro.mpi.backends`): ``"cooperative"`` (the default —
    deterministic rank fibers, scales to paper process counts),
    ``"sharded[:N]"``, ``"processes[:N]"``, or ``"threads"``.  ``None``
    defers to the ``REPRO_ENGINE`` environment variable, then the
    default.
    """
    eng = Engine(nprocs, machine=machine, fault_plan=fault_plan, seed=seed,
                 wall_timeout=wall_timeout, engine=engine)
    return eng.run(main, args=args)
