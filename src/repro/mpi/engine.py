"""Job engine: runs one simulated MPI job, one thread per rank.

The engine owns the mailboxes, the virtual-time machine model, the fault
plan, and the communicator context-id registry.  ``Engine.run(main)``
spawns ``nprocs`` threads; each executes ``main(mpi)`` where ``mpi`` is the
rank's :class:`~repro.mpi.api.MPI` facade.  The engine collects per-rank
return values, final virtual clocks, and traffic statistics into a
:class:`JobResult`.

Failure semantics: a triggered :class:`ProcessFailure` kills its rank,
sets the job-wide abort flag, and every other rank unwinds with
:class:`JobAborted` at its next blocking point — fail-stop detection.
Any other exception in application code also aborts the job but is
recorded (and re-raised by :meth:`JobResult.raise_errors`) so test
failures surface instead of hanging.
"""

from __future__ import annotations

import threading
import time as _time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import DeadlockError, JobAborted, ProcessFailure
from .faults import FaultPlan
from .matching import Mailbox
from .message import Envelope
from .timemodel import MachineModel, RankClock, TESTING


class RankContext:
    """Everything the runtime knows about one rank."""

    def __init__(self, engine: "Engine", rank: int):
        self.engine = engine
        self.rank = rank
        self.machine = engine.machine
        self.clock = RankClock()
        self.mailbox = engine.mailboxes[rank]
        self.op_count = 0
        self.sent_count = 0
        self.sent_bytes = 0
        #: scratch space for runtime-internal per-rank state (collective tag
        #: sequence numbers, attached buffers, ...)
        self.scratch: Dict[Any, Any] = {}
        self._send_seq: Dict[Tuple[int, int], int] = {}

    # -- hooks charged on every MPI call ------------------------------------
    def enter_mpi_call(self) -> None:
        """Account one MPI operation: overhead charge + fault check + abort check."""
        if self.engine.abort_event.is_set() and self.engine.failure is not None:
            raise JobAborted()
        self.op_count += 1
        self.clock.advance(self.machine.call_overhead)
        self.engine.fault_plan.check(self.rank, self.op_count, self.clock.now)

    def poll_hook(self) -> None:
        """Runs on every wakeup of a blocking wait (fault + watchdog checks)."""
        self.engine.check_deadline()
        self.engine.fault_plan.check(self.rank, self.op_count, self.clock.now)

    # -- envelope transmission ----------------------------------------------
    def post_envelope(self, env: Envelope) -> None:
        """Timestamp, sequence, and deliver an envelope to its destination."""
        extra = 0.0
        if env.piggyback is not None:
            pb_bytes = getattr(env.piggyback, "nbytes",
                               self.machine.piggyback_bytes)
            extra = (pb_bytes / self.machine.bandwidth
                     + self.machine.piggyback_overhead)
        env.send_time = self.clock.now
        env.avail_time = (self.clock.now
                          + self.machine.transfer_time(env.nbytes) + extra)
        key = (env.dest, env.context_id)
        env.seq = self._send_seq.get(key, 0)
        self._send_seq[key] = env.seq + 1
        self.sent_count += 1
        self.sent_bytes += env.nbytes
        self.engine.mailboxes[env.dest].deliver(env)


@dataclass
class JobResult:
    """Outcome of one engine run."""

    nprocs: int
    returns: List[Any]
    clocks: List[float]
    failure: Optional[ProcessFailure]
    errors: List[Tuple[int, str]] = field(default_factory=list)
    sent_counts: List[int] = field(default_factory=list)
    sent_bytes: List[int] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def aborted(self) -> bool:
        return self.failure is not None or bool(self.errors)

    @property
    def virtual_time(self) -> float:
        """Job makespan in virtual seconds (max over ranks)."""
        return max(self.clocks) if self.clocks else 0.0

    def raise_errors(self) -> None:
        """Re-raise the first non-fault application error, if any."""
        if self.errors:
            rank, tb = self.errors[0]
            raise RuntimeError(f"rank {rank} raised:\n{tb}")


class Engine:
    """One simulated MPI job."""

    #: world communicator context ids
    WORLD_CTX = 0
    WORLD_SHADOW = 1

    def __init__(self, nprocs: int, machine: MachineModel = TESTING,
                 fault_plan: Optional[FaultPlan] = None, seed: int = 0,
                 wall_timeout: float = 300.0):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        self.machine = machine
        self.seed = seed
        self.fault_plan = fault_plan or FaultPlan.none()
        self.abort_event = threading.Event()
        self.failure: Optional[ProcessFailure] = None
        self.mailboxes = [Mailbox(r, self.abort_event) for r in range(nprocs)]
        self._ctx_lock = threading.Lock()
        self._ctx_registry: Dict[Any, Tuple[int, int]] = {}
        self._next_cid = 4
        self._wall_timeout = wall_timeout
        self._deadline = 0.0
        self.rank_contexts: List[RankContext] = []

    # -- communicator context ids ------------------------------------------
    def context_for(self, key) -> Tuple[int, int]:
        """Deterministic (context, shadow) pair for a creation key.

        All members of a collective creation call compute the same key, so
        they all receive the same ids without extra synchronization.
        """
        with self._ctx_lock:
            if key not in self._ctx_registry:
                self._ctx_registry[key] = (self._next_cid, self._next_cid + 1)
                self._next_cid += 2
            return self._ctx_registry[key]

    # -- watchdog -------------------------------------------------------------
    def check_deadline(self) -> None:
        if self._deadline and _time.monotonic() > self._deadline:
            if not self.abort_event.is_set():
                self.abort(None)
            raise DeadlockError(
                f"job exceeded wall timeout of {self._wall_timeout}s "
                "(likely deadlock)"
            )

    def abort(self, failure: Optional[ProcessFailure]) -> None:
        """Mark the job failed and wake every blocked rank."""
        if failure is not None and self.failure is None:
            self.failure = failure
        self.abort_event.set()
        for mb in self.mailboxes:
            mb.notify()

    # -- run --------------------------------------------------------------------
    def run(self, main: Callable, args: Tuple = (), wall_timeout: Optional[float] = None) -> JobResult:
        """Execute ``main(mpi, *args)`` on every rank and gather the results."""
        from .api import MPI  # local import to avoid a cycle

        timeout = wall_timeout if wall_timeout is not None else self._wall_timeout
        self._deadline = _time.monotonic() + timeout
        self.rank_contexts = [RankContext(self, r) for r in range(self.nprocs)]
        returns: List[Any] = [None] * self.nprocs
        errors: List[Tuple[int, str]] = []
        errors_lock = threading.Lock()

        def worker(rank: int) -> None:
            ctx = self.rank_contexts[rank]
            mpi = MPI(ctx)
            try:
                returns[rank] = main(mpi, *args)
            except ProcessFailure as pf:
                self.abort(pf)
            except JobAborted:
                pass
            except DeadlockError as exc:
                with errors_lock:
                    if not any(r == rank for r, _ in errors):
                        errors.append((rank, str(exc)))
                self.abort(None)
            except BaseException:
                with errors_lock:
                    errors.append((rank, traceback.format_exc()))
                self.abort(None)

        old_stack = threading.stack_size()
        try:
            threading.stack_size(1 << 20)
        except (ValueError, RuntimeError):  # pragma: no cover - platform quirk
            pass
        t0 = _time.monotonic()
        threads = [threading.Thread(target=worker, args=(r,), daemon=True,
                                    name=f"rank-{r}")
                   for r in range(self.nprocs)]
        try:
            threading.stack_size(old_stack)
        except (ValueError, RuntimeError):  # pragma: no cover
            pass
        for t in threads:
            t.start()
        for t in threads:
            # Join with a margin beyond the deadlock watchdog.
            t.join(timeout + 30.0)
        wall = _time.monotonic() - t0

        if any(t.is_alive() for t in threads):  # pragma: no cover - watchdog
            self.abort(None)
            for t in threads:
                t.join(5.0)
            errors.append((-1, "engine watchdog: some ranks never terminated"))

        return JobResult(
            nprocs=self.nprocs,
            returns=returns,
            clocks=[c.clock.now for c in self.rank_contexts],
            failure=self.failure,
            errors=errors,
            sent_counts=[c.sent_count for c in self.rank_contexts],
            sent_bytes=[c.sent_bytes for c in self.rank_contexts],
            wall_seconds=wall,
        )


def run_job(nprocs: int, main: Callable, args: Tuple = (),
            machine: MachineModel = TESTING,
            fault_plan: Optional[FaultPlan] = None, seed: int = 0,
            wall_timeout: float = 300.0) -> JobResult:
    """Convenience wrapper: build an :class:`Engine` and run one job."""
    engine = Engine(nprocs, machine=machine, fault_plan=fault_plan, seed=seed,
                    wall_timeout=wall_timeout)
    return engine.run(main, args=args)
