"""Exception hierarchy for the simulated MPI runtime.

The simulator distinguishes three families of errors:

* :class:`MPIError` and subclasses — misuse of the MPI-like API by the
  application (bad rank, truncation, freed handles, ...).  These mirror the
  error classes a real MPI library would raise.
* :class:`ProcessFailure` — an injected fail-stop fault.  It is raised
  *inside* the failing rank's thread and is never visible to the
  application code of other ranks.
* :class:`JobAborted` — raised in surviving ranks when the job has been
  torn down because some rank failed (fail-stop detection).  The restart
  harness catches this at the job level.
"""

from __future__ import annotations


class MPIError(Exception):
    """Base class for errors raised by the simulated MPI runtime."""


class InvalidRankError(MPIError):
    """A rank argument is outside the communicator's size."""


class InvalidTagError(MPIError):
    """A tag argument is negative (and not a wildcard) or too large."""


class TruncationError(MPIError):
    """An incoming message is larger than the posted receive buffer."""


class InvalidDatatypeError(MPIError):
    """A datatype handle is invalid, freed, or uncommitted."""


class InvalidCommunicatorError(MPIError):
    """A communicator handle is invalid or freed."""

class InvalidRequestError(MPIError):
    """A request handle is invalid or already released."""


class InvalidOpError(MPIError):
    """A reduction-operation handle is invalid."""


class SimulationError(Exception):
    """Base class for errors of the simulation fabric itself."""


class ProcessFailure(SimulationError):
    """Injected fail-stop fault; terminates the raising rank immediately.

    Carries the failing ``rank`` and the virtual ``time`` of the failure so
    harnesses can log where the fault landed.
    """

    def __init__(self, rank: int, time: float, reason: str = "injected fail-stop fault"):
        super().__init__(f"rank {rank} failed at t={time:.6f}: {reason}")
        self.rank = rank
        self.time = time
        self.reason = reason


class JobAborted(SimulationError):
    """The job was aborted (some rank failed); surviving ranks unwind."""

    def __init__(self, message: str = "job aborted due to process failure"):
        super().__init__(message)


class DeadlockError(SimulationError):
    """All live ranks are blocked and no message can ever arrive."""
