"""``MPI_Status`` analog: who sent a received message, with what tag/size."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Status:
    """Filled in by receive and wait/test operations.

    ``source`` and ``tag`` resolve wildcards; ``count`` is the number of
    elements actually received, and ``nbytes`` the payload size in bytes.
    """

    source: int = -1
    tag: int = -1
    count: int = 0
    nbytes: int = 0
    cancelled: bool = False
    error: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.count
