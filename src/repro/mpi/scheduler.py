"""Deterministic cooperative rank scheduler.

The default execution backend of the :class:`~repro.mpi.engine.Engine`.
Each rank's ``main`` runs as a *fiber*: a task that executes until it
reaches a blocking point — a mailbox wait (``Recv``/``Wait``/``Probe``,
collective internals, the C3 checkpoint coordination paths) or a failed
non-blocking completion check (``Test``/``Iprobe`` spin loops) — and
then yields control back to a single run loop.  Exactly one rank
executes at any instant, so

* the schedule is **deterministic**: runnable ranks are serviced from a
  FIFO queue seeded in rank order, and blocked ranks are woken in rank
  order, so a job's message matching, virtual clocks, and fault
  delivery points are a pure function of the program and the fault
  plan — every run of the same job is bit-identical;
* the mailbox needs **no locks and no condition variables**: all
  matching state is mutated by whichever single task is running (the
  engine binds each mailbox to the scheduler, replacing its condition
  variable with a wakeup note into the run loop);
* **wakeups are exact**: a delivery or notification marks the target
  rank dirty, and the run loop re-evaluates only dirty ranks' wait
  predicates, resuming exactly the ranks whose predicate became true
  (or that have a due fault to observe) — there are no notify-all
  storms and no timeout polls;
* **deadlock is detected instantly**: when every live rank is blocked
  and no wait predicate holds, no future delivery can occur (only
  ranks send), so the scheduler declares deadlock immediately instead
  of burning the wall-clock watchdog timeout.

CPython cannot suspend an arbitrary call stack (no first-class
continuations, and ``greenlet`` is not a dependency), so each fiber is
*carried* by a parked OS thread with a small stack: the carrier blocks
on a private semaphore whenever its task is not scheduled, and the
run-loop/task handoff is two semaphore operations.  The cooperative
discipline — one runner at a time, explicit yield points — is what
delivers the determinism and the scalability; the carrier threads are
an implementation detail that never run concurrently.  This is what
lets platform models run at the paper's true process counts (256+ ranks
sweep in :mod:`repro.harness.scaling`) instead of the downscaled 4/8/16
used by the original thread-per-rank engine.

Rank code must reach its blocking points *through the simulated MPI
layer*: a task that blocks on a bare OS primitive (``Event.wait``,
``time.sleep`` loops) stalls the run loop, because it parks the only
running carrier without yielding.  The scheduler guards against this
with a handoff timeout slightly beyond the job's wall deadline — the
stuck rank is abandoned (its daemon carrier leaks) and the job aborts
with an engine-watchdog error, mirroring the threaded backend's
behavior for ranks that never terminate.

See DESIGN.md section 4 for the execution-model contract.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set

from .errors import DeadlockError, JobAborted

#: task states
_RUNNING = "running"
_BLOCKED = "blocked"
_YIELDED = "yielded"
_DONE = "done"


class RankTask:
    """One rank's fiber: a parked carrier thread plus scheduling state."""

    __slots__ = ("rank", "sem", "thread", "state", "predicate", "leaked")

    def __init__(self, rank: int):
        self.rank = rank
        #: the carrier parks here whenever the task is not scheduled
        self.sem = threading.Semaphore(0)
        self.thread: Optional[threading.Thread] = None
        self.state = _YIELDED
        #: wait predicate registered by the current blocking operation
        self.predicate: Optional[Callable[[], bool]] = None
        #: True once the watchdog abandoned a non-yielding task
        self.leaked = False


class CooperativeScheduler:
    """Single run loop advancing one rank fiber at a time."""

    #: carrier-thread stack size: tasks never recurse deeply, and with
    #: one runner at a time there is no per-thread working set beyond
    #: the (lazily committed) stack — 512 KiB is half the threaded
    #: backend's 1 MiB and bounds a 1024-rank job to 0.5 GiB of
    #: *virtual* address space
    STACK_BYTES = 512 << 10

    #: extra wall-clock grace beyond the job deadline before the run
    #: loop abandons a task that never yields (non-MPI blocking call)
    HANDOFF_GRACE = 30.0

    #: consecutive no-progress switches (yield/block with no mailbox
    #: activity) before :meth:`_on_idle_spin` fires; a no-op hook here,
    #: overridden by the sharded worker loop to poll its master pipe so
    #: Test/Iprobe spinners waiting on cross-shard traffic make progress
    SPIN_HOOK_EVERY = 64

    def __init__(self, engine, ranks=None):
        self.engine = engine
        #: the subset of ranks this loop runs (None = all engine ranks);
        #: the sharded backend runs one loop per simulated-node group
        self.ranks = None if ranks is None else [int(r) for r in ranks]
        #: the run loop parks here while a task runs
        self._main = threading.Semaphore(0)
        self._current: Optional[RankTask] = None
        #: ranks whose mailbox saw activity since they blocked
        self._dirty: Set[int] = set()
        self._blocked: Dict[int, RankTask] = {}
        #: set when every live rank is blocked with no wakeup possible;
        #: observed by parked tasks, which unwind with DeadlockError
        self.deadlocked = False
        self._deadlock_ranks: List[int] = []
        self._tasks: List[RankTask] = []
        #: statistics: fiber context switches performed
        self.switches = 0

    # -- wakeup notes (called from mailboxes, possibly off-loop) -----------
    def mailbox_activity(self, rank: int) -> None:
        """Note a delivery/notification for ``rank`` (its wait predicate
        may have become true); ``set.add`` is atomic, so faults signalled
        from the engine's abort path are safe too."""
        self._dirty.add(rank)

    # -- task-side suspension points ---------------------------------------
    def wait(self, predicate: Callable[[], bool],
             poll: Optional[Callable[[], None]] = None) -> None:
        """Cooperative :meth:`Mailbox.wait_for`: park until the predicate
        holds or the job aborts/deadlocks.

        Semantics match the threaded wait loop exactly: the predicate is
        checked before the abort flag (an operation whose match already
        arrived completes even under abort), and ``poll`` runs on every
        wakeup in the task's own context so due faults and deadline
        errors raise on the right rank.
        """
        task = self._current
        abort = self.engine.abort_event
        while True:
            if predicate():
                return
            if abort.is_set():
                raise JobAborted()
            if self.deadlocked:
                raise DeadlockError(self._deadlock_message())
            if poll is not None:
                poll()
                if predicate():
                    return
            task.predicate = predicate
            self._park(task, _BLOCKED)

    def yield_now(self) -> None:
        """Fairness point: hand the loop one turn, stay runnable.

        Called on failed non-blocking completion checks so ``Test`` /
        ``Iprobe`` spin loops let their peers progress instead of
        monopolizing the single runner.
        """
        task = self._current
        if task is not None:
            self._park(task, _YIELDED)

    def _park(self, task: RankTask, state: str) -> None:
        task.state = state
        self._main.release()
        task.sem.acquire()
        task.state = _RUNNING

    def _deadlock_message(self) -> str:
        return (f"cooperative deadlock: all live ranks blocked with no "
                f"matching traffic possible "
                f"(blocked ranks: {self._deadlock_ranks})")

    # -- extension hooks (overridden by the sharded worker loop) -----------
    def _on_quiescent(self) -> bool:
        """All live ranks are blocked and no wait predicate holds.

        Return True if external traffic may still arrive (the override
        marks ranks dirty after delivering it); False means quiescence
        is final and the loop declares deadlock.  A single-loop run has
        no external traffic source, so the default is final.
        """
        return False

    def _on_idle_spin(self) -> None:
        """Ran after :data:`SPIN_HOOK_EVERY` consecutive switches with
        no mailbox activity — runnable ranks are spinning in
        non-blocking completion checks with nothing arriving."""

    # -- carriers ------------------------------------------------------------
    def _start_carriers(self, body: Callable[[int], None]) -> None:
        def carrier(task: RankTask) -> None:
            task.sem.acquire()          # wait to be scheduled the first time
            task.state = _RUNNING
            try:
                body(task.rank)         # never raises (engine worker wrapper)
            finally:
                task.state = _DONE
                self._main.release()

        old_stack = threading.stack_size()
        try:
            threading.stack_size(self.STACK_BYTES)
        except (ValueError, RuntimeError):  # pragma: no cover - platform quirk
            pass
        try:
            for task in self._tasks:
                task.thread = threading.Thread(
                    target=carrier, args=(task,), daemon=True,
                    name=f"coop-rank-{task.rank}")
                task.thread.start()
        finally:
            try:
                threading.stack_size(old_stack)
            except (ValueError, RuntimeError):  # pragma: no cover
                pass

    def _switch_to(self, task: RankTask, deadline: float) -> bool:
        """Resume a task until it parks; False if it had to be abandoned."""
        self._current = task
        self.switches += 1
        task.sem.release()
        while True:
            budget = max(1.0, deadline + self.HANDOFF_GRACE
                         - _time.monotonic())
            if self._main.acquire(timeout=budget):
                if task.state != _RUNNING:
                    return True
                # phantom permit from a previously abandoned task that
                # finally parked; swallow it and keep waiting
                continue  # pragma: no cover - degraded mode
            # The task never yielded: it is stuck in a non-MPI blocking
            # call or an unbounded compute.  Abandon it (daemon carrier
            # leaks) and fail the job like the threaded watchdog would.
            task.leaked = True  # pragma: no cover - degraded mode
            return False  # pragma: no cover

    # -- the run loop ----------------------------------------------------------
    def run(self, body: Callable[[int], None], deadline: float,
            errors: List) -> None:
        """Execute ``body(rank)`` for every rank to completion."""
        engine = self.engine
        ranks = self.ranks if self.ranks is not None else range(engine.nprocs)
        self._tasks = [RankTask(r) for r in ranks]
        runnable: Deque[RankTask] = deque(self._tasks)
        blocked = self._blocked
        abort = engine.abort_event
        self._start_carriers(body)
        live = len(self._tasks)
        idle_spins = 0

        while live:
            wall_expired = _time.monotonic() > deadline
            if abort.is_set() or wall_expired:
                # Wake everything: blocked tasks observe the abort flag
                # (JobAborted) or the expired deadline (their poll's
                # check_deadline raises DeadlockError and aborts).
                for r in sorted(blocked):
                    runnable.append(blocked.pop(r))
                self._dirty.clear()
            elif self._dirty:
                # Exact wakeups: only dirty ranks are re-examined, and
                # only those whose predicate holds (or that must observe
                # a due fault) are resumed — in rank order.
                wake = self._dirty & blocked.keys()
                self._dirty.clear()
                contexts = engine.rank_contexts
                for r in sorted(wake):
                    task = blocked[r]
                    if task.predicate() or contexts[r].has_due_fault:
                        del blocked[r]
                        runnable.append(task)
            if not runnable:
                if not blocked:  # pragma: no cover - defensive
                    break
                # Every live rank is blocked and no predicate holds.  In
                # a sharded run another shard (or an in-transit envelope)
                # may still wake us: ask the hook before giving up.
                if self._on_quiescent():
                    continue
                # No rank can ever deliver again — instant deadlock.
                # Wake them so each unwinds with DeadlockError/JobAborted.
                # A hook that already learned the global picture (sharded
                # master naming blocked ranks on every shard) has set
                # _deadlock_ranks itself; keep its list in that case.
                self.deadlocked = True
                if not self._deadlock_ranks:
                    self._deadlock_ranks = sorted(blocked)
                for r in sorted(blocked):
                    runnable.append(blocked.pop(r))
                continue
            task = runnable.popleft()
            if task.state == _DONE:  # pragma: no cover - defensive
                continue
            if not self._switch_to(task, deadline):
                # Abandoned a stuck task: abort the job and stop
                # trusting the cooperative invariant for it.
                errors.append((  # pragma: no cover - degraded mode
                    -1,
                    f"cooperative engine watchdog: rank {task.rank} never "
                    f"yielded (blocked outside the simulated MPI layer?)"))
                engine.abort(None)  # pragma: no cover
                live -= 1  # pragma: no cover
                continue  # pragma: no cover
            if task.state == _DONE:
                live -= 1
                idle_spins = 0
            elif task.state == _BLOCKED:
                blocked[task.rank] = task
                idle_spins += 1
            else:  # _YIELDED: round-robin to the back of the queue
                runnable.append(task)
                idle_spins += 1
            if self._dirty:
                idle_spins = 0
            elif idle_spins >= self.SPIN_HOOK_EVERY:
                idle_spins = 0
                self._on_idle_spin()
