"""Virtual-time machine model.

The simulator executes real Python code but accounts *virtual* time, so the
timing tables of the paper can be regenerated at their original process
counts.  Each rank owns a :class:`RankClock`; clocks advance through

* explicit compute charges (``compute(seconds)`` — applications charge a
  modelled cost per kernel iteration),
* per-MPI-call software overhead, and
* message transfer times (a LogGP-style ``latency + bytes/bandwidth``),
  which propagate between ranks by piggybacking the sender's timestamp on
  every envelope: a receive completes at
  ``max(receiver_now, sender_send_time + transfer(nbytes))``.

:class:`MachineModel` instances describe the paper's three clusters
(Lemieux, Velocity 2, CMI) and the two uniprocessor platforms of Table 1.
The constants are calibrated to reproduce the *shape* of the paper's
results (who wins, rough factors, crossovers) — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class MachineModel:
    """Performance parameters of one platform."""

    name: str
    #: effective useful FLOP rate per MPI process (FLOP/s)
    flops_per_proc: float
    #: one-way small-message network latency (seconds)
    latency: float
    #: per-link network bandwidth (bytes/second)
    bandwidth: float
    #: software overhead charged per MPI call (seconds)
    call_overhead: float
    #: extra software overhead per *intercepted* call in the C3 layer
    c3_call_overhead: float
    #: bytes piggybacked per application message by the C3 layer
    piggyback_bytes: int = 3
    #: extra fixed cost to piggyback on this platform (the paper observed a
    #: platform-specific penalty on Velocity 2's interconnect stack)
    piggyback_overhead: float = 0.0
    #: per-stream cost of embedding piggybacks in native collectives
    #: (payload repacking in the C3 layer; much cheaper than the p2p
    #: per-message penalty)
    coll_stream_overhead: float = 0.0
    #: local-disk write bandwidth (bytes/second) and seek latency (seconds)
    disk_bandwidth: float = 50e6
    disk_latency: float = 5e-3
    #: off-cluster (remote) disk bandwidth for the drain daemon model
    remote_disk_bandwidth: float = 10e6
    #: process image fixed overhead for system-level checkpoints (bytes):
    #: text/static segment + runtime image a core-dump snapshot includes
    static_segment_bytes: int = 0
    #: cores per node, for the "procs (nodes)" labels in the tables
    procs_per_node: int = 1

    def transfer_time(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes`` payload bytes."""
        return self.latency + nbytes / self.bandwidth

    def disk_write_time(self, nbytes: int) -> float:
        """Time to write ``nbytes`` to the node-local disk."""
        return self.disk_latency + nbytes / self.disk_bandwidth

    def disk_read_time(self, nbytes: int) -> float:
        """Time to read ``nbytes`` back from the node-local disk."""
        return self.disk_latency + nbytes / self.disk_bandwidth

    def with_overrides(self, **kw) -> "MachineModel":
        """A copy with some parameters replaced (for ablation benches)."""
        return replace(self, **kw)


class RankClock:
    """Per-rank virtual clock.  Monotone non-decreasing.

    A clock may *watch* the engine's virtual-time fault scheduler: when an
    advance crosses the scheduler's earliest pending fault time, the
    scheduler is told immediately, so faults scheduled at a virtual time
    are signalled the moment any rank's clock crosses the threshold
    instead of being discovered by a timeout poll.
    """

    __slots__ = ("now", "_watch")

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self._watch = None

    def watch(self, scheduler) -> None:
        """Report crossings of ``scheduler.next_time`` to the scheduler."""
        self._watch = scheduler

    def advance(self, dt: float) -> float:
        """Charge ``dt`` seconds of local work; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        watch = self._watch
        if watch is not None and self.now >= watch.next_time:
            watch.clock_crossed(self.now)
        return self.now

    def sync_to(self, t: float) -> float:
        """Wait until virtual time ``t`` (no-op if already past)."""
        if t > self.now:
            self.now = t
            watch = self._watch
            if watch is not None and self.now >= watch.next_time:
                watch.clock_crossed(self.now)
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankClock({self.now:.6f})"


# ---------------------------------------------------------------------------
# The paper's platforms.
# ---------------------------------------------------------------------------

#: Lemieux (PSC): 750 Compaq Alphaserver ES45 nodes, 4x 1 GHz Alpha,
#: Quadrics interconnect, Tru64.
LEMIEUX = MachineModel(
    name="lemieux",
    flops_per_proc=8.0e8,
    latency=5.0e-6,
    bandwidth=250e6,
    call_overhead=1.0e-6,
    c3_call_overhead=1.6e-6,
    piggyback_overhead=0.3e-6,
    coll_stream_overhead=0.25e-6,
    disk_bandwidth=35e6,
    disk_latency=2e-4,
    static_segment_bytes=6 << 20,
    procs_per_node=4,
)

#: Velocity 2 (CTC): 128 dual 2.4 GHz P4 Xeon nodes, Force10 GigE, Win2k.
#: The paper measured an anomalously large C3 penalty for codes that send
#: many small messages (SMG2000: ~50%); we model this as a large fixed
#: per-message piggyback cost in the Windows network stack.
VELOCITY2 = MachineModel(
    name="velocity2",
    flops_per_proc=1.1e9,
    latency=55.0e-6,
    bandwidth=100e6,
    call_overhead=3.0e-6,
    c3_call_overhead=4.0e-6,
    piggyback_overhead=26.0e-6,
    coll_stream_overhead=6.0e-6,
    disk_bandwidth=40e6,
    disk_latency=3e-4,
    static_segment_bytes=8 << 20,
    procs_per_node=2,
)

#: CMI (CTC): 64 dual 1 GHz P3 nodes, Giganet, Win2k.
CMI = MachineModel(
    name="cmi",
    flops_per_proc=4.5e8,
    latency=12.0e-6,
    bandwidth=100e6,
    call_overhead=2.0e-6,
    c3_call_overhead=2.6e-6,
    piggyback_overhead=0.5e-6,
    coll_stream_overhead=0.4e-6,
    disk_bandwidth=30e6,
    disk_latency=3e-4,
    static_segment_bytes=7 << 20,
    procs_per_node=2,
)

#: Table 1 uniprocessors.  ``static_segment_bytes`` dominates the Condor-vs-C3
#: difference for tiny-footprint codes (EP): Condor's image includes the
#: whole static segment and allocator slack, C3 saves only live data.
SOLARIS_UNIPROC = MachineModel(
    name="solaris",
    flops_per_proc=5.0e8,
    latency=10.0e-6,
    bandwidth=100e6,
    call_overhead=2.0e-6,
    c3_call_overhead=2.6e-6,
    disk_bandwidth=25e6,
    disk_latency=9e-3,
    static_segment_bytes=2_580_000,
    procs_per_node=2,
)

LINUX_UNIPROC = MachineModel(
    name="linux",
    flops_per_proc=6.0e8,
    latency=10.0e-6,
    bandwidth=100e6,
    call_overhead=2.0e-6,
    c3_call_overhead=2.6e-6,
    disk_bandwidth=25e6,
    disk_latency=9e-3,
    static_segment_bytes=780_000,
    procs_per_node=1,
)

#: A fast, low-overhead model for unit tests (keeps virtual numbers tidy).
TESTING = MachineModel(
    name="testing",
    flops_per_proc=1e9,
    latency=1e-6,
    bandwidth=1e9,
    call_overhead=1e-7,
    c3_call_overhead=1e-7,
    disk_bandwidth=1e9,
    disk_latency=1e-6,
    static_segment_bytes=1 << 20,
    procs_per_node=1,
)

MACHINES = {
    m.name: m
    for m in (LEMIEUX, VELOCITY2, CMI, SOLARIS_UNIPROC, LINUX_UNIPROC, TESTING)
}
