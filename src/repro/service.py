"""Campaign-as-a-service: queued, cached, tenant-namespaced study jobs.

The study harnesses run one grid per invocation; this module turns the
same job core (:mod:`repro.harness.jobs`) into a long-lived service:

* **Bounded queue** — :meth:`CampaignService.submit` enqueues a
  :class:`JobSpec` for a named tenant; the queue is a bounded
  :class:`asyncio.Queue`, so thousands of concurrent submissions get
  natural backpressure instead of unbounded memory growth.  A fixed set
  of worker coroutines drains it.
* **In-process execution** — cells run on a thread pool *inside* the
  service process (never a process pool), so their checkpoint traffic
  lands in the service's shared storage backend.  Concurrent simulator
  runs in threads of one process are bit-reproducible (pinned by
  ``tests/service``), which is what makes the next two features sound.
* **Tenant namespaces** — every job's stable storage is a
  :class:`~repro.storage.namespace.PrefixBackend` rooted at
  ``tenants/<tenant>/jobs/<job>/`` of the shared backend: tenants share
  the medium but can never see (or clobber) each other's bytes.
* **Golden-run cache** — results are keyed on ``(kernel, platform,
  nprocs, seed, engine, storage, config-digest)``.  Every measurement a
  job returns is virtual-time (no wall-clock fields), so a cached
  result is *bitwise identical* to re-running the job; hits are served
  from the per-tenant cache without re-execution, as a fresh
  deserialization of the canonical JSON (cache immutability).
* **Streaming progress** — :meth:`Job.events` is an async iterator of
  per-cell events, fed by the same ordered ``on_result`` callback the
  study harnesses stream through (:func:`repro.harness.parallel.
  run_cells`).

:mod:`repro.harness.loadgen` drives N tenants of mixed submissions
through this service and gates throughput, cache hit rate, and p99
submission-to-first-result latency into ``BENCH_service.json``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, fields, replace
from typing import (
    Any, AsyncIterator, Callable, Dict, List, Optional, Tuple,
)

from .apps import APPS
from .harness.jobs import STORAGE_CHOICES
from .harness.parallel import Cell, run_cells
from .harness.runner import measure_c3, measure_original, measure_recovery
from .mpi.engine import resolve_backend
from .mpi.timemodel import MACHINES
from .storage.namespace import PrefixBackend, tenant_backend
from .storage.stable import InMemoryStorage, StorageBackend
from .storage.wal import WalStore

__all__ = [
    "CampaignService", "Job", "JobSpec", "ResultCache", "ServiceError",
    "canonical_result_bytes", "execute_job",
]

#: job kinds: a full kill/restart/verify recovery scenario, or a
#: failure-free original-vs-C3 overhead point
JOB_KINDS = ("recovery", "overhead")


class ServiceError(Exception):
    """A job failed inside the service (the cause is the message)."""


# ---------------------------------------------------------------------------
# Job specs and cache keys
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JobSpec:
    """One submission, as plain data (JSON round-trippable).

    A spec is one cell by default — a recovery scenario or an overhead
    point addressed by the headline fields.  ``cells`` turns it into a
    small campaign: each entry is a dict of field overrides (``label``
    plus any headline field), and the job streams one event per cell.
    """

    app: str
    platform: str = "testing"
    nprocs: int = 4
    seed: int = 0
    engine: Optional[str] = None
    #: stable-storage flavor (:data:`repro.harness.jobs.STORAGE_CHOICES`);
    #: inside the service it selects the store layered over the tenant
    #: namespace ("wal"/"wal-disk" = the WAL engine, else scatter) and is
    #: a cache-key component either way
    storage: str = "memory"
    kind: str = "recovery"
    #: app parameters (None = the campaign defaults for the app)
    params: Optional[dict] = None
    #: fail-stop kills for "recovery" jobs (campaign kill-dict format)
    kills: Tuple[dict, ...] = ()
    interval_frac: float = 0.2
    #: timer-initiated checkpoints for "overhead" jobs
    checkpoints: int = 1
    #: multi-cell override dicts (see class docstring)
    cells: Tuple[dict, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "kills", tuple(dict(k) for k in self.kills))
        object.__setattr__(self, "cells", tuple(dict(c) for c in self.cells))
        if self.app not in APPS:
            raise ValueError(f"unknown app {self.app!r}")
        if self.platform not in MACHINES:
            raise ValueError(f"unknown platform {self.platform!r}")
        if self.storage not in STORAGE_CHOICES:
            raise ValueError(f"unknown storage flavor {self.storage!r}")
        if self.kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.engine is not None:
            # the registry's canonical error, at construction time —
            # a bad spelling never reaches the queue (same message the
            # study CLIs print, source: repro.mpi.backends)
            resolve_backend(self.engine)
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if not (0.0 < self.interval_frac <= 1.0):
            raise ValueError("interval_frac must be in (0, 1]")
        # override dicts may set any headline field plus a label, but
        # never nest further cells
        allowed = ({f.name for f in fields(type(self))} | {"label"}) \
            - {"cells"}
        for c in self.cells:
            bad = sorted(set(c) - allowed)
            if bad:
                raise ValueError(f"unknown cell override fields: {bad}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app, "platform": self.platform,
            "nprocs": self.nprocs, "seed": self.seed,
            "engine": self.engine, "storage": self.storage,
            "kind": self.kind,
            "params": dict(self.params) if self.params else None,
            "kills": [dict(k) for k in self.kills],
            "interval_frac": self.interval_frac,
            "checkpoints": self.checkpoints,
            "cells": [dict(c) for c in self.cells],
        }

    def config_digest(self) -> str:
        """Digest of everything *not* in the headline cache-key fields."""
        cfg = self.to_dict()
        for key in ("app", "platform", "nprocs", "seed", "engine",
                    "storage"):
            cfg.pop(key)
        blob = json.dumps(cfg, sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=8).hexdigest()

    def cache_key(self) -> Tuple:
        """The golden-run cache key of the issue contract."""
        return (self.app, self.platform, self.nprocs, self.seed,
                resolve_backend(self.engine), self.storage,
                self.config_digest())

    def cell_specs(self) -> List[Tuple[str, "JobSpec"]]:
        """``(label, single-cell spec)`` per cell this job runs."""
        if not self.cells:
            return [(f"{self.kind}:{self.app}@{self.nprocs}:"
                     f"{self.platform}", self)]
        out = []
        base = self.to_dict()
        base.pop("cells")
        for i, override in enumerate(self.cells):
            merged = dict(base)
            label = override.get("label", "")
            merged.update({k: v for k, v in override.items()
                           if k != "label"})
            sub = JobSpec(**merged)
            out.append((label or f"{sub.kind}:{sub.app}@{sub.nprocs}:"
                                 f"{sub.platform}#{i}", sub))
        return out


# ---------------------------------------------------------------------------
# Execution (runs on the service's thread pool, in-process)
# ---------------------------------------------------------------------------

def _execute_cell(spec: JobSpec,
                  store_factory: Callable[[], Any]) -> Dict[str, Any]:
    """One cell, synchronously; returns a judged plain-data row.

    Every value in the row is virtual-time or structural — no wall-clock
    field — which is what makes cached results bitwise-identical to
    fresh executions.
    """
    from .harness.campaign import CAMPAIGN_PARAMS

    machine = MACHINES[spec.platform]
    params = (dict(spec.params) if spec.params is not None
              else dict(CAMPAIGN_PARAMS.get(spec.app, {})))
    if spec.kind == "recovery":
        row = dict(measure_recovery(
            spec.app, spec.nprocs, machine, params,
            [dict(k) for k in spec.kills],
            interval_frac=spec.interval_frac, seed=spec.seed,
            engine=spec.engine, storage_factory=store_factory))
        row["passed"] = row["verified"]
        return row
    orig = measure_original(spec.app, spec.nprocs, machine, params,
                            engine=spec.engine)
    c3 = measure_c3(spec.app, spec.nprocs, machine, params,
                    checkpoints=spec.checkpoints,
                    reference_time=orig.virtual_seconds,
                    engine=spec.engine, storage=store_factory())
    return {
        "app": spec.app,
        "platform": spec.platform,
        "nprocs": spec.nprocs,
        "engine": resolve_backend(spec.engine),
        "original_seconds": orig.virtual_seconds,
        "c3_seconds": c3.virtual_seconds,
        "overhead_pct": ((c3.virtual_seconds - orig.virtual_seconds)
                         / orig.virtual_seconds * 100.0),
        "checkpoint_bytes": c3.checkpoint_bytes,
        "checkpoints_committed": c3.checkpoints_committed,
        "passed": True,
    }


def execute_job(spec: JobSpec, store_factory: Callable[[], Any],
                on_row: Optional[Callable[[int, str, Dict], None]] = None,
                ) -> List[Dict[str, Any]]:
    """Run a job's cells in order; returns the judged rows.

    ``on_row(index, label, row)`` streams each row as it completes —
    the service's progress events ride this, through the same ordered
    ``on_result`` seam the study harnesses use.
    """
    subs = spec.cell_specs()
    cells = [Cell(_execute_cell,
                  dict(spec=sub, store_factory=store_factory),
                  label=label)
             for label, sub in subs]
    rows: List[Optional[Dict]] = [None] * len(cells)

    def on_result(i: int, cell: Cell, result: Any) -> None:
        rows[i] = result
        if on_row is not None:
            on_row(i, cell.label, result)

    # inline always: the cells must write through this process's
    # tenant-namespaced backend, which a process pool would fork away
    run_cells(cells, parallel=False, on_result=on_result)
    return [r for r in rows if r is not None]


# ---------------------------------------------------------------------------
# Golden-run result cache
# ---------------------------------------------------------------------------

def canonical_result_bytes(rows: List[Dict[str, Any]]) -> bytes:
    """The canonical serialized form of a job result.

    Sorted-key JSON over plain data; both cache entries and served
    results round-trip through this, so a hit and a fresh run compare
    bitwise.
    """
    return json.dumps(rows, sort_keys=True, default=str).encode()


class ResultCache:
    """Per-tenant golden-run cache: cache key -> canonical result bytes.

    Entries are stored serialized and served as fresh deserializations,
    so no consumer can mutate a cached result in place.
    """

    def __init__(self) -> None:
        self._data: Dict[Tuple, bytes] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Tuple) -> Optional[List[Dict[str, Any]]]:
        blob = self._data.get(key)
        if blob is None:
            self.misses += 1
            return None
        self.hits += 1
        return json.loads(blob)

    def get_bytes(self, key: Tuple) -> Optional[bytes]:
        """The raw canonical bytes (bitwise-equality checks)."""
        return self._data.get(key)

    def put(self, key: Tuple, rows: List[Dict[str, Any]]) -> None:
        self._data[key] = canonical_result_bytes(rows)


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

class Job:
    """One accepted submission: spec, progress stream, final result."""

    def __init__(self, job_id: int, tenant: str, spec: JobSpec):
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        #: served from the tenant's golden-run cache, no re-execution
        self.cached = False
        self.submitted_at = time.monotonic()
        #: when the first per-cell event (or the verdict) was emitted —
        #: minus ``submitted_at`` it is the submission-to-first-result
        #: latency the load generator gates at p99
        self.first_result_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.rows: Optional[List[Dict[str, Any]]] = None
        self.error: Optional[str] = None
        self._events: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.first_result_at is None and event["type"] in ("cell",
                                                              "done"):
            self.first_result_at = time.monotonic()
        self._events.put_nowait(event)

    def _finish(self, rows: List[Dict[str, Any]]) -> None:
        self.rows = rows
        self.finished_at = time.monotonic()
        self._emit({"type": "done", "job": self.id, "cached": self.cached,
                    "rows": rows})
        self._done.set()

    def _fail(self, error: str) -> None:
        self.error = error
        self.finished_at = time.monotonic()
        self._emit({"type": "error", "job": self.id, "error": error})
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def ok(self) -> bool:
        return (self.error is None and self.rows is not None
                and all(r.get("passed", True) for r in self.rows))

    async def events(self) -> AsyncIterator[Dict[str, Any]]:
        """Ordered per-cell progress events, ending with done/error."""
        while True:
            event = await self._events.get()
            yield event
            if event["type"] in ("done", "error"):
                return

    async def result(self) -> List[Dict[str, Any]]:
        """The judged rows; raises :class:`ServiceError` on job failure."""
        await self._done.wait()
        if self.error is not None:
            raise ServiceError(self.error)
        assert self.rows is not None
        return self.rows


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class CampaignService:
    """Asyncio campaign service: bounded queue, cache, tenant namespaces.

    Usage::

        async with CampaignService(workers=4) as svc:
            job = await svc.submit("alice", JobSpec(app="ring",
                                                    kills=({"rank": 1,
                                                            "frac": 0.5},)))
            async for event in job.events():
                ...
            rows = await job.result()
    """

    def __init__(self, backend: Optional[StorageBackend] = None,
                 queue_limit: int = 1024, workers: int = 4,
                 cache: bool = True,
                 default_engine: Optional[str] = None):
        #: the shared physical medium all tenants' namespaces live on
        self.backend = backend if backend is not None else InMemoryStorage()
        self.queue_limit = queue_limit
        self.workers = workers
        self.cache_enabled = cache
        #: execution backend applied to submissions that leave ``engine``
        #: unset (the process-backend executor option: ``"processes"``
        #: moves each job's simulation into forked OS processes, so the
        #: service's worker threads only coordinate and campaign
        #: throughput is not GIL-bound).  Resolved — and so validated —
        #: here, at service construction.
        self.default_engine = (resolve_backend(default_engine)
                               if default_engine is not None else None)
        self._caches: Dict[str, ResultCache] = {}
        self._ids = itertools.count(1)
        self._queue: Optional[asyncio.Queue] = None
        self._tasks: List[asyncio.Task] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self.jobs_executed = 0
        self.jobs_cached = 0

    async def __aenter__(self) -> "CampaignService":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    async def start(self) -> None:
        if self._tasks:
            raise RuntimeError("service already started")
        self._queue = asyncio.Queue(self.queue_limit)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="campaign-svc")
        self._tasks = [asyncio.create_task(self._worker())
                       for _ in range(self.workers)]

    async def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def join(self) -> None:
        """Wait until every accepted job has been processed."""
        assert self._queue is not None
        await self._queue.join()

    def cache_for(self, tenant: str) -> ResultCache:
        return self._caches.setdefault(tenant, ResultCache())

    async def submit(self, tenant: str, spec: JobSpec) -> Job:
        """Enqueue one job; awaits (backpressure) when the queue is full.

        The tenant name is validated here, with the same single-segment
        rules the namespace wrapper enforces.
        """
        if self._queue is None:
            raise RuntimeError("service not started")
        tenant_backend(self.backend, tenant)   # validates the name
        if spec.engine is None and self.default_engine is not None:
            # applied before the job is created so the cache key, the
            # progress events, and the executed cells all agree on the
            # engine actually used
            spec = replace(spec, engine=self.default_engine)
        job = Job(next(self._ids), tenant, spec)
        await self._queue.put(job)
        return job

    def stats(self) -> Dict[str, Any]:
        return {
            "jobs_executed": self.jobs_executed,
            "jobs_cached": self.jobs_cached,
            "tenants": {
                t: {"entries": len(c), "hits": c.hits, "misses": c.misses}
                for t, c in sorted(self._caches.items())
            },
        }

    # -- internals -----------------------------------------------------------

    def _store_factory(self, job: Job) -> Callable[[], Any]:
        """Fresh tenant-namespaced stores for one job.

        Each call roots a new namespace under
        ``tenants/<tenant>/jobs/<job>/s<n>`` — the measurement pipeline
        opens one store per execution phase, and phases must not see
        each other's bytes.
        """
        base = tenant_backend(self.backend, job.tenant)
        seq = itertools.count()
        wal = job.spec.storage in ("wal", "wal-disk")

        def make() -> Any:
            ns = PrefixBackend(base, f"jobs/job{job.id:08d}/s{next(seq)}")
            return WalStore(ns) if wal else ns

        return make

    async def _worker(self) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                await self._run(job)
            except asyncio.CancelledError:
                job._fail("service shut down")
                raise
            except Exception as exc:  # noqa: BLE001 - job verdict
                job._fail(f"{type(exc).__name__}: {exc}")
            finally:
                self._queue.task_done()

    async def _run(self, job: Job) -> None:
        cache = (self.cache_for(job.tenant) if self.cache_enabled
                 else None)
        key = job.spec.cache_key()
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                job.cached = True
                self.jobs_cached += 1
                for i, row in enumerate(hit):
                    job._emit({"type": "cell", "job": job.id, "index": i,
                               "label": "", "row": row, "cached": True})
                job._finish(hit)
                return
        loop = asyncio.get_running_loop()

        def on_row(i: int, label: str, row: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                job._emit, {"type": "cell", "job": job.id, "index": i,
                            "label": label, "row": row, "cached": False})

        rows = await loop.run_in_executor(
            self._executor, execute_job, job.spec,
            self._store_factory(job), on_row)
        if cache is not None:
            cache.put(key, rows)
        self.jobs_executed += 1
        # serve the canonical form, exactly what later cache hits serve
        job._finish(json.loads(canonical_result_bytes(rows)))
