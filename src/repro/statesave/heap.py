"""Simulated process heap / memory manager.

C3 provides its own memory manager so that dynamically allocated objects
can be restored to their original addresses after a restart (Section 5).
This module reproduces that manager at the level of abstraction the
reproduction needs:

* ``malloc`` returns a stable *address* (an integer offset in a simulated
  address space) and tracks the block's payload (a numpy array);
* ``free`` releases the block, but — like a real allocator — the address
  space high-water mark does not shrink, so a **system-level** checkpointer
  (the Condor baseline) must save the whole extent, while C3 saves **live
  data only**.  This live-vs-image distinction is exactly what Table 1
  measures;
* the manager itself can be checkpointed and restored: after a restore
  every live block reappears at its original address.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .serializer import SerializationError

_ALIGN = 16


class HeapError(Exception):
    """Invalid heap operation (double free, unknown address, ...)."""


class Block:
    """One live allocation."""

    __slots__ = ("address", "nbytes", "label", "data")

    def __init__(self, address: int, nbytes: int, label: str, data: Optional[np.ndarray]):
        self.address = address
        self.nbytes = nbytes
        self.label = label
        self.data = data


class SimHeap:
    """Bump allocator with a free list and a high-water mark."""

    def __init__(self, static_segment_bytes: int = 0, stack_bytes: int = 1 << 16):
        #: text + globals; included in a system-level image, never in C3's
        self.static_segment_bytes = static_segment_bytes
        self.stack_bytes = stack_bytes
        self._brk = 0
        self._live: Dict[int, Block] = {}
        self._free_list: Dict[int, int] = {}  # address -> size
        self.alloc_count = 0
        self.free_count = 0

    # -- allocation -----------------------------------------------------------
    def malloc(self, nbytes: int, label: str = "", data: Optional[np.ndarray] = None) -> int:
        """Allocate ``nbytes``; returns the block's address."""
        if nbytes < 0:
            raise HeapError(f"negative allocation size {nbytes}")
        size = max(_ALIGN, (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN)
        address = None
        # first-fit reuse of freed space (keeps the image bounded, like a
        # real allocator reusing arena space)
        for addr, free_size in sorted(self._free_list.items()):
            if free_size >= size:
                address = addr
                if free_size > size:
                    self._free_list[addr + size] = free_size - size
                del self._free_list[addr]
                break
        if address is None:
            address = self._brk
            self._brk += size
        self._live[address] = Block(address, nbytes, label, data)
        self.alloc_count += 1
        return address

    def alloc_array(self, shape, dtype=np.float64, label: str = "") -> Tuple[int, np.ndarray]:
        """Allocate and zero a numpy array on the heap; returns (address, array)."""
        arr = np.zeros(shape, dtype=dtype)
        addr = self.malloc(arr.nbytes, label=label, data=arr)
        return addr, arr

    def free(self, address: int) -> None:
        """Release a block; freed space stays inside the process image."""
        block = self._live.pop(address, None)
        if block is None:
            raise HeapError(f"free of unknown or already-freed address {address:#x}")
        size = max(_ALIGN, (block.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN)
        self._free_list[address] = size
        self.free_count += 1

    def block(self, address: int) -> Block:
        """The live block at ``address`` (raises on freed/unknown)."""
        try:
            return self._live[address]
        except KeyError:
            raise HeapError(f"unknown address {address:#x}") from None

    def live_blocks(self) -> Iterator[Block]:
        """Live blocks in address order."""
        return iter(sorted(self._live.values(), key=lambda b: b.address))

    # -- accounting (what Table 1 is about) -------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes of live (not freed) data — what C3 checkpoints from the heap."""
        return sum(b.nbytes for b in self._live.values())

    @property
    def image_bytes(self) -> int:
        """Whole process-image bytes — what a system-level checkpointer saves."""
        return self.static_segment_bytes + self._brk + self.stack_bytes

    # -- checkpoint / restore ------------------------------------------------------
    def snapshot(self) -> dict:
        """Serializable description of the heap (live blocks + geometry)."""
        blocks = []
        for b in self.live_blocks():
            # copy: the snapshot must not alias live block data
            data = None if b.data is None else np.array(b.data, copy=True,
                                                        order="C")
            blocks.append({
                "address": b.address,
                "nbytes": b.nbytes,
                "label": b.label,
                "data": data,
            })
        return {
            "static_segment_bytes": self.static_segment_bytes,
            "stack_bytes": self.stack_bytes,
            "brk": self._brk,
            "free_list": dict(self._free_list),
            "blocks": blocks,
            "alloc_count": self.alloc_count,
            "free_count": self.free_count,
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "SimHeap":
        """Rebuild the heap with every live block at its original address."""
        try:
            heap = cls(snap["static_segment_bytes"], snap["stack_bytes"])
            heap._brk = snap["brk"]
            heap._free_list = {int(k): int(v) for k, v in snap["free_list"].items()}
            heap.alloc_count = snap["alloc_count"]
            heap.free_count = snap["free_count"]
            for b in snap["blocks"]:
                heap._live[b["address"]] = Block(
                    b["address"], b["nbytes"], b["label"], b["data"]
                )
            return heap
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"corrupt heap snapshot: {exc}") from exc
