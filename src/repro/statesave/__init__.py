"""Application-level state saving (paper Section 5)."""

from .checkpointfile import CheckpointError, CheckpointReader, CheckpointWriter
from .context import AppState, Context, RawCommAdapter, StateError
from .heap import Block, HeapError, SimHeap
from .incremental import IncrementalError, IncrementalTracker, PAGE
from .registry import (
    RegistryError, Scope, VariableDescriptor, VariableRegistry,
)
from .serializer import SerializationError, Serializer, dumps, loads

__all__ = [
    "Context", "AppState", "RawCommAdapter", "StateError",
    "SimHeap", "Block", "HeapError",
    "VariableRegistry", "VariableDescriptor", "Scope", "RegistryError",
    "Serializer", "dumps", "loads", "SerializationError",
    "CheckpointWriter", "CheckpointReader", "CheckpointError",
    "IncrementalTracker", "IncrementalError", "PAGE",
]
