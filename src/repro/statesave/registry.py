"""Runtime variable registry — the state-description the precompiler maintains.

In C3, precompiler-inserted calls register every variable as it enters
scope and unregister it as it leaves, "maintaining an up-to-date
description of the process's state" (Section 5).  At checkpoint time the
description is walked and each variable's bytes are written out; on
restart the description is read back first and used to reconstruct the
state.

:class:`VariableRegistry` is that description.  Variables live in nested
*scopes* (function activations); globals live in the root scope.  A
variable is either a numpy array (saved by reference, restored in place so
aliases stay valid — the analog of restoring data to its original address)
or an immutable Python scalar (saved by value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from .serializer import SerializationError


class RegistryError(Exception):
    """Invalid registry operation (duplicate name, unknown scope, ...)."""


@dataclass
class VariableDescriptor:
    """What the checkpoint stores about one variable."""

    name: str
    kind: str           # "array" | "scalar"
    dtype: Optional[str]
    shape: Optional[tuple]
    nbytes: int


class Scope:
    """One activation record's worth of registered variables."""

    def __init__(self, name: str):
        self.name = name
        self.vars: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scope {self.name}: {list(self.vars)}>"


class VariableRegistry:
    """Nested-scope variable set with snapshot/restore."""

    def __init__(self):
        self._scopes: List[Scope] = [Scope("<globals>")]

    # -- scope tracking (precompiler-inserted calls) --------------------------
    def enter_scope(self, name: str) -> None:
        """A function activation begins (inserted at function entry)."""
        self._scopes.append(Scope(name))

    def leave_scope(self) -> None:
        """A function activation ends (inserted at function exit)."""
        if len(self._scopes) == 1:
            raise RegistryError("cannot leave the global scope")
        self._scopes.pop()

    @property
    def depth(self) -> int:
        return len(self._scopes)

    @property
    def current_scope(self) -> Scope:
        return self._scopes[-1]

    # -- registration ------------------------------------------------------------
    def register(self, name: str, value: Any) -> Any:
        """A variable enters scope.  Returns the value for assignment chaining."""
        scope = self._scopes[-1]
        if name in scope.vars:
            raise RegistryError(f"variable {name!r} already registered in scope "
                                f"{scope.name!r}")
        scope.vars[name] = value
        return value

    def unregister(self, name: str) -> None:
        """A variable leaves scope."""
        scope = self._scopes[-1]
        if name not in scope.vars:
            raise RegistryError(f"variable {name!r} not registered in scope "
                                f"{scope.name!r}")
        del scope.vars[name]

    def update(self, name: str, value: Any) -> Any:
        """Re-bind a registered scalar (arrays are mutated in place instead)."""
        for scope in reversed(self._scopes):
            if name in scope.vars:
                scope.vars[name] = value
                return value
        raise RegistryError(f"variable {name!r} not registered in any scope")

    def lookup(self, name: str) -> Any:
        for scope in reversed(self._scopes):
            if name in scope.vars:
                return scope.vars[name]
        raise RegistryError(f"variable {name!r} not registered in any scope")

    def __contains__(self, name: str) -> bool:
        return any(name in s.vars for s in self._scopes)

    # -- accounting -----------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes the registry would write at a checkpoint."""
        total = 0
        for scope in self._scopes:
            for v in scope.vars.values():
                total += v.nbytes if isinstance(v, np.ndarray) else 16
        return total

    def descriptors(self) -> List[VariableDescriptor]:
        out = []
        for scope in self._scopes:
            for name, v in scope.vars.items():
                if isinstance(v, np.ndarray):
                    out.append(VariableDescriptor(
                        f"{scope.name}:{name}", "array", v.dtype.str,
                        tuple(v.shape), v.nbytes))
                else:
                    out.append(VariableDescriptor(
                        f"{scope.name}:{name}", "scalar", None, None, 16))
        return out

    # -- snapshot / restore -------------------------------------------------------------
    def snapshot(self) -> dict:
        scopes = []
        for scope in self._scopes:
            vars_snap: Dict[str, Any] = {}
            for name, v in scope.vars.items():
                if isinstance(v, np.ndarray):
                    # copy: the snapshot must not alias the live array
                    vars_snap[name] = np.array(v, copy=True, order="C")
                else:
                    vars_snap[name] = v
            scopes.append({"name": scope.name, "vars": vars_snap})
        return {"scopes": scopes}

    def restore(self, snap: dict) -> None:
        """Restore variable values **in place** where possible.

        The scope structure of the snapshot must match the current registry
        (the restarted program re-enters the same activations before the
        registry is restored); array variables are written element-wise so
        existing references remain valid.
        """
        try:
            snap_scopes = snap["scopes"]
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"corrupt registry snapshot: {exc}") from exc
        if len(snap_scopes) != len(self._scopes):
            raise RegistryError(
                f"scope depth mismatch: checkpoint has {len(snap_scopes)}, "
                f"registry has {len(self._scopes)}"
            )
        for scope, s_snap in zip(self._scopes, snap_scopes):
            if scope.name != s_snap["name"]:
                raise RegistryError(
                    f"scope name mismatch: {scope.name!r} vs {s_snap['name']!r}"
                )
            for name, value in s_snap["vars"].items():
                if name in scope.vars and isinstance(scope.vars[name], np.ndarray):
                    live = scope.vars[name]
                    if not isinstance(value, np.ndarray) or live.shape != value.shape:
                        raise RegistryError(
                            f"shape mismatch restoring {name!r} in {scope.name!r}"
                        )
                    live[...] = value
                else:
                    scope.vars[name] = value
