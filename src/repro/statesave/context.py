"""Application context: checkpointable state + resumable control flow.

C3's precompiler rewrites a C program so that its variables are registered
with the runtime and execution can resume at a pragma after restart.  In
this Python reproduction, applications are written against (or rewritten
by :mod:`repro.precompiler` into) the :class:`Context` API:

* ``ctx.state`` — the checkpointable variable set (numpy arrays and
  scalars).  This is what a recovery line stores for the process.
* ``ctx.range(name, ...)`` — a resumable loop.  The loop counter lives in
  ``ctx.state``; after a restart the loop continues from the iteration
  the checkpoint was taken in.  **Place the checkpoint pragma as the
  first statement of the loop body** (equivalent to the paper's "bottom
  of the main loop" placement — the bottom of iteration *i* is the top of
  iteration *i+1*), so re-executing the current iteration from its top is
  exactly "resuming at the checkpointed location".
* ``ctx.first_time(name)`` / ``ctx.done(name)`` — replay guards for
  one-time setup sections (the analog of the program text *before* the
  resume jump target, which a restarted C3 program skips).
* ``ctx.checkpoint(force=...)`` — the ``#pragma ccc checkpoint`` site.
* ``ctx.comm`` — the communicator the application talks to.  Under C3 it
  is the protocol-wrapped communicator; in an original (non-fault-
  tolerant) run it is a thin adapter over the raw simulated MPI.

The same application function therefore runs unmodified in three modes:
original, C3 without checkpoints, and C3 with checkpoint/restart.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

import numpy as np

from ..mpi.api import MPI
from .heap import SimHeap
from .registry import VariableRegistry


class StateError(Exception):
    """Invalid use of the checkpointable state."""


def _phase_key(loop_name: str, phase_name: str) -> str:
    """Phase-marker state key.  The ``::`` delimiter cannot appear in a
    loop name, so clearing one loop's markers by prefix can never touch
    another loop whose name merely starts with this one's."""
    return f"__phase_{loop_name}::{phase_name}"


def _canonical_position(v: Any) -> Optional[tuple]:
    """A stored loop-completion token, canonicalized for comparison
    (serializer round-trips may turn tuples into lists)."""
    if v is None:
        return None
    try:
        return tuple((str(n), int(i)) for n, i in v)
    except (TypeError, ValueError):
        return None


def _value_nbytes(v: Any) -> int:
    """Approximate checkpoint payload bytes of one state value."""
    if isinstance(v, np.ndarray):
        return v.nbytes
    if isinstance(v, (bytes, bytearray, str)):
        return len(v)
    if isinstance(v, (list, tuple)):
        return sum(_value_nbytes(x) for x in v)
    if isinstance(v, dict):
        return sum(_value_nbytes(x) for x in v.values())
    return 16


class AppState:
    """Dict-like checkpointable variable set with attribute access."""

    def __init__(self, values: Optional[Dict[str, Any]] = None):
        object.__setattr__(self, "_values", dict(values or {}))

    # -- mapping protocol ----------------------------------------------------
    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise StateError(f"no state variable {name!r}") from None

    def __setitem__(self, name: str, value: Any) -> None:
        self._values[name] = value

    def __delitem__(self, name: str) -> None:
        try:
            del self._values[name]
        except KeyError:
            raise StateError(f"no state variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def setdefault(self, name: str, default: Any) -> Any:
        return self._values.setdefault(name, default)

    # -- attribute sugar ------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(f"no state variable {name!r}") from None

    def __setattr__(self, name: str, value: Any) -> None:
        self._values[name] = value

    # -- checkpoint plumbing -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dict(self._values)

    def replace_all(self, values: Dict[str, Any]) -> None:
        self._values.clear()
        self._values.update(values)

    @property
    def nbytes(self) -> int:
        """Approximate payload bytes a checkpoint of this state would hold.

        Containers are counted recursively (instrumented kernels keep
        e.g. a list of per-level grids as one saved variable).
        """
        return sum(_value_nbytes(v) for v in self._values.values())


class RawCommAdapter:
    """Thin pass-through giving a raw Communicator the protocol interface.

    The C3 protocol wrapper exposes ``wait``/``test``/... as methods (it
    must interpose on them); this adapter mirrors that surface for
    original runs so applications are mode-agnostic.
    """

    def __init__(self, comm, mpi: MPI):
        self._comm = comm
        self._mpi = mpi

    def __getattr__(self, name: str):
        return getattr(self._comm, name)

    @property
    def rank(self) -> int:
        return self._comm.rank

    @property
    def size(self) -> int:
        return self._comm.size

    # communicator creation returns wrapped handles so the adapter surface
    # is preserved on sub-communicators too
    def Dup(self, name=None):
        return RawCommAdapter(self._comm.Dup(name), self._mpi)

    def Split(self, color, key=0):
        sub = self._comm.Split(color, key)
        return RawCommAdapter(sub, self._mpi) if sub is not None else None

    def Cart_create(self, dims, periods, reorder=False):
        return RawCommAdapter(self._comm.Cart_create(dims, periods, reorder),
                              self._mpi)

    # datatype constructors, mirrored from the MPI facade
    def Type_contiguous(self, count, base):
        return self._mpi.Type_contiguous(count, base)

    def Type_vector(self, count, blocklength, stride, base):
        return self._mpi.Type_vector(count, blocklength, stride, base)

    def Type_indexed(self, blocklengths, displacements, base):
        return self._mpi.Type_indexed(blocklengths, displacements, base)

    def Type_create_struct(self, blocklengths, displacements, types):
        return self._mpi.Type_create_struct(blocklengths, displacements, types)

    # request completion, routed like the protocol wrapper routes them
    def Wait(self, request):
        return request.wait()

    def Test(self, request):
        return request.test()

    def Waitall(self, requests):
        return self._mpi.Waitall(requests)

    def Waitany(self, requests):
        return self._mpi.Waitany(requests)

    def Waitsome(self, requests):
        return self._mpi.Waitsome(requests)

    def Testall(self, requests):
        return self._mpi.Testall(requests)

    def Testany(self, requests):
        return self._mpi.Testany(requests)


class Context:
    """Everything an instrumented application touches at runtime."""

    def __init__(self, mpi: MPI, comm=None,
                 pragma_hook: Optional[Callable[..., None]] = None,
                 heap: Optional[SimHeap] = None,
                 registry: Optional[VariableRegistry] = None):
        self.mpi = mpi
        self.comm = comm if comm is not None else RawCommAdapter(mpi.COMM_WORLD, mpi)
        self.state = AppState()
        self.heap = heap or SimHeap(
            static_segment_bytes=mpi._ctx.machine.static_segment_bytes)
        self.registry = registry or VariableRegistry()
        self.restored = False
        self._pragma_hook = pragma_hook
        self.pragma_count = 0
        #: runtime stack of the named loops currently executing (rebuilt
        #: by re-execution after a restore; not part of the checkpoint)
        self._active_loops: list = []

    # -- identity ------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    # -- time accounting --------------------------------------------------------
    def compute(self, seconds: float) -> None:
        self.mpi.compute(seconds)

    def work(self, flops: float) -> None:
        self.mpi.work(flops)

    def now(self) -> float:
        return self.mpi.Wtime()

    # -- the pragma ----------------------------------------------------------------
    def checkpoint(self, force: bool = False) -> None:
        """``#pragma ccc checkpoint``.

        In an original run this is a no-op (the precompiler was not used);
        under C3 the installed hook runs the Figure-5 pragma logic: check
        control messages and start a checkpoint when forced, when the timer
        expired, or when another process initiated one.
        """
        self.pragma_count += 1
        if self._pragma_hook is not None:
            self._pragma_hook(force=force)

    # -- resumable control flow ------------------------------------------------------
    # Named loops carry two pieces of persisted state:
    #
    # * ``__loop_<name>`` — the live iteration counter.  The set of live
    #   counters at a checkpoint is exactly the loop-position stack: a
    #   restore resumes every enclosing marked loop at its saved index.
    # * ``__loopfin_<name>`` — a *completion token*: the enclosing loop
    #   position (tuple of (loop, index) pairs) at which the loop last
    #   ran to completion.  Post-restore re-execution that reaches the
    #   loop again *at that same position* skips it (it already ran
    #   before the checkpoint), while a new enclosing iteration — a
    #   fresh dynamic instance — runs it from the start.
    #
    # Every enclosing loop of a marked loop must itself be marked (the
    # precompiler enforces this), otherwise the enclosing position is
    # invisible to the token.

    def range(self, name: str, start: int, stop: Optional[int] = None,
              step: int = 1) -> Iterator[int]:
        """Resumable ``range``; the counter persists in ``ctx.state``."""
        if stop is None:
            start, stop = 0, start
        if step <= 0:
            raise StateError("ctx.range requires a positive step")
        key = f"__loop_{name}"
        self._check_not_running(name)
        enclosing = self._loop_position()
        if self._completed_here(name, key, enclosing):
            return
        i = int(self.state.get(key, start))
        self._active_loops.append(name)
        try:
            while i < stop:
                self.state[key] = i
                yield i
                # Re-read: the body may have been restored to a different epoch.
                i = int(self.state[key]) + step
        finally:
            self._exit_loop(name, enclosing)

    def while_range(self, name: str) -> Iterator[int]:
        """Resumable unbounded counter backing instrumented ``while`` loops.

        The precompiler rewrites ``# ccc: loop(w)`` + ``while cond:`` into
        ``for _ in ctx.while_range("w"): if not cond: break`` — the
        counter persists like :meth:`range`'s and the condition (over
        saved state) is re-evaluated at the top of every iteration.
        """
        key = f"__loop_{name}"
        self._check_not_running(name)
        enclosing = self._loop_position()
        if self._completed_here(name, key, enclosing):
            return
        i = int(self.state.get(key, 0))
        self._active_loops.append(name)
        try:
            while True:
                self.state[key] = i
                yield i
                i = int(self.state[key]) + 1
        finally:
            self._exit_loop(name, enclosing)

    def _check_not_running(self, name: str) -> None:
        """A loop name may not be re-entered while that loop still runs —
        the counter key would be shared between the two instances."""
        if name in self._active_loops:
            raise StateError(
                f"resumable loop {name!r} entered while already running "
                "(loop names must be unique)"
            )

    def _loop_position(self) -> tuple:
        """The current loop-position stack as ((name, index), ...)."""
        return tuple((n, int(self.state[f"__loop_{n}"]))
                     for n in self._active_loops)

    def _completed_here(self, name: str, key: str, enclosing: tuple) -> bool:
        """Did this loop already complete at this exact position?

        True only when the loop is not live (no counter to resume) and
        its completion token matches the current enclosing position —
        i.e. post-restore re-execution is passing over a loop that
        finished before the checkpoint was taken.
        """
        if key in self.state:
            return False
        return _canonical_position(self.state.get(f"__loopfin_{name}")) \
            == enclosing

    def _exit_loop(self, name: str, enclosing: tuple) -> None:
        """Leaving a loop (completion or ``break``): pop its counter and
        phase markers, record the completion token."""
        for idx in range(len(self._active_loops) - 1, -1, -1):
            if self._active_loops[idx] == name:
                del self._active_loops[idx]
                break
        key = f"__loop_{name}"
        if key in self.state:
            del self.state[key]
        prefix = _phase_key(name, "")
        for stale in [k for k in self.state if k.startswith(prefix)]:
            del self.state[stale]
        self.state[f"__loopfin_{name}"] = enclosing

    def first_time(self, name: str) -> bool:
        """True until :meth:`done` is called for ``name`` (survives restart)."""
        return not self.state.get(f"__done_{name}", False)

    def done(self, name: str) -> None:
        """Mark a one-time section complete."""
        self.state[f"__done_{name}"] = True

    def once(self, name: str, fn: Callable[[], Any]) -> None:
        """Run ``fn`` once per job lifetime (skipped after restart)."""
        if self.first_time(name):
            fn()
            self.done(name)

    # -- sub-iteration phases ----------------------------------------------------
    # A checkpoint pragma in the *middle* of a loop body resumes at the top
    # of the interrupted iteration; phase guards skip the already-executed
    # first part.  This is the Python analog of C3 resuming at a mid-loop
    # pragma location.  Mixed placements across ranks are exactly what the
    # coordination protocol's late/early machinery makes consistent.
    def phase_pending(self, loop_name: str, phase_name: str) -> bool:
        """Has this phase NOT yet run in the current iteration of the loop?"""
        loop_key = f"__loop_{loop_name}"
        if loop_key not in self.state:
            raise StateError(f"phase guard outside ctx.range({loop_name!r})")
        cur = int(self.state[loop_key])
        marker = self.state.get(_phase_key(loop_name, phase_name), -1)
        return int(marker) < cur

    def phase_done(self, loop_name: str, phase_name: str) -> None:
        """Mark the phase complete for the current iteration."""
        cur = int(self.state[f"__loop_{loop_name}"])
        self.state[_phase_key(loop_name, phase_name)] = cur

    # -- checkpoint plumbing (used by the C3 layer) --------------------------------------
    def snapshot_state(self) -> dict:
        return {
            "state": self.state.to_dict(),
            "heap": self.heap.snapshot(),
            "registry": self.registry.snapshot(),
            "pragma_count": self.pragma_count,
        }

    def restore_state(self, snap: dict) -> None:
        self.state.replace_all(snap["state"])
        self.heap = SimHeap.from_snapshot(snap["heap"])
        self.registry.restore(snap["registry"])
        self.pragma_count = snap["pragma_count"]
        self.restored = True

    @property
    def checkpoint_bytes(self) -> int:
        """Application-state bytes a checkpoint would save (live data only)."""
        return self.state.nbytes + self.heap.live_bytes
