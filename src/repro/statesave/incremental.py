"""Incremental checkpointing (the paper's Section 8 future-work item).

"We are incorporating incremental checkpointing into our system, which
will permit the system to save only those data that have been modified
since the last checkpoint."

The tracker works at page granularity, like the system-level incremental
checkpointers it is modelled on: each registered array is divided into
4 KiB pages, a digest per page is kept from the previous checkpoint, and
a save emits only the dirty pages (plus enough geometry to rebuild the
array).  Restoring walks the version chain backwards to the most recent
*full* save and applies patches forward.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

PAGE = 4096


class IncrementalError(Exception):
    """Broken patch chain or geometry mismatch."""


def _page_digests(raw: bytes) -> List[bytes]:
    return [hashlib.sha1(raw[i:i + PAGE]).digest() for i in range(0, len(raw), PAGE)]


class IncrementalTracker:
    """Per-rank dirty-page tracker across checkpoint versions."""

    def __init__(self, full_interval: int = 8):
        if full_interval < 1:
            raise ValueError("full_interval must be >= 1")
        #: force a full save every N checkpoints to bound restore chains
        self.full_interval = full_interval
        self._digests: Dict[str, List[bytes]] = {}
        #: tracked array geometry: name -> (dtype, shape, nbytes).  A delta
        #: is only valid against an identical geometry — equal byte counts
        #: are NOT enough (a dtype or shape change with the same nbytes
        #: would silently flip the chain's metadata mid-stream).
        self._geometry: Dict[str, Tuple[str, tuple, int]] = {}
        self._saves_since_full = 0

    # -- saving -------------------------------------------------------------
    def encode(self, arrays: Dict[str, np.ndarray], force_full: bool = False) -> dict:
        """Produce a full or incremental record for the given arrays."""
        full = (
            force_full
            or not self._digests
            or self._saves_since_full + 1 >= self.full_interval
        )
        record: dict = {"full": full, "arrays": {}}
        new_digests: Dict[str, List[bytes]] = {}
        new_geometry: Dict[str, Tuple[str, tuple, int]] = {}
        for name, arr in arrays.items():
            raw = np.ascontiguousarray(arr).tobytes()
            digests = _page_digests(raw)
            new_digests[name] = digests
            geometry = (arr.dtype.str, tuple(arr.shape), len(raw))
            new_geometry[name] = geometry
            meta = {"dtype": arr.dtype.str, "shape": tuple(arr.shape),
                    "nbytes": len(raw)}
            if full or name not in self._digests or \
                    self._geometry.get(name) != geometry:
                record["arrays"][name] = {**meta, "kind": "full", "data": raw}
            else:
                old = self._digests[name]
                dirty = [i for i, d in enumerate(digests) if d != old[i]]
                pages = {i: raw[i * PAGE:(i + 1) * PAGE] for i in dirty}
                record["arrays"][name] = {**meta, "kind": "delta",
                                          "pages": pages}
        # Arrays that disappeared are recorded as deletions so restore chains
        # do not resurrect them.
        for name in self._digests:
            if name not in arrays:
                record["arrays"][name] = {"kind": "deleted"}
        self._digests = new_digests
        self._geometry = new_geometry
        self._saves_since_full = 0 if full else self._saves_since_full + 1
        return record

    @staticmethod
    def record_bytes(record: dict) -> int:
        """Payload bytes a record would write (the Table-4 'size/proc' analog)."""
        total = 0
        for entry in record["arrays"].values():
            if entry["kind"] == "full":
                total += len(entry["data"])
            elif entry["kind"] == "delta":
                total += sum(len(p) for p in entry["pages"].values())
        return total

    # -- restoring ------------------------------------------------------------
    @staticmethod
    def decode_chain(records: List[dict]) -> Dict[str, np.ndarray]:
        """Rebuild arrays from a chain ending at the wanted version.

        ``records`` must be ordered oldest-to-newest and the first one must
        be a full record (callers locate the latest full save first).
        """
        if not records:
            raise IncrementalError("empty record chain")
        if not records[0]["full"]:
            raise IncrementalError("record chain does not start at a full save")
        state: Dict[str, bytearray] = {}
        meta: Dict[str, Tuple[str, tuple]] = {}
        for rec in records:
            for name, entry in rec["arrays"].items():
                if entry["kind"] == "deleted":
                    state.pop(name, None)
                    meta.pop(name, None)
                    continue
                if entry["kind"] == "full":
                    state[name] = bytearray(entry["data"])
                    meta[name] = (entry["dtype"], tuple(entry["shape"]))
                elif entry["kind"] == "delta":
                    if name not in state:
                        raise IncrementalError(
                            f"delta for unknown array {name!r} (chain broken)"
                        )
                    buf = state[name]
                    if (len(buf) != entry["nbytes"]
                            or meta[name] != (entry["dtype"],
                                              tuple(entry["shape"]))):
                        raise IncrementalError(
                            f"geometry change for {name!r} without a full save"
                        )
                    for i, page in entry["pages"].items():
                        buf[i * PAGE:i * PAGE + len(page)] = page
                else:
                    raise IncrementalError(f"unknown record kind {entry['kind']!r}")
        out: Dict[str, np.ndarray] = {}
        for name, buf in state.items():
            dtype, shape = meta[name]
            out[name] = np.frombuffer(bytes(buf), dtype=np.dtype(dtype)).reshape(shape).copy()
        return out
