"""Versioned checkpoint files.

``chkpt_StartCheckpoint`` "creates a checkpoint version and directory"
(Figure 5) and writes sections into it; ``chkpt_CommitCheckpoint`` adds
the late-message registry and commits.  :class:`CheckpointWriter` and
:class:`CheckpointReader` implement that file format over a storage
backend: named sections, each a serialized value, committed atomically
with a per-rank marker.

The writer supports a *dry-run* mode in which all serialization work is
performed and byte counts accounted, but nothing is stored — this is
configuration #2 of Tables 4 and 5 ("going through the motions of taking
a checkpoint without actually saving anything to disk").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..storage.manifest import record_commit, section_path
from ..storage.stable import StorageBackend, StorageError
from .serializer import Serializer


class CheckpointError(Exception):
    """Invalid checkpoint operation (double commit, missing section, ...)."""


class CheckpointWriter:
    """Accumulates sections for one (version, rank) checkpoint."""

    def __init__(self, storage: StorageBackend, version: int, rank: int,
                 portable: bool = False, dry_run: bool = False):
        self.storage = storage
        self.version = version
        self.rank = rank
        self.dry_run = dry_run
        self._serializer = Serializer(portable=portable)
        self._written: Dict[str, int] = {}
        self.committed = False

    def save(self, section: str, value: Any) -> int:
        """Serialize and store one section; returns its size in bytes."""
        if self.committed:
            raise CheckpointError("checkpoint already committed")
        if section in self._written:
            raise CheckpointError(f"section {section!r} already written")
        payload = self._serializer.dumps(value)
        if not self.dry_run:
            self.storage.write(section_path(self.version, self.rank, section),
                               payload)
        self._written[section] = len(payload)
        return len(payload)

    @property
    def bytes_written(self) -> int:
        """Total serialized bytes across all sections written so far."""
        return sum(self._written.values())

    @property
    def sections(self) -> List[str]:
        """Names of the sections written so far (sorted)."""
        return sorted(self._written)

    def commit(self) -> None:
        """Write the commit marker; the checkpoint becomes restart-eligible."""
        if self.committed:
            raise CheckpointError("checkpoint already committed")
        if not self.dry_run:
            record_commit(self.storage, self.version, self.rank)
        self.committed = True


class CheckpointReader:
    """Reads sections of one (version, rank) checkpoint."""

    def __init__(self, storage: StorageBackend, version: int, rank: int):
        self.storage = storage
        self.version = version
        self.rank = rank
        self._serializer = Serializer()

    def load(self, section: str) -> Any:
        """Read and deserialize one section (raises if missing)."""
        try:
            payload = self.storage.read(
                section_path(self.version, self.rank, section))
        except StorageError:
            raise CheckpointError(
                f"rank {self.rank} checkpoint v{self.version} has no section "
                f"{section!r}"
            ) from None
        return self._serializer.loads(payload)

    def has(self, section: str) -> bool:
        """Does this checkpoint contain ``section``?"""
        return self.storage.exists(section_path(self.version, self.rank, section))

    def total_bytes(self) -> int:
        """Payload bytes of every stored section (excluding the marker)."""
        prefix = f"ckpt/v{self.version}/rank{self.rank}/"
        return sum(
            len(self.storage.read(p))
            for p in self.storage.list(prefix)
            if not p.endswith("/COMMIT")
        )
