"""Versioned checkpoint files.

``chkpt_StartCheckpoint`` "creates a checkpoint version and directory"
(Figure 5) and writes sections into it; ``chkpt_CommitCheckpoint`` adds
the late-message registry and commits.  :class:`CheckpointWriter` and
:class:`CheckpointReader` implement that file format over a storage
backend: named sections, each a serialized value, committed atomically
with a per-rank marker.

The writer supports a *dry-run* mode in which all serialization work is
performed and byte counts accounted, but nothing is stored — this is
configuration #2 of Tables 4 and 5 ("going through the motions of taking
a checkpoint without actually saving anything to disk").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..storage.manifest import section_digest
from ..storage.stable import StorageError
from ..storage.store import as_store
from .serializer import Serializer


class CheckpointError(Exception):
    """Invalid checkpoint operation (double commit, missing section, ...)."""


class CheckpointWriter:
    """Accumulates sections for one (version, rank) checkpoint.

    Section payloads are written to the backend as they are saved (the
    staging step of the overlapped pipeline: serialization *is* the
    copy-on-write snapshot, so the application may mutate its state the
    moment ``save`` returns).  The line only becomes restart-eligible at
    :meth:`commit`, which records a manifest of every section's size and
    content digest in the COMMIT marker — the overlapped drain path
    defers that call until the staged bytes are durable in virtual time.
    """

    def __init__(self, storage, version: int, rank: int,
                 portable: bool = False, dry_run: bool = False):
        self.storage = storage
        self.store = as_store(storage)
        self.version = version
        self.rank = rank
        self.dry_run = dry_run
        self._serializer = Serializer(portable=portable)
        self._written: Dict[str, Tuple[int, str]] = {}
        self.committed = False
        #: a section write hit a storage error (disk full, injected
        #: fault): the line can never commit — :meth:`commit` raises and
        #: the protocol abandons it, falling back to the previous line
        self.failed = False

    def save(self, section: str, value: Any) -> int:
        """Serialize and store one section; returns its size in bytes.

        A :class:`StorageError` from the backend marks the writer failed
        instead of propagating: state saving happens mid-protocol (the
        epoch has advanced, peers were announced), so the job must carry
        on — only this rank's copy of the line is lost, and the commit
        step turns that into a clean abandonment.
        """
        if self.committed:
            raise CheckpointError("checkpoint already committed")
        if section in self._written:
            raise CheckpointError(f"section {section!r} already written")
        payload = self._serializer.dumps(value)
        if self.dry_run or self.failed:
            self._written[section] = (len(payload), "")
        else:
            try:
                self.store.put_section(self.version, self.rank, section,
                                       payload)
            except StorageError:
                self.failed = True
                self._written[section] = (len(payload), "")
            else:
                self._written[section] = (len(payload),
                                          section_digest(payload))
        return len(payload)

    @property
    def bytes_written(self) -> int:
        """Total serialized bytes across all sections written so far."""
        return sum(nbytes for nbytes, _ in self._written.values())

    @property
    def sections(self) -> List[str]:
        """Names of the sections written so far (sorted)."""
        return sorted(self._written)

    @property
    def manifest(self) -> Dict[str, Tuple[int, str]]:
        """section -> (nbytes, digest) for everything written so far."""
        return dict(self._written)

    def commit(self) -> None:
        """Write the commit marker; the checkpoint becomes restart-eligible."""
        if self.committed:
            raise CheckpointError("checkpoint already committed")
        if self.failed:
            raise StorageError(
                f"checkpoint v{self.version} rank {self.rank} abandoned: "
                "a section write failed")
        if not self.dry_run:
            self.store.commit_line(self.version, self.rank,
                                   sections=self._written)
        self.committed = True


class CheckpointReader:
    """Reads sections of one (version, rank) checkpoint.

    When the line's COMMIT marker carries a manifest, every ``load``
    verifies the payload's size and digest against it, so a torn or
    corrupted section surfaces as :class:`CheckpointError` instead of a
    garbage restore.
    """

    def __init__(self, storage, version: int, rank: int):
        self.storage = storage
        self.store = as_store(storage)
        self.version = version
        self.rank = rank
        self._serializer = Serializer()
        self._manifest: Optional[dict] = self.store.line_manifest(version, rank)

    def load(self, section: str) -> Any:
        """Read, verify, and deserialize one section (raises if missing)."""
        try:
            payload = self.store.read_section(self.version, self.rank, section)
        except StorageError:
            raise CheckpointError(
                f"rank {self.rank} checkpoint v{self.version} has no section "
                f"{section!r}"
            ) from None
        if self._manifest is not None:
            entry = self._manifest["sections"].get(section)
            if entry is None:
                raise CheckpointError(
                    f"rank {self.rank} checkpoint v{self.version} manifest "
                    f"does not list section {section!r}")
            nbytes, digest = entry
            if len(payload) != nbytes or section_digest(payload) != digest:
                raise CheckpointError(
                    f"rank {self.rank} checkpoint v{self.version} section "
                    f"{section!r} is torn (size/digest mismatch)")
        return self._serializer.loads(payload)

    def has(self, section: str) -> bool:
        """Does this checkpoint contain ``section``?"""
        return self.store.has_section(self.version, self.rank, section)

    def total_bytes(self) -> int:
        """Payload bytes of every stored section (excluding the marker).

        Manifest-first, like :meth:`CheckpointStore.checkpoint_bytes`:
        sizes come from the commit record or stored object metadata —
        payloads are never read just to be measured.
        """
        if self._manifest is not None:
            return sum(int(nbytes)
                       for nbytes, _ in self._manifest["sections"].values())
        return self.store.checkpoint_bytes(self.version, self.rank)
