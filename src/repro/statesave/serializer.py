"""Checkpoint serialization.

Two formats, mirroring Section 5 of the paper:

* **binary** (default) — values are dumped as raw bytes with minimal framing,
  "irrespective of the data's type", favouring efficiency and transparency
  over portability, exactly like C3's design philosophy;
* **portable** — every value is tagged with its type and numeric data is
  canonicalized to little-endian, so a checkpoint taken on one platform can
  be restored on another (the paper's grid-environment extension).

The serializer is self-contained (no pickle): it supports ``None``, bools,
ints, floats, complex, str, bytes, lists, tuples, dicts with str/int/tuple
keys, and numpy arrays.  That covers everything the runtime checkpoints:
application state, protocol registries (which hold message payload bytes),
counters, and handle tables.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Tuple

import numpy as np

MAGIC_BINARY = b"C3BN"
MAGIC_PORTABLE = b"C3PT"
FORMAT_VERSION = 1

# type tags
_T_NONE = 0
_T_BOOL = 1
_T_INT = 2
_T_FLOAT = 3
_T_COMPLEX = 4
_T_STR = 5
_T_BYTES = 6
_T_LIST = 7
_T_TUPLE = 8
_T_DICT = 9
_T_NDARRAY = 10


class SerializationError(Exception):
    """A value cannot be checkpointed or a payload is corrupt."""


def _pack_varint(n: int) -> bytes:
    """Signed integer, zig-zag + LEB128.

    Python integers are arbitrary precision, and so is LEB128 — no
    special big-number escape is needed (an escape byte would collide
    with legal continuation bytes).
    """
    z = 2 * n if n >= 0 else -2 * n - 1  # zig-zag, any magnitude
    out = bytearray()
    while True:
        b = z & 0x7F
        z >>= 7
        if z:
            out.append(b | 0x80)
        else:
            out.append(b)
            break
    return bytes(out)


def _unpack_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    shift = 0
    z = 0
    while True:
        b = buf[pos]
        pos += 1
        z |= (b & 0x7F) << shift
        if not b & 0x80:
            break
        shift += 7
    return (z >> 1) if z % 2 == 0 else -((z + 1) >> 1), pos


class Serializer:
    """Encode/decode checkpoint values in one of the two formats."""

    def __init__(self, portable: bool = False):
        self.portable = portable

    # -- public API ----------------------------------------------------------
    def dumps(self, value: Any) -> bytes:
        out = bytearray()
        out += MAGIC_PORTABLE if self.portable else MAGIC_BINARY
        out += struct.pack("<H", FORMAT_VERSION)
        self._encode(value, out)
        return bytes(out)

    def loads(self, payload: bytes) -> Any:
        if len(payload) < 6:
            raise SerializationError("payload too short for header")
        magic = payload[:4]
        if magic not in (MAGIC_BINARY, MAGIC_PORTABLE):
            raise SerializationError(f"bad magic {magic!r}")
        (version,) = struct.unpack_from("<H", payload, 4)
        if version != FORMAT_VERSION:
            raise SerializationError(f"unsupported format version {version}")
        portable = magic == MAGIC_PORTABLE
        value, pos = self._decode(payload, 6, portable)
        if pos != len(payload):
            raise SerializationError(f"{len(payload) - pos} trailing bytes")
        return value

    # -- encoding --------------------------------------------------------------
    def _encode(self, v: Any, out: bytearray) -> None:
        if v is None:
            out.append(_T_NONE)
        elif isinstance(v, (bool, np.bool_)):
            out.append(_T_BOOL)
            out.append(1 if v else 0)
        elif isinstance(v, (int, np.integer)):
            out.append(_T_INT)
            out += _pack_varint(int(v))
        elif isinstance(v, (float, np.floating)):
            out.append(_T_FLOAT)
            out += struct.pack("<d", float(v))
        elif isinstance(v, (complex, np.complexfloating)):
            out.append(_T_COMPLEX)
            out += struct.pack("<dd", v.real, v.imag)
        elif isinstance(v, str):
            raw = v.encode("utf-8")
            out.append(_T_STR)
            out += _pack_varint(len(raw))
            out += raw
        elif isinstance(v, (bytes, bytearray, memoryview)):
            raw = bytes(v)
            out.append(_T_BYTES)
            out += _pack_varint(len(raw))
            out += raw
        elif isinstance(v, list):
            out.append(_T_LIST)
            out += _pack_varint(len(v))
            for item in v:
                self._encode(item, out)
        elif isinstance(v, tuple):
            out.append(_T_TUPLE)
            out += _pack_varint(len(v))
            for item in v:
                self._encode(item, out)
        elif isinstance(v, dict):
            out.append(_T_DICT)
            out += _pack_varint(len(v))
            for k, item in v.items():
                self._encode(k, out)
                self._encode(item, out)
        elif isinstance(v, np.ndarray):
            self._encode_ndarray(v, out)
        else:
            raise SerializationError(
                f"cannot checkpoint value of type {type(v).__name__}"
            )

    def _encode_ndarray(self, a: np.ndarray, out: bytearray) -> None:
        if a.dtype.hasobject:
            raise SerializationError("object-dtype arrays cannot be checkpointed")
        arr = np.ascontiguousarray(a)
        if self.portable and arr.dtype.byteorder == ">":
            arr = arr.astype(arr.dtype.newbyteorder("<"))
        out.append(_T_NDARRAY)
        dtype_str = arr.dtype.str  # includes byte order: portable restore works
        self._encode(dtype_str, out)
        out += _pack_varint(arr.ndim)
        for s in arr.shape:
            out += _pack_varint(s)
        raw = arr.tobytes()
        out += _pack_varint(len(raw))
        out += raw

    # -- decoding -----------------------------------------------------------------
    def _decode(self, buf: bytes, pos: int, portable: bool) -> Tuple[Any, int]:
        tag = buf[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_BOOL:
            return bool(buf[pos]), pos + 1
        if tag == _T_INT:
            return _unpack_varint(buf, pos)
        if tag == _T_FLOAT:
            (x,) = struct.unpack_from("<d", buf, pos)
            return x, pos + 8
        if tag == _T_COMPLEX:
            re, im = struct.unpack_from("<dd", buf, pos)
            return complex(re, im), pos + 16
        if tag == _T_STR:
            n, pos = _unpack_varint(buf, pos)
            return buf[pos:pos + n].decode("utf-8"), pos + n
        if tag == _T_BYTES:
            n, pos = _unpack_varint(buf, pos)
            return bytes(buf[pos:pos + n]), pos + n
        if tag == _T_LIST or tag == _T_TUPLE:
            n, pos = _unpack_varint(buf, pos)
            items = []
            for _ in range(n):
                item, pos = self._decode(buf, pos, portable)
                items.append(item)
            return (tuple(items) if tag == _T_TUPLE else items), pos
        if tag == _T_DICT:
            n, pos = _unpack_varint(buf, pos)
            d: Dict[Any, Any] = {}
            for _ in range(n):
                k, pos = self._decode(buf, pos, portable)
                v, pos = self._decode(buf, pos, portable)
                d[k] = v
            return d, pos
        if tag == _T_NDARRAY:
            dtype_str, pos = self._decode(buf, pos, portable)
            ndim, pos = _unpack_varint(buf, pos)
            shape = []
            for _ in range(ndim):
                s, pos = _unpack_varint(buf, pos)
                shape.append(s)
            nbytes, pos = _unpack_varint(buf, pos)
            arr = np.frombuffer(buf[pos:pos + nbytes], dtype=np.dtype(dtype_str))
            return arr.reshape(shape).copy(), pos + nbytes
        raise SerializationError(f"unknown type tag {tag} at offset {pos - 1}")


#: module-level conveniences
_BINARY = Serializer(portable=False)
_PORTABLE = Serializer(portable=True)


def dumps(value: Any, portable: bool = False) -> bytes:
    """Serialize a checkpoint value to bytes (module-level convenience)."""
    return (_PORTABLE if portable else _BINARY).dumps(value)


def loads(payload: bytes) -> Any:
    """Deserialize a checkpoint payload (either format)."""
    return _BINARY.loads(payload)
