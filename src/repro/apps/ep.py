"""EP — embarrassingly parallel random-number kernel (NPB EP analog).

Each rank generates Gaussian pairs by the Marsaglia polar method from a
deterministic seed, tallies them into annulus counts, and only
communicates in a final reduction.  Checkpoints are tiny — only the batch
cursor and ten counters — which is exactly why EP shows the largest
Condor-vs-C3 reduction in Table 1 (the system-level image is dominated by
the static segment, which C3 never saves).
"""

from __future__ import annotations

import numpy as np

from ..mpi.ops import SUM
from .kernels import checksum, seeded_rng


def ep(ctx, pairs_per_batch: int = 4096, batches: int = 12,
       work_scale: float = 1.0):
    comm = ctx.comm
    rank = ctx.rank

    if ctx.first_time("setup"):
        ctx.state.counts = np.zeros(10, dtype=np.int64)
        ctx.state.sx = 0.0
        ctx.state.sy = 0.0
        ctx.done("setup")

    s = ctx.state

    for batch in ctx.range("batch", batches):
        ctx.checkpoint()
        rng = seeded_rng("ep", rank, extra=batch)
        u = rng.uniform(-1.0, 1.0, size=(pairs_per_batch, 2))
        t = np.sum(u * u, axis=1)
        accept = (t > 0.0) & (t <= 1.0)
        ua, ta = u[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        x = ua[:, 0] * factor
        y = ua[:, 1] * factor
        s.sx += float(x.sum())
        s.sy += float(y.sum())
        annulus = np.minimum(np.maximum(np.abs(x), np.abs(y)).astype(np.int64), 9)
        s.counts += np.bincount(annulus, minlength=10)[:10]
        ctx.work(25.0 * pairs_per_batch * work_scale)

    total = np.zeros(10, dtype=np.int64)
    comm.Allreduce(s.counts, total, SUM)
    sums = np.zeros(2)
    comm.Allreduce(np.array([s.sx, s.sy]), sums, SUM)
    return checksum(total.astype(np.float64), sums)
