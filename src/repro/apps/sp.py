"""SP — scalar penta-diagonal ADI solver (NPB SP analog).

Multi-partition style: every time step performs three directional
sweeps; the x-sweep is local, the y- and z-sweeps are reached through
all-to-all transposes of the partitioned state.  Almost all computation
happens "within a subroutine call made within the step loop" and the
pragma sits at the bottom of that loop (Section 6.3).
"""

from __future__ import annotations

import numpy as np

from .kernels import checksum, seeded_rng


def sp(ctx, local_rows: int = 8, row_len: int = 64, niter: int = 10,
       work_scale: float = 1.0, sweep_flops: float = 18.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    # the transpose needs row_len divisible by nprocs
    row_len = max(size, (row_len // size) * size)

    if ctx.first_time("setup"):
        rng = seeded_rng("sp", rank)
        ctx.state.u = rng.standard_normal((local_rows, row_len)) * 0.01 + 1.0
        ctx.state.scratch = np.zeros((local_rows, row_len))
        ctx.done("setup")

    s = ctx.state
    flops = sweep_flops * local_rows * row_len * work_scale

    def sweep(u: np.ndarray) -> np.ndarray:
        # tridiagonal-ish relaxation along the second axis
        out = u.copy()
        out[:, 1:] += 0.25 * u[:, :-1]
        out[:, :-1] += 0.25 * u[:, 1:]
        return out / 1.5

    for it in ctx.range("step", niter):
        ctx.checkpoint()
        u = s.u
        # x-sweep: local
        u = sweep(u)
        ctx.work(flops)
        # y-sweep: transpose, sweep, transpose back
        comm.Alltoall(np.ascontiguousarray(u), s.scratch)
        t = sweep(s.scratch.reshape(local_rows, row_len))
        ctx.work(flops)
        comm.Alltoall(np.ascontiguousarray(t), s.scratch)
        u = s.scratch.reshape(local_rows, row_len).copy()
        # z-sweep: local again (multi-partition keeps z resident)
        u = sweep(u)
        ctx.work(flops)
        s.u = u

    return checksum(s.u)


def bt(ctx, local_rows: int = 8, row_len: int = 64, niter: int = 10,
       work_scale: float = 1.0):
    """BT — block-tridiagonal ADI solver (NPB BT analog).

    Identical multi-partition communication structure to SP, with the
    denser 5x5 block solves of BT modelled as a ~3x higher per-sweep FLOP
    charge.
    """
    return sp(ctx, local_rows=local_rows, row_len=row_len, niter=niter,
              work_scale=work_scale, sweep_flops=55.0)
