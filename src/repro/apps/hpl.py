"""HPL — high-performance Linpack analog.

Blocked LU factorization with panel broadcasts.  The paper's checkpoint
placement is "at the top of the innermost driver loop in main"
(Section 6.3): *between* problem instances, where the live state is just
the trial cursor and the residual results.  The factorization matrix is
regenerated from its seed at the start of each trial, which is why HPL's
checkpoints in Tables 4-5 are tiny (0.02-0.43 MB) despite the matrix
being the largest object in the run — a textbook example of trading
state-saving for recomputation (Section 8).

The matrix is replicated (every rank holds the full factorization so the
numerics are identical everywhere); the *work* of each trailing update is
modelled as distributed by charging 1/nprocs of its FLOPs per rank, and
each panel is broadcast by its owner exactly as HPL broadcasts panels
along process rows.
"""

from __future__ import annotations

import numpy as np

from ..mpi.ops import MAX
from .kernels import checksum, seeded_rng


def hpl(ctx, n: int = 96, block: int = 16, trials: int = 4,
        work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    nblocks = (n + block - 1) // block

    if ctx.first_time("setup"):
        ctx.state.residuals = np.zeros(trials)
        ctx.done("setup")

    s = ctx.state

    for trial in ctx.range("trial", trials):
        ctx.checkpoint()  # the innermost driver loop pragma
        # Regenerate this trial's matrix from the seed — recomputation
        # instead of state saving (same matrix on every rank).
        rng = seeded_rng("hpl", 0, extra=trial)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        lu = a.copy()
        panel = np.zeros((n, block))
        for k in range(nblocks):
            k0, k1 = k * block, min((k + 1) * block, n)
            width = k1 - k0
            owner = k % size
            if rank == owner:
                # factor the panel columns (unblocked, no pivoting needed:
                # the matrix is strongly diagonally dominant)
                for j in range(k0, k1):
                    lu[j + 1:, j] /= lu[j, j]
                    lu[j + 1:, j + 1:k1] -= np.outer(lu[j + 1:, j],
                                                     lu[j, j + 1:k1])
                panel[:, :width] = lu[:, k0:k1]
            comm.Bcast(panel, root=owner)
            lu[:, k0:k1] = panel[:, :width]
            # trailing update (replicated data, distributed work charge)
            if k1 < n:
                l21 = lu[k1:, k0:k1]
                u12 = lu[k0:k1, k1:].copy()
                for j in range(width):
                    u12[j + 1:] -= np.outer(lu[k0 + j + 1:k1, k0 + j], u12[j])
                lu[k0:k1, k1:] = u12
                lu[k1:, k1:] -= l21 @ u12
            ctx.work(2.0 * (n - k1) * width * max(1, n - k1) / size
                     * work_scale)
        x = np.linalg.solve(np.tril(lu, -1) + np.eye(n), b)
        x = np.linalg.solve(np.triu(lu), x)
        resid_local = np.array([float(np.abs(a @ x - b).max())])
        resid = np.zeros(1)
        comm.Allreduce(resid_local, resid, MAX)
        s.residuals[trial] = float(resid[0])

    return checksum(s.residuals)
