"""Ring — the minimal demo application (used by the quickstart)."""

from __future__ import annotations

import numpy as np

from ..mpi.ops import SUM
from .kernels import checksum


def ring(ctx, payload: int = 16, niter: int = 12, work: float = 1e-4):
    """Pass a growing payload around the ring; allreduce a running sum."""
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    right, left = (rank + 1) % size, (rank - 1) % size

    if ctx.first_time("setup"):
        ctx.state.x = np.arange(payload, dtype=np.float64) * (rank + 1)
        ctx.state.total = 0.0
        ctx.done("setup")

    s = ctx.state
    for it in ctx.range("it", niter):
        ctx.checkpoint()
        comm.Send(s.x, dest=right, tag=1)
        buf = np.empty(payload)
        comm.Recv(buf, source=left, tag=1)
        s.x = buf * 0.99 + it
        out = np.zeros(1)
        comm.Allreduce(np.array([float(s.x.sum())]), out, SUM)
        s.total += float(out[0])
        ctx.compute(work)
    return checksum(s.x, [s.total])
