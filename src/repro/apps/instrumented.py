"""Precompiler-instrumented app kernels: the Figure-1 pipeline end to end.

The handwritten kernels in this package are already *written against* the
:class:`~repro.statesave.context.Context` API — the post-precompiler
form.  This module carries the **pre**-precompiler form of six of them:
plain Python functions using ordinary local variables and ordinary
``for``/``while`` loops, annotated only with ``# ccc:`` directives, and
run through :func:`repro.precompiler.instrument` at import time.  Their
checkpoints flow through exactly the production path — ``ctx.state`` →
:mod:`repro.statesave.serializer` → (optionally)
:class:`~repro.statesave.incremental.IncrementalTracker` → storage — and
the recovery campaign kills and restarts them like any other kernel.

Directive coverage across the six kernels:

=========  ==========================================================
kernel     exercises
=========  ==========================================================
``heat``   save / setup-end / loop / checkpoint (the canonical form)
``ring``   ``ccc: call`` guard (one-time payload init skipped on restart)
``CG``     ``ccc: loop`` on a **while** loop (condition over saved state)
``LU``     non-blocking receives into saved arrays, a lambda under the
           scope-aware rewriter (``cached_comm`` factory)
``MG``     **nested** ``ccc: loop`` with a mid-V-cycle pragma — the
           checkpointed loop-position stack is two deep
``EP``     tiny state (ten counters + two sums): the Table-1 extreme
=========  ==========================================================

Each instrumented kernel computes bit-for-bit the same results as its
handwritten counterpart (pinned by ``tests/apps/test_instrumented.py``),
so every verification the campaign does against golden runs carries over.
"""

from __future__ import annotations

import numpy as np

from ..core.ccc import cached_comm
from ..mpi.communicator import PROC_NULL
from ..mpi.ops import MAX, SUM
from ..precompiler import instrument
from .kernels import checksum, csr_matvec, grid_2d, seeded_rng, sparse_rows


# ---------------------------------------------------------------------------
# heat — the canonical directive set
# ---------------------------------------------------------------------------

def _heat_src(ctx, local_n: int = 32, niter: int = 40, alpha: float = 0.4,
              t_left: float = 100.0, t_right: float = 0.0,
              work_scale: float = 1.0):
    # ccc: save(u, dmax)
    u = np.zeros(local_n)
    if ctx.rank == 0:
        u[0] = t_left
    if ctx.rank == ctx.size - 1:
        u[-1] = t_right
    dmax = np.inf
    # ccc: setup-end
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    left = rank - 1 if rank > 0 else PROC_NULL
    right = rank + 1 if rank + 1 < size else PROC_NULL
    # ccc: loop(step)
    for step in range(niter):
        # ccc: checkpoint
        ghost_l = np.array([u[0]])
        ghost_r = np.array([u[-1]])
        if left != PROC_NULL:
            comm.Sendrecv(np.ascontiguousarray(u[:1]), left, 7,
                          ghost_l, left, 8)
        if right != PROC_NULL:
            comm.Sendrecv(np.ascontiguousarray(u[-1:]), right, 8,
                          ghost_r, right, 7)
        new = u.copy()
        new[1:-1] = u[1:-1] + alpha * (u[:-2] - 2 * u[1:-1] + u[2:])
        if left != PROC_NULL:
            new[0] = u[0] + alpha * (ghost_l[0] - 2 * u[0] + u[1])
        if right != PROC_NULL:
            new[-1] = u[-1] + alpha * (u[-2] - 2 * u[-1] + ghost_r[0])
        # clamp the physical boundary conditions
        if rank == 0:
            new[0] = t_left
        if rank == size - 1:
            new[-1] = t_right
        delta = float(np.abs(new - u).max())
        u = new
        dbuf = np.zeros(1)
        comm.Allreduce(np.array([delta]), dbuf, MAX)
        dmax = float(dbuf[0])
        ctx.work(6.0 * local_n * work_scale)
    return checksum(u, [dmax])


# ---------------------------------------------------------------------------
# ring — ccc: call guard for the one-time payload initialisation
# ---------------------------------------------------------------------------

def _ring_payload(payload: int, rank: int) -> np.ndarray:
    return np.arange(payload, dtype=np.float64) * (rank + 1)


def _ring_src(ctx, payload: int = 16, niter: int = 12, work: float = 1e-4):
    # ccc: save(total)
    total = 0.0
    # ccc: setup-end
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    right, left = (rank + 1) % size, (rank - 1) % size
    # ccc: call(init_x)
    x = _ring_payload(payload, rank)
    # ccc: loop(it)
    for it in range(niter):
        # ccc: checkpoint
        comm.Send(x, dest=right, tag=1)
        buf = np.empty(payload)
        comm.Recv(buf, source=left, tag=1)
        x = buf * 0.99 + it
        out = np.zeros(1)
        comm.Allreduce(np.array([float(x.sum())]), out, SUM)
        total += float(out[0])
        ctx.compute(work)
    return checksum(x, [total])


# ---------------------------------------------------------------------------
# CG — the main loop as an instrumented *while* loop
# ---------------------------------------------------------------------------

def _cg_src(ctx, local_n: int = 64, nnz_per_row: int = 8, niter: int = 15,
            work_scale: float = 1.0):
    # ccc: save(indptr, indices, values, x, r, p_full, rho, zeta, it)
    indptr, indices, values = sparse_rows("cg", ctx.rank, local_n,
                                          local_n * ctx.size, nnz_per_row)
    x = np.ones(local_n * ctx.size)
    r = np.zeros(local_n)
    p_full = np.zeros(local_n * ctx.size)
    rho = 1.0
    zeta = 0.0
    it = 0
    # ccc: setup-end
    comm = ctx.comm
    n = local_n * ctx.size
    flops_per_iter = 2.0 * len(values) * work_scale
    # ccc: loop(iter)
    while it < niter:
        # ccc: checkpoint
        # q = A p   (local rows of the matvec)
        q_local = csr_matvec(indptr, indices, values, p_full)
        ctx.work(flops_per_iter)
        # assemble p for the next iteration (transpose-exchange analog)
        comm.Allgather(np.ascontiguousarray(q_local), p_full)
        # dot products via allreduce
        local_dot = np.array([float(q_local @ q_local)])
        global_dot = np.zeros(1)
        comm.Allreduce(local_dot, global_dot, SUM)
        denom = float(global_dot[0]) or 1.0
        alpha = rho / denom
        r = r + alpha * q_local
        x = x * (1.0 - 1e-3) + alpha * p_full
        # normalize to keep values bounded over long runs
        norm_local = np.array([float(r @ r)])
        norm = np.zeros(1)
        comm.Allreduce(norm_local, norm, SUM)
        rho = float(norm[0]) / (n or 1)
        zeta = zeta + 1.0 / (1.0 + rho)
        p_full = p_full / (1.0 + np.sqrt(rho))
        it = it + 1
    return checksum(r, [rho, zeta])


# ---------------------------------------------------------------------------
# LU — non-blocking halos into saved arrays; lambda under the rewriter
# ---------------------------------------------------------------------------

def _lu_src(ctx, local_nx: int = 16, local_ny: int = 16, niter: int = 10,
            work_scale: float = 1.0):
    # ccc: save(u, halo_n, halo_w, halo_s, halo_e)
    rng = seeded_rng("lu", ctx.rank)
    u = rng.standard_normal((local_ny, local_nx)) * 0.01 + 1.0
    halo_n = np.zeros(local_nx)
    halo_w = np.zeros(local_ny)
    halo_s = np.zeros(local_nx)
    halo_e = np.zeros(local_ny)
    # ccc: setup-end
    comm = ctx.comm
    py, px = grid_2d(ctx.size)
    cart = cached_comm(ctx, "grid", lambda: comm.Cart_create(
        (py, px), (False, False)))
    north, south = cart.Shift(0, 1)
    west, east = cart.Shift(1, 1)
    flops = 10.0 * local_nx * local_ny * work_scale
    # ccc: loop(istep)
    for it in range(niter):
        # ccc: checkpoint
        # ---- lower sweep: NW -> SE wavefront -------------------------------
        reqs = []
        if north != PROC_NULL:
            reqs.append(cart.Irecv(halo_n, source=north, tag=10))
        if west != PROC_NULL:
            reqs.append(cart.Irecv(halo_w, source=west, tag=11))
        if reqs:
            cart.Waitall(reqs)
        top = halo_n if north != PROC_NULL else np.zeros(local_nx)
        left = halo_w if west != PROC_NULL else np.zeros(local_ny)
        u[0, :] = 0.8 * u[0, :] + 0.1 * top + 0.1 * u[0, :].mean()
        u[:, 0] = 0.8 * u[:, 0] + 0.1 * left + 0.1 * u[:, 0].mean()
        u[1:, :] = 0.9 * u[1:, :] + 0.1 * u[:-1, :]
        u[:, 1:] = 0.9 * u[:, 1:] + 0.1 * u[:, :-1]
        ctx.work(flops)
        if south != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[-1, :]), dest=south, tag=10)
        if east != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[:, -1]), dest=east, tag=11)
        # ---- upper sweep: SE -> NW wavefront -------------------------------
        reqs = []
        if south != PROC_NULL:
            reqs.append(cart.Irecv(halo_s, source=south, tag=12))
        if east != PROC_NULL:
            reqs.append(cart.Irecv(halo_e, source=east, tag=13))
        if reqs:
            cart.Waitall(reqs)
        bottom = halo_s if south != PROC_NULL else np.zeros(local_nx)
        right = halo_e if east != PROC_NULL else np.zeros(local_ny)
        u[-1, :] = 0.8 * u[-1, :] + 0.1 * bottom + 0.1 * u[-1, :].mean()
        u[:, -1] = 0.8 * u[:, -1] + 0.1 * right + 0.1 * u[:, -1].mean()
        u[:-1, :] = 0.9 * u[:-1, :] + 0.1 * u[1:, :]
        u[:, :-1] = 0.9 * u[:, :-1] + 0.1 * u[:, 1:]
        ctx.work(flops)
        if north != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[0, :]), dest=north, tag=12)
        if west != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[:, 0]), dest=west, tag=13)

    return checksum(u)


# ---------------------------------------------------------------------------
# MG — nested resumable loops (a two-deep loop-position stack)
# ---------------------------------------------------------------------------

def _mg_smooth(ctx, comm, v, lv, left, right, work_scale):
    """One Jacobi smoothing pass at level ``lv`` (halo ring exchange).

    Plain helper, not instrumented: it mutates the saved list in place
    through the reference the instrumented caller passes in.
    """
    arr = v[lv]
    recv_l = np.zeros(1)
    recv_r = np.zeros(1)
    comm.Sendrecv(np.ascontiguousarray(arr[-1:]), right, 20 + lv,
                  recv_l, left, 20 + lv)
    comm.Sendrecv(np.ascontiguousarray(arr[:1]), left, 40 + lv,
                  recv_r, right, 40 + lv)
    out = arr.copy()
    out[1:-1] = 0.5 * arr[1:-1] + 0.25 * (arr[:-2] + arr[2:])
    out[0] = 0.5 * arr[0] + 0.25 * (recv_l[0] + arr[1 % len(arr)])
    out[-1] = 0.5 * arr[-1] + 0.25 * (arr[-2] + recv_r[0])
    v[lv] = out
    ctx.work(4.0 * len(arr) * work_scale)


def _mg_src(ctx, local_n: int = 64, levels: int = 4, niter: int = 6,
            work_scale: float = 1.0):
    # ccc: save(v, resid)
    n0 = local_n if local_n % (1 << (levels - 1)) == 0 else \
        (1 << (levels - 1)) * max(1, local_n // (1 << (levels - 1)))
    rng = seeded_rng("mg", ctx.rank)
    v = [rng.standard_normal(n0 >> lv) * 0.01 for lv in range(levels)]
    resid = 1.0
    # ccc: setup-end
    comm = ctx.comm
    left, right = (ctx.rank - 1) % ctx.size, (ctx.rank + 1) % ctx.size
    # ccc: loop(cycle)
    for cycle in range(niter):
        # ccc: checkpoint
        # descend: smooth + restrict (resumable mid-V-cycle: a restore
        # lands on the exact (cycle, lv_down) position pair)
        # ccc: loop(lv_down)
        for lv in range(levels - 1):
            # ccc: checkpoint
            _mg_smooth(ctx, comm, v, lv, left, right, work_scale)
            fine = v[lv]
            v[lv + 1] = 0.5 * (fine[0::2] + fine[1::2])
        _mg_smooth(ctx, comm, v, levels - 1, left, right, work_scale)
        # ascend: prolongate + smooth
        for lv2 in range(levels - 2, -1, -1):
            coarse = v[lv2 + 1]
            fine = v[lv2]
            fine[0::2] += 0.5 * coarse
            fine[1::2] += 0.5 * coarse
            _mg_smooth(ctx, comm, v, lv2, left, right, work_scale)
        # residual norm + the barrier MG is known for
        local = np.array([float(v[0] @ v[0])])
        total = np.zeros(1)
        comm.Allreduce(local, total, SUM)
        resid = float(total[0])
        v[0] = v[0] / (1.0 + np.sqrt(resid) * 1e-3)
        comm.Barrier()

    return checksum(v[0], [resid])


# ---------------------------------------------------------------------------
# EP — tiny saved state (the Table-1 extreme)
# ---------------------------------------------------------------------------

def _ep_src(ctx, pairs_per_batch: int = 4096, batches: int = 12,
            work_scale: float = 1.0):
    # ccc: save(counts, sx, sy)
    counts = np.zeros(10, dtype=np.int64)
    sx = 0.0
    sy = 0.0
    # ccc: setup-end
    comm = ctx.comm
    rank = ctx.rank
    # ccc: loop(batch)
    for batch in range(batches):
        # ccc: checkpoint
        rng = seeded_rng("ep", rank, extra=batch)
        u = rng.uniform(-1.0, 1.0, size=(pairs_per_batch, 2))
        t = np.sum(u * u, axis=1)
        accept = (t > 0.0) & (t <= 1.0)
        ua, ta = u[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        x = ua[:, 0] * factor
        y = ua[:, 1] * factor
        sx += float(x.sum())
        sy += float(y.sum())
        annulus = np.minimum(
            np.maximum(np.abs(x), np.abs(y)).astype(np.int64), 9)
        counts += np.bincount(annulus, minlength=10)[:10]
        ctx.work(25.0 * pairs_per_batch * work_scale)

    total = np.zeros(10, dtype=np.int64)
    comm.Allreduce(counts, total, SUM)
    sums = np.zeros(2)
    comm.Allreduce(np.array([sx, sy]), sums, SUM)
    return checksum(total.astype(np.float64), sums)


# ---------------------------------------------------------------------------
# instrument at import: these run through the precompiler exactly once
# ---------------------------------------------------------------------------

heat_ccc = instrument(_heat_src)
ring_ccc = instrument(_ring_src)
cg_ccc = instrument(_cg_src)
lu_ccc = instrument(_lu_src)
mg_ccc = instrument(_mg_src)
ep_ccc = instrument(_ep_src)

#: instrumented-kernel registry, merged into :data:`repro.apps.APPS`.
#: The ``+ccc`` suffix marks checkpoint state produced by the precompiler
#: path rather than by handwritten Context calls.
INSTRUMENTED_APPS = {
    "heat+ccc": heat_ccc,
    "ring+ccc": ring_ccc,
    "CG+ccc": cg_ccc,
    "LU+ccc": lu_ccc,
    "MG+ccc": mg_ccc,
    "EP+ccc": ep_ccc,
}

#: handwritten counterpart of each instrumented kernel (used by the
#: equivalence tests and the sizes study's golden anchoring)
HANDWRITTEN_COUNTERPART = {
    "heat+ccc": "heat",
    "ring+ccc": "ring",
    "CG+ccc": "CG",
    "LU+ccc": "LU",
    "MG+ccc": "MG",
    "EP+ccc": "EP",
}

__all__ = ["INSTRUMENTED_APPS", "HANDWRITTEN_COUNTERPART", "heat_ccc",
           "ring_ccc", "cg_ccc", "lu_ccc", "mg_ccc", "ep_ccc"]
