"""Benchmark applications (NPB analogs, SMG2000, HPL) and demo apps.

Every application has the signature ``app(ctx, **params)``: it keeps all
persistent data in ``ctx.state``, loops with ``ctx.range``, places its
``#pragma ccc checkpoint`` at the documented Section-6.3 location, and
charges modelled FLOPs with ``ctx.work``.  The same function runs in
original mode, under C3 without checkpoints, and under C3 with
checkpoint/restart.
"""

from .cg import cg
from .ep import ep
from .ft import ft
from .heat import heat
from .hpl import hpl
from .is_sort import is_sort
from .lu import lu
from .mg import mg
from .ring import ring
from .smg2000 import smg2000
from .sp import bt, sp

#: registry used by the harness and the table drivers
APPS = {
    "CG": cg,
    "LU": lu,
    "SP": sp,
    "BT": bt,
    "MG": mg,
    "EP": ep,
    "FT": ft,
    "IS": is_sort,
    "SMG2000": smg2000,
    "HPL": hpl,
    "ring": ring,
    "heat": heat,
}

# precompiler-instrumented variants (imported late: instrumented.py pulls
# in core.ccc, which imports this package's kernels through the registry
# consumers only, so the dict above must exist first)
from .instrumented import HANDWRITTEN_COUNTERPART, INSTRUMENTED_APPS  # noqa: E402

APPS.update(INSTRUMENTED_APPS)

__all__ = ["cg", "lu", "sp", "bt", "mg", "ep", "ft", "is_sort", "smg2000",
           "hpl", "ring", "heat", "APPS", "INSTRUMENTED_APPS",
           "HANDWRITTEN_COUNTERPART"]
