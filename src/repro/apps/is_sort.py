"""IS — integer bucket sort (NPB IS analog).

Each iteration ranks a fresh batch of random keys: a local histogram, an
allreduce to agree on global bucket boundaries, an all-to-all exchange
of keys by destination bucket (padded to the maximum bucket size, since
NPB IS also exchanges with alltoallv-style traffic), and a local sort.
"""

from __future__ import annotations

import numpy as np

from ..mpi.ops import MAX, SUM
from .kernels import checksum, seeded_rng


def is_sort(ctx, keys_per_rank: int = 2048, key_max: int = 1 << 16,
            niter: int = 6, work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    bucket_width = (key_max + size - 1) // size

    if ctx.first_time("setup"):
        ctx.state.digest = 0.0
        ctx.done("setup")

    s = ctx.state

    for it in ctx.range("iter", niter):
        ctx.checkpoint()
        rng = seeded_rng("is", rank, extra=it)
        keys = rng.integers(0, key_max, size=keys_per_rank, dtype=np.int64)
        dest = np.minimum(keys // bucket_width, size - 1)
        ctx.work(6.0 * keys_per_rank * work_scale)
        # per-destination counts; agree on the padded exchange width
        counts = np.bincount(dest, minlength=size).astype(np.int64)
        max_count = np.zeros(1, dtype=np.int64)
        comm.Allreduce(counts.max(keepdims=True), max_count, MAX)
        width = int(max_count[0])
        # pack keys into padded per-destination slots (-1 = padding)
        sendbuf = np.full((size, width), -1, dtype=np.int64)
        for d in range(size):
            mine = keys[dest == d]
            sendbuf[d, :len(mine)] = mine
        recvbuf = np.empty((size, width), dtype=np.int64)
        comm.Alltoall(sendbuf, recvbuf)
        got = recvbuf[recvbuf >= 0]
        got_sorted = np.sort(got)
        ctx.work(float(len(got)) * np.log2(max(2, len(got))) * work_scale)
        # verify bucket invariant and fold into the running digest
        lo, hi = rank * bucket_width, (rank + 1) * bucket_width
        if len(got_sorted) and (got_sorted[0] < lo or got_sorted[-1] >= min(hi, key_max)):
            raise AssertionError("IS bucket invariant violated")
        total = np.zeros(1, dtype=np.int64)
        comm.Allreduce(np.array([len(got)], dtype=np.int64), total, SUM)
        s.digest += float(got_sorted.sum() % (1 << 31)) + float(total[0])

    return float(s.digest)
