"""Heat — 1D explicit heat-diffusion solver (domain-specific example).

Block-partitioned rod with ghost-cell exchange each step: the canonical
halo-exchange mini-app, used by the failure-injection example.  The rod's
ends are held at fixed temperatures, so the steady state is a linear
profile the example can verify after recovering from a mid-run failure.
"""

from __future__ import annotations

import numpy as np

from ..mpi.communicator import PROC_NULL
from ..mpi.ops import MAX
from .kernels import checksum


def heat(ctx, local_n: int = 32, niter: int = 40, alpha: float = 0.4,
         t_left: float = 100.0, t_right: float = 0.0,
         work_scale: float = 1.0):
    """``work_scale`` multiplies the modelled FLOP charge, so scaling
    studies can hold paper-regime compute-to-communication ratios
    without paper-class array sizes (same knob as the NPB kernels)."""
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    left = rank - 1 if rank > 0 else PROC_NULL
    right = rank + 1 if rank + 1 < size else PROC_NULL

    if ctx.first_time("setup"):
        ctx.state.u = np.zeros(local_n)
        if rank == 0:
            ctx.state.u[0] = t_left
        if rank == size - 1:
            ctx.state.u[-1] = t_right
        ctx.state.dmax = np.inf
        ctx.done("setup")

    s = ctx.state
    for step in ctx.range("step", niter):
        ctx.checkpoint()
        u = s.u
        ghost_l = np.array([u[0]])
        ghost_r = np.array([u[-1]])
        if left != PROC_NULL:
            comm.Sendrecv(np.ascontiguousarray(u[:1]), left, 7,
                          ghost_l, left, 8)
        if right != PROC_NULL:
            comm.Sendrecv(np.ascontiguousarray(u[-1:]), right, 8,
                          ghost_r, right, 7)
        new = u.copy()
        new[1:-1] = u[1:-1] + alpha * (u[:-2] - 2 * u[1:-1] + u[2:])
        if left != PROC_NULL:
            new[0] = u[0] + alpha * (ghost_l[0] - 2 * u[0] + u[1])
        if right != PROC_NULL:
            new[-1] = u[-1] + alpha * (u[-2] - 2 * u[-1] + ghost_r[0])
        # clamp the physical boundary conditions
        if rank == 0:
            new[0] = t_left
        if rank == size - 1:
            new[-1] = t_right
        delta = float(np.abs(new - u).max())
        s.u = new
        dmax = np.zeros(1)
        comm.Allreduce(np.array([delta]), dmax, MAX)
        s.dmax = float(dmax[0])
        ctx.work(6.0 * local_n * work_scale)
    return checksum(s.u, [s.dmax])
