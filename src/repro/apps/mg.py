"""MG — multigrid V-cycle solver (NPB MG analog).

The only NAS benchmark that calls ``MPI_Barrier`` during the computation
(Section 6, "only MG calls MPI_Barrier during the computation"), which is
why it matters for the protocol: barriers are collectives that can cross
a recovery line like any other.  1D domain, a hierarchy of grids; each
V-cycle smooths with neighbor halo exchanges at every level, restricts
down and prolongates back, with a barrier separating cycles.
"""

from __future__ import annotations

import numpy as np

from ..mpi.ops import SUM
from .kernels import checksum, seeded_rng


def mg(ctx, local_n: int = 64, levels: int = 4, niter: int = 6,
       work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    left, right = (rank - 1) % size, (rank + 1) % size
    if local_n % (1 << (levels - 1)):
        local_n = (1 << (levels - 1)) * max(1, local_n // (1 << (levels - 1)))

    if ctx.first_time("setup"):
        rng = seeded_rng("mg", rank)
        for lv in range(levels):
            n = local_n >> lv
            ctx.state[f"v{lv}"] = rng.standard_normal(n) * 0.01
        ctx.state.resid = 1.0
        ctx.done("setup")

    s = ctx.state

    def smooth(lv: int) -> None:
        v = s[f"v{lv}"]
        # halo exchange with ring neighbors
        recv_l = np.zeros(1)
        recv_r = np.zeros(1)
        comm.Sendrecv(np.ascontiguousarray(v[-1:]), right, 20 + lv,
                      recv_l, left, 20 + lv)
        comm.Sendrecv(np.ascontiguousarray(v[:1]), left, 40 + lv,
                      recv_r, right, 40 + lv)
        out = v.copy()
        out[1:-1] = 0.5 * v[1:-1] + 0.25 * (v[:-2] + v[2:])
        out[0] = 0.5 * v[0] + 0.25 * (recv_l[0] + v[1 % len(v)])
        out[-1] = 0.5 * v[-1] + 0.25 * (v[-2] + recv_r[0])
        s[f"v{lv}"] = out
        ctx.work(4.0 * len(v) * work_scale)

    for it in ctx.range("cycle", niter):
        ctx.checkpoint()
        # descend: smooth + restrict
        for lv in range(levels - 1):
            smooth(lv)
            fine = s[f"v{lv}"]
            s[f"v{lv + 1}"] = 0.5 * (fine[0::2] + fine[1::2])
        smooth(levels - 1)
        # ascend: prolongate + smooth
        for lv in range(levels - 2, -1, -1):
            coarse = s[f"v{lv + 1}"]
            fine = s[f"v{lv}"]
            fine[0::2] += 0.5 * coarse
            fine[1::2] += 0.5 * coarse
            smooth(lv)
        # residual norm + the barrier MG is known for
        local = np.array([float(s.v0 @ s.v0)])
        total = np.zeros(1)
        comm.Allreduce(local, total, SUM)
        s.resid = float(total[0])
        s.v0 = s.v0 / (1.0 + np.sqrt(s.resid) * 1e-3)
        comm.Barrier()

    return checksum(s.v0, [s.resid])
