"""SMG2000 — semicoarsening multigrid (ASCI Purple benchmark analog).

SMG2000's signature behavior is a very large number of *small* messages
per cycle: halo exchanges in all four directions at every level of a deep
semicoarsened hierarchy.  That is what makes it the outlier of Tables 2-3
(the per-message C3 piggyback cost hits it hardest, catastrophically so
on Velocity 2).  The paper places eight checkpoint locations in SMG2000,
both inside and outside the main loops (Section 6.3); this analog places
pragmas in the PCG driver loop and inside the V-cycle.
"""

from __future__ import annotations

import numpy as np

from ..core.ccc import cached_comm
from ..mpi.communicator import PROC_NULL
from ..mpi.ops import SUM
from .kernels import checksum, grid_2d, seeded_rng


def smg2000(ctx, local_n: int = 16, levels: int = 5, niter: int = 4,
            work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    py, px = grid_2d(size)
    cart = cached_comm(ctx, "grid", lambda: comm.Cart_create(
        (py, px), (True, True)))
    north, south = cart.Shift(0, 1)
    west, east = cart.Shift(1, 1)

    if ctx.first_time("setup"):
        rng = seeded_rng("smg", rank)
        for lv in range(levels):
            n = max(2, local_n >> lv)
            ctx.state[f"u{lv}"] = rng.standard_normal((n, n)) * 0.01
        ctx.state.rnorm = 1.0
        ctx.done("setup")

    s = ctx.state

    def halo_smooth(lv: int) -> None:
        """Four small halo exchanges + a cheap relaxation at one level."""
        u = s[f"u{lv}"]
        n = u.shape[0]
        row_n = np.zeros(n)
        row_s = np.zeros(n)
        col_w = np.zeros(n)
        col_e = np.zeros(n)
        cart.Sendrecv(np.ascontiguousarray(u[0, :]), north, 60 + lv,
                      row_s, south, 60 + lv)
        cart.Sendrecv(np.ascontiguousarray(u[-1, :]), south, 80 + lv,
                      row_n, north, 80 + lv)
        cart.Sendrecv(np.ascontiguousarray(u[:, 0]), west, 100 + lv,
                      col_e, east, 100 + lv)
        cart.Sendrecv(np.ascontiguousarray(u[:, -1]), east, 120 + lv,
                      col_w, west, 120 + lv)
        out = u.copy()
        out[1:-1, 1:-1] = (0.5 * u[1:-1, 1:-1]
                           + 0.125 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                      + u[1:-1, :-2] + u[1:-1, 2:]))
        out[0, :] += 0.125 * row_n
        out[-1, :] += 0.125 * row_s
        out[:, 0] += 0.125 * col_w
        out[:, -1] += 0.125 * col_e
        s[f"u{lv}"] = out * 0.98
        ctx.work(8.0 * n * n * work_scale)

    for it in ctx.range("pcg", niter):
        if ctx.phase_pending("pcg", "down"):
            ctx.checkpoint()  # top of the while-i loop in hypre_PCGSolve
            # V-cycle with semicoarsening: smooth twice per level on the
            # way down (that is where the message count explodes)
            for lv in range(levels):
                halo_smooth(lv)
                halo_smooth(lv)
                if lv + 1 < levels:
                    fine = s[f"u{lv}"]
                    nc = s[f"u{lv + 1}"].shape[0]
                    s[f"u{lv + 1}"] = fine[:2 * nc:2, :2 * nc:2] * 0.5
            ctx.phase_done("pcg", "down")
        if ctx.phase_pending("pcg", "up"):
            ctx.checkpoint()  # top of the for-i loop in hypre_SMGSolve
            for lv in range(levels - 2, -1, -1):
                coarse = s[f"u{lv + 1}"]
                fine = s[f"u{lv}"]
                nc = coarse.shape[0]
                fine[:2 * nc:2, :2 * nc:2] += 0.25 * coarse
                halo_smooth(lv)
            local = np.array([float((s.u0 ** 2).sum())])
            total = np.zeros(1)
            comm.Allreduce(local, total, SUM)
            s.rnorm = float(total[0])
            ctx.phase_done("pcg", "up")

    return checksum(s.u0, [s.rnorm])
