"""CG — conjugate-gradient kernel (NPB CG analog).

Row-block partitioned sparse matrix; every iteration does a local CSR
matvec (the dominant work), an allgather to assemble the full iterate,
and allreduces for the dot products.  Like NPB CG, the computation
contains no global barriers; the checkpoint location is "at the bottom of
the main loop in conj_grad" (Section 6.3) — expressed here as the pragma
at the top of each ``ctx.range`` iteration, which is the same program
point.
"""

from __future__ import annotations

import numpy as np

from ..mpi.ops import SUM
from .kernels import checksum, csr_matvec, seeded_rng, sparse_rows


def cg(ctx, local_n: int = 64, nnz_per_row: int = 8, niter: int = 15,
       work_scale: float = 1.0):
    """Run ``niter`` CG iterations on a ``local_n * nprocs`` system.

    ``work_scale`` multiplies the modelled FLOP charge so benches can
    project paper-class problem sizes without paper-class memory.
    """
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    n = local_n * size

    if ctx.first_time("setup"):
        indptr, indices, values = sparse_rows("cg", rank, local_n, n,
                                              nnz_per_row)
        ctx.state.indptr = indptr
        ctx.state.indices = indices
        ctx.state.values = values
        ctx.state.x = np.ones(n)
        ctx.state.r = np.zeros(local_n)
        ctx.state.p_full = np.zeros(n)
        ctx.state.rho = 1.0
        ctx.state.zeta = 0.0
        ctx.done("setup")

    s = ctx.state
    flops_per_iter = 2.0 * len(s.values) * work_scale

    for it in ctx.range("iter", niter):
        ctx.checkpoint()
        # q = A p   (local rows of the matvec)
        q_local = csr_matvec(s.indptr, s.indices, s.values, s.p_full)
        ctx.work(flops_per_iter)
        # assemble p for the next iteration (transpose-exchange analog)
        comm.Allgather(np.ascontiguousarray(q_local), s.p_full)
        # dot products via allreduce
        local_dot = np.array([float(q_local @ q_local)])
        global_dot = np.zeros(1)
        comm.Allreduce(local_dot, global_dot, SUM)
        denom = float(global_dot[0]) or 1.0
        alpha = s.rho / denom
        s.r = s.r + alpha * q_local
        s.x = s.x * (1.0 - 1e-3) + alpha * s.p_full
        # normalize to keep values bounded over long runs
        norm_local = np.array([float(s.r @ s.r)])
        norm = np.zeros(1)
        comm.Allreduce(norm_local, norm, SUM)
        s.rho = float(norm[0]) / (n or 1)
        s.zeta = s.zeta + 1.0 / (1.0 + s.rho)
        s.p_full = s.p_full / (1.0 + np.sqrt(s.rho))

    return checksum(s.r, [s.rho, s.zeta])
