"""LU — SSOR wavefront solver (NPB LU analog).

2D processor grid; each time step performs a lower-triangular sweep (data
flows from the north-west corner: receive from north and west, relax the
local block, send to south and east) and a symmetric upper-triangular
sweep in the opposite direction.  Pure point-to-point pipelining, no
barriers — the communication structure that motivates non-blocking
coordinated checkpointing.  The pragma sits at the bottom of the
``istep`` loop in ``ssor`` (Section 6.3) = the top of the next iteration.

Non-blocking receives are used for the incoming halos, so LU also
exercises the request indirection table across recovery lines.
"""

from __future__ import annotations

import numpy as np

from ..mpi.communicator import PROC_NULL
from ..core.ccc import cached_comm
from .kernels import checksum, grid_2d, seeded_rng


def lu(ctx, local_nx: int = 16, local_ny: int = 16, niter: int = 10,
       work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    py, px = grid_2d(size)
    cart = cached_comm(ctx, "grid", lambda: comm.Cart_create(
        (py, px), (False, False)))
    north, south = cart.Shift(0, 1)
    west, east = cart.Shift(1, 1)

    if ctx.first_time("setup"):
        rng = seeded_rng("lu", rank)
        ctx.state.u = rng.standard_normal((local_ny, local_nx)) * 0.01 + 1.0
        ctx.state.halo_n = np.zeros(local_nx)
        ctx.state.halo_w = np.zeros(local_ny)
        ctx.state.halo_s = np.zeros(local_nx)
        ctx.state.halo_e = np.zeros(local_ny)
        ctx.done("setup")

    s = ctx.state
    flops = 10.0 * local_nx * local_ny * work_scale

    for it in ctx.range("istep", niter):
        ctx.checkpoint()
        # ---- lower sweep: NW -> SE wavefront -------------------------------
        reqs = []
        if north != PROC_NULL:
            reqs.append(cart.Irecv(s.halo_n, source=north, tag=10))
        if west != PROC_NULL:
            reqs.append(cart.Irecv(s.halo_w, source=west, tag=11))
        if reqs:
            cart.Waitall(reqs)
        u = s.u
        top = s.halo_n if north != PROC_NULL else np.zeros(local_nx)
        left = s.halo_w if west != PROC_NULL else np.zeros(local_ny)
        u[0, :] = 0.8 * u[0, :] + 0.1 * top + 0.1 * u[0, :].mean()
        u[:, 0] = 0.8 * u[:, 0] + 0.1 * left + 0.1 * u[:, 0].mean()
        u[1:, :] = 0.9 * u[1:, :] + 0.1 * u[:-1, :]
        u[:, 1:] = 0.9 * u[:, 1:] + 0.1 * u[:, :-1]
        ctx.work(flops)
        if south != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[-1, :]), dest=south, tag=10)
        if east != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[:, -1]), dest=east, tag=11)
        # ---- upper sweep: SE -> NW wavefront -------------------------------
        reqs = []
        if south != PROC_NULL:
            reqs.append(cart.Irecv(s.halo_s, source=south, tag=12))
        if east != PROC_NULL:
            reqs.append(cart.Irecv(s.halo_e, source=east, tag=13))
        if reqs:
            cart.Waitall(reqs)
        bottom = s.halo_s if south != PROC_NULL else np.zeros(local_nx)
        right = s.halo_e if east != PROC_NULL else np.zeros(local_ny)
        u[-1, :] = 0.8 * u[-1, :] + 0.1 * bottom + 0.1 * u[-1, :].mean()
        u[:, -1] = 0.8 * u[:, -1] + 0.1 * right + 0.1 * u[:, -1].mean()
        u[:-1, :] = 0.9 * u[:-1, :] + 0.1 * u[1:, :]
        u[:, :-1] = 0.9 * u[:, :-1] + 0.1 * u[:, 1:]
        ctx.work(flops)
        if north != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[0, :]), dest=north, tag=12)
        if west != PROC_NULL:
            cart.Send(np.ascontiguousarray(u[:, 0]), dest=west, tag=13)

    return checksum(s.u)
