"""FT — spectral (FFT) kernel (NPB FT analog).

A 2D complex field, row-block partitioned.  Every iteration applies a
local FFT along the resident axis, transposes through an all-to-all,
applies the FFT along the other axis, and evolves the spectrum.  The
complex state array makes FT's checkpoints among the largest (Table 1:
~420 MB for class A), and the transpose is the canonical alltoall
workload.
"""

from __future__ import annotations

import numpy as np

from .kernels import checksum, seeded_rng


def ft(ctx, local_rows: int = 8, row_len: int = 64, niter: int = 6,
       work_scale: float = 1.0):
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    row_len = max(size, (row_len // size) * size)

    if ctx.first_time("setup"):
        rng = seeded_rng("ft", rank)
        field = (rng.standard_normal((local_rows, row_len))
                 + 1j * rng.standard_normal((local_rows, row_len)))
        ctx.state.field = field.astype(np.complex128)
        ctx.state.scratch = np.zeros((local_rows, row_len), dtype=np.complex128)
        ctx.done("setup")

    s = ctx.state
    n_total = local_rows * row_len
    flops = 5.0 * n_total * np.log2(max(2, row_len)) * work_scale

    for it in ctx.range("iter", niter):
        ctx.checkpoint()
        # FFT along the resident axis
        spec = np.fft.fft(s.field, axis=1)
        ctx.work(flops)
        # transpose exchange
        comm.Alltoall(np.ascontiguousarray(spec), s.scratch)
        # FFT along the (logically) other axis
        spec2 = np.fft.fft(s.scratch, axis=1)
        ctx.work(flops)
        # evolve: damp high modes, keep amplitudes bounded
        k = np.arange(row_len) / row_len
        spec2 = spec2 * np.exp(-0.01 * (it + 1) * k ** 2)
        s.field = np.fft.ifft(spec2, axis=1)
        ctx.work(flops)

    return checksum(s.field.real, s.field.imag)
