"""Shared numerical helpers for the benchmark applications.

All randomness is seeded deterministically from (name, rank, extra) so
that every rank regenerates identical data on every run — the property
the paper relies on for pseudo-random number generators ("they produce
deterministic sequences of pseudo-random numbers starting from some seed
value", Section 2.3).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def seeded_rng(name: str, rank: int = 0, extra: int = 0) -> np.random.Generator:
    """A deterministic per-(app, rank, instance) random generator.

    Seeded with a stable digest (not Python's per-process-randomized
    ``hash``), so data is identical across processes and runs.
    """
    import zlib
    seed = zlib.crc32(f"{name}:{rank}:{extra}".encode()) or 1
    return np.random.default_rng(seed)


def sparse_rows(name: str, rank: int, local_n: int, global_n: int,
                nnz_per_row: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A deterministic CSR block of ``local_n`` rows of a ``global_n`` matrix.

    Returns (indptr, indices, values).  The diagonal is included and
    dominant, so CG on the symmetric part converges.
    """
    rng = seeded_rng(name, rank)
    row_start = rank * local_n
    indptr = np.zeros(local_n + 1, dtype=np.int64)
    indices = []
    values = []
    for i in range(local_n):
        cols = rng.choice(global_n, size=min(nnz_per_row - 1, global_n - 1),
                          replace=False)
        cols = cols[cols != row_start + i]
        cols = np.sort(np.concatenate([cols, [row_start + i]]))
        vals = rng.standard_normal(len(cols)) * 0.1
        vals[cols == row_start + i] = nnz_per_row + 1.0  # diagonal dominance
        indices.append(cols)
        values.append(vals)
        indptr[i + 1] = indptr[i] + len(cols)
    return indptr, np.concatenate(indices), np.concatenate(values)


def csr_matvec(indptr: np.ndarray, indices: np.ndarray, values: np.ndarray,
               x: np.ndarray) -> np.ndarray:
    """y = A @ x for a CSR block (vectorized with reduceat)."""
    if len(indices) == 0:
        return np.zeros(len(indptr) - 1)
    prods = values * x[indices]
    # reduceat needs strictly valid segment starts; empty rows handled below.
    starts = indptr[:-1]
    y = np.add.reduceat(prods, np.minimum(starts, len(prods) - 1))
    empty = indptr[1:] == indptr[:-1]
    y[empty] = 0.0
    return y


def block_partition(n: int, nprocs: int, rank: int) -> Tuple[int, int]:
    """Contiguous block partition of n items; returns (start, count)."""
    base = n // nprocs
    rem = n % nprocs
    if rank < rem:
        start = rank * (base + 1)
        count = base + 1
    else:
        start = rem * (base + 1) + (rank - rem) * base
        count = base
    return start, count


def grid_2d(nprocs: int) -> Tuple[int, int]:
    """The most square 2D factorization of ``nprocs`` (py >= px)."""
    px = int(np.sqrt(nprocs))
    while nprocs % px:
        px -= 1
    return px, nprocs // px


def checksum(*arrays) -> float:
    """Order-stable scalar digest used to compare runs."""
    total = 0.0
    for a in arrays:
        arr = np.asarray(a, dtype=np.float64).reshape(-1)
        weights = np.arange(1, arr.size + 1, dtype=np.float64)
        total += float(np.dot(arr, np.sin(weights)))
    return total
