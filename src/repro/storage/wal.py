"""Log-structured checkpoint store: per-node WAL with group commit.

The production :class:`~repro.storage.store.CheckpointStore`
(DESIGN.md §8).  Instead of scattering every section into its own
backend object with one durability point each, each simulated *node*
(the ``procs_per_node`` shard boundary the drain device already defines)
owns one append-only stream of segments::

    wal/node{n:04d}/seg{k:08d}

Everything is a length-prefixed, CRC-guarded record —

    ``WREC | rtype | name_len | rank | version | payload_len | crc32``
    followed by the section name and payload —

section payloads (``SECTION``), commit manifests (``COMMIT``), and line
tombstones (``DELETE``).  Appends are staged in memory and carry no
durability; co-located ranks' commits coalesce until every rank on the
node has committed the line, then the whole batch goes down with **one**
``append`` + **one** ``sync`` — the group commit.  A crash loses the
staged tail (the fail-stop model tears it mid-record, the window the
``at_group_commit`` fault windows aim at).

Recovery is **replay**: walk each node's segments in order, re-applying
records until the first torn/short/CRC-bad one, at which point the
segment is physically truncated to its valid prefix and the index is
whatever the durable log proves.  Recovery-line GC appends ``DELETE``
tombstones instead of deleting files; space comes back by **segment
retirement** — a sealed segment whose live bytes hit zero is unlinked
whole, one below the live-ratio threshold is compacted into the active
stream.  Both happen only *after* a sync, so a segment never disappears
before the records that obsolete it are durable.
"""

from __future__ import annotations

import re
import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from .. import coverage
from .manifest import LEGACY_MARKER, section_digest
from .stable import StorageBackend, StorageError
from .store import CheckpointStore, WAL_PREFIX

#: record types
SECTION = 1
COMMIT = 2
DELETE = 3

_MAGIC = b"WREC"
#: magic, rtype, name_len, rank, version, payload_len  (crc32 follows)
_HDR = struct.Struct("<4sBHIII")
_CRC = struct.Struct("<I")
HEADER_LEN = _HDR.size + _CRC.size

_SEG_RE = re.compile(r"^wal/node(\d+)/seg(\d+)$")


def segment_path(node: int, seq: int) -> str:
    return f"wal/node{node:04d}/seg{seq:08d}"


def encode_record(rtype: int, version: int, rank: int, name: str,
                  payload: bytes) -> bytes:
    """One WAL record: header + crc32 + name + payload."""
    nb = name.encode("utf-8")
    hdr = _HDR.pack(_MAGIC, rtype, len(nb), rank, version, len(payload))
    crc = zlib.crc32(hdr + nb + payload) & 0xFFFFFFFF
    return hdr + _CRC.pack(crc) + nb + payload


def decode_record(buf: bytes, off: int,
                  ) -> Optional[Tuple[int, int, int, str, bytes, int]]:
    """Decode the record at ``off``; None if torn, short, or corrupt.

    Returns ``(rtype, version, rank, name, payload, total_length)``.
    Any defect — truncated header, bad magic, unknown type, body running
    past the buffer, CRC mismatch — yields None, which replay treats as
    the end of the valid log.
    """
    if off + HEADER_LEN > len(buf):
        return None
    magic, rtype, name_len, rank, version, payload_len = _HDR.unpack_from(
        buf, off)
    if magic != _MAGIC or rtype not in (SECTION, COMMIT, DELETE):
        return None
    (crc,) = _CRC.unpack_from(buf, off + _HDR.size)
    total = HEADER_LEN + name_len + payload_len
    if off + total > len(buf):
        return None
    body = off + HEADER_LEN
    if zlib.crc32(bytes(buf[off:off + _HDR.size]) +
                  bytes(buf[body:off + total])) & 0xFFFFFFFF != crc:
        return None
    name = bytes(buf[body:body + name_len]).decode("utf-8", "replace")
    payload = bytes(buf[body + name_len:off + total])
    return rtype, version, rank, name, payload, total


@dataclass
class _Rec:
    """One record's location and liveness inside its segment."""
    rtype: int
    version: int
    rank: int
    name: str
    off: int          # record start, segment-relative
    length: int       # full record length (header + name + payload)
    payload_off: int  # payload start, segment-relative
    payload_len: int
    live: bool = True


@dataclass
class _Seg:
    node: int
    records: List[_Rec] = field(default_factory=list)
    total: int = 0  # bytes appended to this segment
    live: int = 0   # bytes of still-live records


@dataclass
class _Commit:
    seg: str
    rec: _Rec
    manifest: Optional[dict]  # None for legacy (manifest-less) commits
    durable: bool


class _Node:
    """Mutable per-node stream state: active segment + staged buffer."""

    def __init__(self, index: int, seq: int):
        self.index = index
        self.seq = seq
        self.seg = segment_path(index, seq)
        self.base = 0              # durable length of the active segment
        self.buf = bytearray()     # staged, unsynced appends
        self.pending: List[_Commit] = []  # commits staged since last sync


class WalStore(CheckpointStore):
    """Per-node write-ahead log with group commit and segment GC."""

    def __init__(self, backend: StorageBackend,
                 segment_target_bytes: int = 256 << 10,
                 compact_threshold: float = 0.5):
        self.backend = backend
        self.segment_target_bytes = max(1, int(segment_target_bytes))
        self.compact_threshold = float(compact_threshold)
        self._lock = threading.RLock()
        self._nprocs: Optional[int] = None
        self._procs_per_node = 1
        #: rank -> callable(version), invoked after the COMMIT record is
        #: staged and before the group-flush decision — the fault model's
        #: ``at_group_commit`` window hangs off this
        self.commit_hooks: Dict[int, Callable[[int], None]] = {}
        # accounting the studies and tests read
        self.group_commits = 0
        self.commit_records = 0
        self.segments_created = 0
        self.segments_retired = 0
        self.segments_compacted = 0
        self.replays = 0
        self.replay_truncated_bytes = 0
        self.flush_failures = 0
        self._reset_state()
        if backend.list(WAL_PREFIX):
            self._replay()

    # -- state ---------------------------------------------------------------
    def _reset_state(self) -> None:
        self._nodes: Dict[int, _Node] = {}
        self._segments: Dict[str, _Seg] = {}
        #: (version, rank) -> section name -> (segment, record)
        self._sections: Dict[Tuple[int, int], Dict[str, Tuple[str, _Rec]]] = {}
        self._commits: Dict[Tuple[int, int], _Commit] = {}
        #: (version, rank) -> tombstone records (live until the line has
        #: no physical records left anywhere)
        self._deletes: Dict[Tuple[int, int], List[Tuple[str, _Rec]]] = {}
        #: (version, rank) -> segments still physically holding its records
        self._line_refs: Dict[Tuple[int, int], Set[str]] = {}
        #: node -> segments compacted since that node's last sync (their
        #: replacement records are still staged; unlink must wait)
        self._compacted_pending: Dict[int, Set[str]] = {}

    def configure(self, nprocs: int, procs_per_node: int = 1) -> None:
        with self._lock:
            self._nprocs = int(nprocs)
            self._procs_per_node = max(1, int(procs_per_node))

    def node_of(self, rank: int) -> int:
        return rank // self._procs_per_node

    def _group_size(self, node: int) -> int:
        if self._nprocs is None:
            return 1
        ppn = self._procs_per_node
        return max(1, min(ppn, self._nprocs - node * ppn))

    def _node(self, index: int) -> _Node:
        ns = self._nodes.get(index)
        if ns is None:
            ns = self._nodes[index] = _Node(index, 0)
        return ns

    def _seg_for(self, ns: _Node) -> _Seg:
        seg = self._segments.get(ns.seg)
        if seg is None:
            seg = self._segments[ns.seg] = _Seg(ns.index)
            self.segments_created += 1
        return seg

    # -- low-level append / index maintenance --------------------------------
    def _append_record(self, ns: _Node, rtype: int, version: int, rank: int,
                       name: str, payload: bytes) -> _Rec:
        data = encode_record(rtype, version, rank, name, payload)
        seg = self._seg_for(ns)
        off = ns.base + len(ns.buf)
        rec = _Rec(rtype, version, rank, name, off, len(data),
                   off + HEADER_LEN + len(name.encode("utf-8")), len(payload))
        ns.buf += data
        seg.records.append(rec)
        seg.total += rec.length
        seg.live += rec.length
        return rec

    def _mark_dead(self, segname: str, rec: _Rec) -> None:
        if rec.live:
            rec.live = False
            seg = self._segments.get(segname)
            if seg is not None:
                seg.live -= rec.length

    def _register_section(self, key: Tuple[int, int], name: str,
                          rec: _Rec, segname: str) -> None:
        old = self._sections.get(key, {}).get(name)
        if old is not None:
            self._mark_dead(old[0], old[1])
        self._sections.setdefault(key, {})[name] = (segname, rec)
        self._line_refs.setdefault(key, set()).add(segname)

    def _register_commit(self, key: Tuple[int, int], segname: str, rec: _Rec,
                         manifest: Optional[dict], durable: bool) -> _Commit:
        old = self._commits.get(key)
        if old is not None:
            self._mark_dead(old.seg, old.rec)
        commit = _Commit(segname, rec, manifest, durable)
        self._commits[key] = commit
        self._line_refs.setdefault(key, set()).add(segname)
        return commit

    def _apply_delete(self, key: Tuple[int, int], segname: str,
                      rec: _Rec) -> None:
        self._deletes.setdefault(key, []).append((segname, rec))
        for sname, srec in self._sections.pop(key, {}).values():
            self._mark_dead(sname, srec)
        commit = self._commits.pop(key, None)
        if commit is not None:
            self._mark_dead(commit.seg, commit.rec)

    def _read_rec(self, segname: str, rec: _Rec) -> bytes:
        seg = self._segments.get(segname)
        if seg is not None:
            ns = self._nodes.get(seg.node)
            if ns is not None and segname == ns.seg and rec.off >= ns.base:
                start = rec.payload_off - ns.base
                return bytes(ns.buf[start:start + rec.payload_len])
        return self.backend.read_range(segname, rec.payload_off,
                                       rec.payload_len)

    # -- write path ----------------------------------------------------------
    def put_section(self, version: int, rank: int, section: str,
                    payload: bytes) -> None:
        with self._lock:
            ns = self._node(self.node_of(rank))
            rec = self._append_record(ns, SECTION, version, rank, section,
                                      bytes(payload))
            self._register_section((version, rank), section, rec, ns.seg)

    def commit_line(self, version: int, rank: int,
                    sections: Optional[Dict[str, Tuple[int, str]]] = None,
                    ) -> None:
        if sections is None:
            payload, manifest = LEGACY_MARKER, None
        else:
            from ..statesave import serializer
            manifest = {
                "version": version,
                "rank": rank,
                "sections": {name: [int(nbytes), str(digest)]
                             for name, (nbytes, digest) in sections.items()},
            }
            payload = serializer.dumps(manifest)
        node = self.node_of(rank)
        with self._lock:
            ns = self._node(node)
            rec = self._append_record(ns, COMMIT, version, rank, "", payload)
            commit = self._register_commit((version, rank), ns.seg, rec,
                                           manifest, durable=False)
            ns.pending.append(commit)
            self.commit_records += 1
        hook = self.commit_hooks.get(rank)
        if hook is not None:
            # Outside the lock: the hook is the at_group_commit fault
            # window and may raise ProcessFailure to kill this rank while
            # its COMMIT record sits staged and unsynced.
            hook(version)
        with self._lock:
            ns = self._node(node)
            if len(ns.pending) >= self._group_size(node):
                self._flush_node(node)

    def delete_line(self, version: int, rank: int) -> None:
        with self._lock:
            key = (version, rank)
            if key not in self._sections and key not in self._commits:
                return
            ns = self._node(self.node_of(rank))
            rec = self._append_record(ns, DELETE, version, rank, "", b"")
            self._apply_delete(key, ns.seg, rec)

    # -- durability / group commit -------------------------------------------
    def _flush_node(self, node: int) -> None:
        ns = self._nodes.get(node)
        if ns is None:
            return
        if ns.buf:
            try:
                self.backend.append(ns.seg, bytes(ns.buf))
            except StorageError:
                # The staged tail never reached the medium (disk full,
                # ...) and retrying would re-append a batch whose commit
                # acknowledgments are gone: drop it and un-index its
                # records.  The affected lines simply never committed —
                # recovery falls back to the last durable line, exactly
                # as after a crash at this instant.  (Found by the fault
                # fuzzer: an injected ENOSPC here used to escape as a raw
                # StorageError and crash the job instead of abandoning
                # the batch.)
                self.flush_failures += 1
                coverage.hit("path:wal_flush_failed")
                self._drop_staged(ns)
                raise
            ns.base += len(ns.buf)
            ns.buf.clear()
            try:
                self.backend.sync(ns.seg)
            except StorageError:
                # Appended but not provably durable: keep the index (the
                # bytes are physically there and replay would see them)
                # and leave the pending commits staged — the next
                # successful flush's sync covers them.
                self.flush_failures += 1
                coverage.hit("path:wal_flush_failed")
                raise
        if ns.pending:
            self.group_commits += 1
            coverage.hit("path:group_commit")
            for commit in ns.pending:
                commit.durable = True
            ns.pending.clear()
        # Everything staged before this point is durable: compacted
        # segments' replacement records included, so their sources may go.
        self._compacted_pending.pop(node, None)
        if ns.base >= self.segment_target_bytes:
            ns.seq += 1
            ns.seg = segment_path(node, ns.seq)
            ns.base = 0
        self._retire_node(node)

    def _drop_staged(self, ns: _Node) -> None:
        """Un-index every record of ``ns``'s staged (unflushed) tail.

        Called when a group-commit flush fails: the buffered records will
        never be durable, so sections and commits that live only in the
        buffer are removed from the index and the pending commit batch is
        abandoned.  Deliberately conservative — a record that re-pointed
        the index away from a still-physical source copy (compaction) is
        forgotten too, so the in-memory view may under-report what a
        crash replay would reconstruct; recovering from an older line is
        always safe.
        """
        seg = self._segments.get(ns.seg)
        if seg is not None:
            kept = []
            for rec in seg.records:
                if rec.off < ns.base:
                    kept.append(rec)
                    continue
                seg.total -= rec.length
                if rec.live:
                    seg.live -= rec.length
                key = (rec.version, rec.rank)
                if rec.rtype == SECTION:
                    sections = self._sections.get(key)
                    if (sections is not None
                            and sections.get(rec.name, (None, None))[1]
                            is rec):
                        del sections[rec.name]
                        if not sections:
                            del self._sections[key]
                elif rec.rtype == COMMIT:
                    commit = self._commits.get(key)
                    if commit is not None and commit.rec is rec:
                        del self._commits[key]
        ns.pending.clear()
        ns.buf.clear()

    def flush(self) -> None:
        with self._lock:
            for node in list(self._nodes):
                self._flush_node(node)

    def flush_rank(self, rank: int) -> None:
        with self._lock:
            self._flush_node(self.node_of(rank))

    # -- segment retirement ----------------------------------------------------
    def _retire_node(self, node: int) -> None:
        progressed = True
        while progressed:
            progressed = False
            ns = self._nodes[node]
            held = self._compacted_pending.get(node, set())
            for segname, seg in list(self._segments.items()):
                if seg.node != node or segname == ns.seg or segname in held:
                    continue
                if seg.live <= 0:
                    self._unlink_segment(segname, seg)
                    progressed = True
                elif seg.total and seg.live / seg.total < self.compact_threshold:
                    self._compact_segment(segname, seg, ns)

    def _unlink_segment(self, segname: str, seg: _Seg) -> None:
        try:
            self.backend.delete(segname)
        except StorageError:
            pass
        del self._segments[segname]
        self.segments_retired += 1
        coverage.hit("path:wal_retired")
        for rec in seg.records:
            if rec.rtype == DELETE:
                continue
            key = (rec.version, rec.rank)
            refs = self._line_refs.get(key)
            if refs is None:
                continue
            refs.discard(segname)
            if not refs:
                # No physical record of this line anywhere: its
                # tombstones have nothing left to suppress at replay.
                del self._line_refs[key]
                for dseg, drec in self._deletes.pop(key, ()):
                    self._mark_dead(dseg, drec)

    def _compact_segment(self, segname: str, seg: _Seg, ns: _Node) -> None:
        self.segments_compacted += 1
        coverage.hit("path:wal_compacted")
        for rec in list(seg.records):
            if not rec.live:
                continue
            key = (rec.version, rec.rank)
            if rec.rtype == SECTION:
                payload = self._read_rec(segname, rec)
                new = self._append_record(ns, SECTION, rec.version, rec.rank,
                                          rec.name, payload)
                self._register_section(key, rec.name, new, ns.seg)
            elif rec.rtype == COMMIT:
                payload = self._read_rec(segname, rec)
                new = self._append_record(ns, COMMIT, rec.version, rec.rank,
                                          "", payload)
                old = self._commits.get(key)
                self._mark_dead(segname, rec)
                if old is not None and old.rec is rec:
                    self._register_commit(key, ns.seg, new, old.manifest,
                                          old.durable)
            else:  # DELETE tombstone still suppressing records elsewhere
                new = self._append_record(ns, DELETE, rec.version, rec.rank,
                                          "", b"")
                self._mark_dead(segname, rec)
                self._deletes.setdefault(key, []).append((ns.seg, new))
        self._compacted_pending.setdefault(ns.index, set()).add(segname)

    # -- job lifetime / crash semantics ----------------------------------------
    def on_job_end(self, failed_rank: Optional[int] = None) -> None:
        with self._lock:
            if failed_rank is None:
                try:
                    self.flush()
                except StorageError:
                    pass  # staged tail abandoned (disk full at final drain)
                return
            failed_node = self.node_of(failed_rank)
            for node in list(self._nodes):
                # Surviving nodes did not crash — their page caches drain
                # normally even though the job's processes are gone.
                if node != failed_node:
                    try:
                        self._flush_node(node)
                    except StorageError:
                        pass  # that node's staged tail is abandoned
            ns = self._nodes.get(failed_node)
            if ns is not None and ns.buf:
                torn = self._torn_prefix(ns)
                if torn:
                    try:
                        self.backend.append(ns.seg, torn)
                        coverage.hit("path:wal_torn_tail")
                    except StorageError:
                        pass  # the torn tail is lost whole: clean truncation
            self._replay()

    def _torn_prefix(self, ns: _Node) -> bytes:
        """What the failed node's page cache happened to write.

        Deterministic model: every staged record but the last made it
        out whole; the last was cut mid-record.  Replay keeps the whole
        prefix and truncates at the cut — so every WAL crash exercises
        the torn-record path.
        """
        seg = self._segments.get(ns.seg)
        if seg is None:
            return b""
        staged = [r for r in seg.records if r.off >= ns.base]
        if not staged:
            return b""
        last = staged[-1]
        cut = (last.off - ns.base) + max(1, last.length // 2)
        return bytes(ns.buf[:cut])

    def reload(self) -> None:
        """Rebuild indexes from the medium (sharded runs over real disk).

        Worker processes appended to the segments through their forked
        copies of this store; the parent's index is stale but the bytes
        are current.  Re-replaying the log is exactly the recovery path,
        with the same consequence a crash would have: any tail a worker
        staged but never synced before exiting is not on the medium and
        is lost to the parent (DESIGN.md §10 documents this caveat for
        ``sharded`` + disk).
        """
        with self._lock:
            self._reset_state()
            if self.backend.list(WAL_PREFIX):
                self._replay()

    # -- replay ----------------------------------------------------------------
    def _replay(self) -> None:
        """Rebuild the whole index from the durable log (recovery path)."""
        with self._lock:
            self.replays += 1
            self._reset_state()
            by_node: Dict[int, List[Tuple[int, str]]] = {}
            for path in self.backend.list(WAL_PREFIX):
                m = _SEG_RE.match(path)
                if m:
                    by_node.setdefault(int(m.group(1)), []).append(
                        (int(m.group(2)), path))
            for node, entries in sorted(by_node.items()):
                entries.sort()
                for _seq, path in entries:
                    self._replay_segment(node, path)
                self._nodes[node] = _Node(node, entries[-1][0] + 1)
            # Tombstones whose line has no physical record left (its
            # segments were retired before the crash) are spent.
            for key, dlist in self._deletes.items():
                if not self._line_refs.get(key):
                    for dseg, drec in dlist:
                        self._mark_dead(dseg, drec)

    def _replay_segment(self, node: int, path: str) -> None:
        try:
            data = self.backend.read(path)
        except StorageError:
            return
        seg = _Seg(node)
        off = 0
        while off < len(data):
            decoded = decode_record(data, off)
            if decoded is None:
                # Torn/corrupt tail: physically truncate to the valid
                # prefix so later appends never land after garbage.
                self.replay_truncated_bytes += len(data) - off
                coverage.hit("path:wal_truncated")
                data = data[:off]
                if data:
                    try:
                        self.backend.write(path, data)
                    except StorageError:
                        pass  # best-effort: a later replay re-truncates
                else:
                    try:
                        self.backend.delete(path)
                    except StorageError:
                        pass
                break
            rtype, version, rank, name, payload, total = decoded
            rec = _Rec(rtype, version, rank, name, off, total,
                       off + HEADER_LEN + len(name.encode("utf-8")),
                       len(payload))
            seg.records.append(rec)
            seg.total += total
            seg.live += total
            key = (version, rank)
            if rtype == SECTION:
                self._segments[path] = seg  # _register_section marks dead
                self._register_section(key, name, rec, path)
            elif rtype == COMMIT:
                self._segments[path] = seg
                manifest: Optional[dict] = None
                if payload != LEGACY_MARKER:
                    try:
                        from ..statesave import serializer
                        manifest = serializer.loads(payload)
                    except Exception:
                        manifest = None
                self._register_commit(key, path, rec, manifest, durable=True)
            else:
                self._segments[path] = seg
                self._apply_delete(key, path, rec)
            off += total
        if seg.records:
            self._segments[path] = seg
        elif not data:
            self._segments.pop(path, None)

    # -- read path -------------------------------------------------------------
    def _section_entry(self, version: int, rank: int, section: str,
                       ) -> Tuple[str, _Rec]:
        entry = self._sections.get((version, rank), {}).get(section)
        if entry is None:
            raise StorageError(
                f"no section {section!r} for line v{version}/rank{rank}")
        return entry

    def read_section(self, version: int, rank: int, section: str) -> bytes:
        with self._lock:
            segname, rec = self._section_entry(version, rank, section)
            return self._read_rec(segname, rec)

    def has_section(self, version: int, rank: int, section: str) -> bool:
        with self._lock:
            return section in self._sections.get((version, rank), {})

    def section_size(self, version: int, rank: int, section: str) -> int:
        with self._lock:
            _, rec = self._section_entry(version, rank, section)
            return rec.payload_len

    def line_manifest(self, version: int, rank: int) -> Optional[dict]:
        with self._lock:
            commit = self._commits.get((version, rank))
            if commit is None or not commit.durable:
                return None
            return commit.manifest

    def validate_line(self, version: int, rank: int,
                      deep: bool = False) -> bool:
        with self._lock:
            commit = self._commits.get((version, rank))
            if commit is None or not commit.durable:
                return False
            manifest = commit.manifest
            if manifest is None:
                return True  # legacy commit: validates vacuously
            if (manifest.get("version") != version
                    or manifest.get("rank") != rank):
                return False
            secs = self._sections.get((version, rank), {})
            for name, (nbytes, digest) in manifest["sections"].items():
                entry = secs.get(name)
                if entry is None or entry[1].payload_len != int(nbytes):
                    return False
                if deep and section_digest(
                        self._read_rec(*entry)) != str(digest):
                    coverage.hit("path:digest_rejected")
                    return False
            return True

    # -- global queries ----------------------------------------------------------
    def committed_map(self) -> Dict[int, List[int]]:
        with self._lock:
            out: Dict[int, List[int]] = {}
            for (version, rank), commit in self._commits.items():
                if commit.durable:
                    out.setdefault(rank, []).append(version)
            for versions in out.values():
                versions.sort()
            return out

    def lines_on_storage(self) -> Dict[int, List[int]]:
        with self._lock:
            keys = set(self._sections) | set(self._commits)
            out: Dict[int, Set[int]] = {}
            for version, rank in keys:
                out.setdefault(rank, set()).add(version)
            return {rank: sorted(vs) for rank, vs in out.items()}

    def checkpoint_bytes(self, version: int, rank: int) -> int:
        with self._lock:
            commit = self._commits.get((version, rank))
            if commit is not None and commit.durable \
                    and commit.manifest is not None:
                return sum(int(nbytes) for nbytes, _ in
                           commit.manifest["sections"].values())
            return sum(rec.payload_len for _, rec in
                       self._sections.get((version, rank), {}).values())

    # -- introspection -----------------------------------------------------------
    def segment_names(self) -> List[str]:
        with self._lock:
            return sorted(self._segments)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "group_commits": self.group_commits,
                "commit_records": self.commit_records,
                "segments_created": self.segments_created,
                "segments_retired": self.segments_retired,
                "segments_compacted": self.segments_compacted,
                "replays": self.replays,
                "replay_truncated_bytes": self.replay_truncated_bytes,
                "flush_failures": self.flush_failures,
            }
