"""Path-prefix namespaces over a shared storage backend.

The campaign service (:mod:`repro.service`) runs many tenants' jobs
against one physical medium; each tenant must see a private byte store.
:class:`PrefixBackend` is that isolation seam: a
:class:`~repro.storage.stable.StorageBackend` whose every path is
remapped under a fixed prefix before it reaches the shared inner
backend.  Paths are normalized *before* prefixing, so no crafted
``..``/absolute path can address another namespace — the same
:func:`~repro.storage.stable.normalize_path` discipline both real
backends enforce at their own root.

The wrapper keeps its own traffic counters (``write_count``,
``written_bytes``, ``fsync_count``, ``read_count``) so per-tenant
storage accounting falls out for free, while the inner backend keeps
counting the aggregate.  Everything the recovery stack needs passes
through — the atomic object API, the WAL's append/sync/read_range
stream API, and ``shared_across_fork`` (delegated: a namespace over
real files is still fork-visible).
"""

from __future__ import annotations

from typing import List

from .stable import StorageBackend, normalize_path

__all__ = ["PrefixBackend", "tenant_backend"]

#: where :func:`tenant_backend` roots each tenant's namespace
TENANT_ROOT = "tenants"


class PrefixBackend(StorageBackend):
    """A storage backend confined to ``prefix/`` of an inner backend."""

    def __init__(self, inner: StorageBackend, prefix: str):
        self.inner = inner
        #: the canonical namespace root, with trailing slash
        self.prefix = normalize_path(prefix) + "/"
        self.write_count = 0
        self.written_bytes = 0
        self.fsync_count = 0
        self.read_count = 0

    @property
    def shared_across_fork(self) -> bool:  # type: ignore[override]
        return self.inner.shared_across_fork

    def _map(self, path: str) -> str:
        # normalize first: a path whose ".." segments would escape is
        # rejected here, before the prefix could be peeled back
        return self.prefix + normalize_path(path)

    # -- atomic object API ---------------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        self.inner.write(self._map(path), data)
        self.write_count += 1
        self.written_bytes += len(data)
        self.fsync_count += 1

    def read(self, path: str) -> bytes:
        payload = self.inner.read(self._map(path))
        self.read_count += 1
        return payload

    def exists(self, path: str) -> bool:
        return self.inner.exists(self._map(path))

    def delete(self, path: str) -> None:
        self.inner.delete(self._map(path))

    def list(self, prefix: str = "") -> List[str]:
        # ``prefix`` is a string prefix (possibly a partial file name),
        # not necessarily a normalizable path: plain concatenation
        # mirrors the inner backends' startswith semantics
        full = self.prefix + prefix
        n = len(self.prefix)
        return [p[n:] for p in self.inner.list(full)]

    def size(self, path: str) -> int:
        return self.inner.size(self._map(path))

    # -- append-stream API (the WAL substrate) -------------------------------

    def append(self, path: str, data: bytes) -> int:
        offset = self.inner.append(self._map(path), data)
        self.write_count += 1
        self.written_bytes += len(data)
        return offset

    def sync(self, path: str) -> None:
        self.inner.sync(self._map(path))
        self.fsync_count += 1

    def read_range(self, path: str, offset: int, nbytes: int) -> bytes:
        payload = self.inner.read_range(self._map(path), offset, nbytes)
        self.read_count += 1
        return payload


def tenant_backend(inner: StorageBackend, tenant: str) -> PrefixBackend:
    """``inner`` confined to ``tenants/<tenant>/``.

    Tenant names are single path segments: no slashes, no ``.``/``..``,
    non-empty — anything else could alias another tenant's root.
    """
    if not tenant or "/" in tenant or tenant in (".", "..") \
            or tenant != normalize_path(tenant):
        raise ValueError(f"invalid tenant name: {tenant!r}")
    return PrefixBackend(inner, f"{TENANT_ROOT}/{tenant}")
