"""The checkpoint-store layer: line/section/commit semantics over bytes.

Historically the runtime spoke *path conventions* directly to a
:class:`~repro.storage.stable.StorageBackend` — ``ckpt/v{n}/rank{r}/…``
helpers in :mod:`repro.storage.manifest` scattered every section into its
own object with one durability point each.  That convention is now one
implementation of an explicit interface:

* :class:`CheckpointStore` — owns the semantics every storage consumer
  needs: stage a section, commit a line with its manifest, read/validate
  sections, answer the global queries (``committed_map``,
  ``last_committed_global``), and delete superseded lines.
* :class:`ScatterStore` — the original per-file layout, kept for old
  stores, the baselines, and as the differential oracle for the WAL.
* :class:`~repro.storage.wal.WalStore` — the production engine: one
  append-only log per simulated node, group commit with a single batched
  fsync, recovery by replay, segment-based GC
  (DESIGN.md §8).

:func:`as_store` is the seam every layer normalizes through: protocol,
checkpoint files, drain daemon, restart harness, and campaign all accept
"a store or a bare backend" and meet here.  A bare backend whose
namespace already holds WAL segments is opened as a
:class:`~repro.storage.wal.WalStore` (replaying the log), so an operator
pointing :func:`~repro.core.ccc.resume_from_manifest` at the stable
storage of a failed WAL job restores without knowing which engine wrote
it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import manifest as _manifest
from .stable import StorageBackend, StorageError

#: backend namespace prefix of the WAL engine's segments (used by layout
#: auto-detection; see :func:`as_store` and :mod:`repro.storage.wal`)
WAL_PREFIX = "wal/"


class CheckpointStore:
    """Line/section/commit semantics of one stable checkpoint store.

    A *line* is one ``(version, rank)`` checkpoint: named section
    payloads plus a commit record carrying the manifest (per-section
    size and content digest).  A line is restart-eligible only once its
    commit record is **durable**; implementations decide what durability
    costs (one fsync per object for the scatter layout, one batched
    fsync per node group for the WAL).
    """

    #: the byte store underneath (shared across ranks of a job)
    backend: StorageBackend

    # -- topology ----------------------------------------------------------
    def configure(self, nprocs: int, procs_per_node: int = 1) -> None:
        """Late-bind the job topology (rank→node mapping, group sizes).

        Idempotent; called by every rank's protocol at startup.  The
        scatter layout has no per-node structure, so the default is a
        no-op.
        """

    # -- write path --------------------------------------------------------
    def put_section(self, version: int, rank: int, section: str,
                    payload: bytes) -> None:
        raise NotImplementedError

    def commit_line(self, version: int, rank: int,
                    sections: Optional[Dict[str, Tuple[int, str]]] = None,
                    ) -> None:
        """Record the commit of one line (``sections`` is its manifest)."""
        raise NotImplementedError

    def delete_line(self, version: int, rank: int) -> None:
        """Drop every trace of one line (GC; missing lines are a no-op)."""
        raise NotImplementedError

    # -- durability --------------------------------------------------------
    def flush(self) -> None:
        """Force every staged write durable (end-of-job, studies)."""

    def flush_rank(self, rank: int) -> None:
        """Force ``rank``'s node durable (its ``MPI_Finalize``)."""
        self.flush()

    def on_job_end(self, failed_rank: Optional[int] = None) -> None:
        """Job-lifetime boundary, called once per engine run.

        ``failed_rank`` is the fail-stop victim (None for a clean end).
        A clean end flushes; a crash must apply the implementation's
        loss semantics to the victim's node (the WAL discards/tears the
        unsynced tail).  The scatter layout has no unsynced state.
        """
        if failed_rank is None:
            self.flush()

    # -- read path ---------------------------------------------------------
    def read_section(self, version: int, rank: int, section: str) -> bytes:
        raise NotImplementedError

    def has_section(self, version: int, rank: int, section: str) -> bool:
        raise NotImplementedError

    def section_size(self, version: int, rank: int, section: str) -> int:
        raise NotImplementedError

    def line_manifest(self, version: int, rank: int) -> Optional[dict]:
        """The committed line's manifest record (None if absent/legacy)."""
        raise NotImplementedError

    def validate_line(self, version: int, rank: int,
                      deep: bool = False) -> bool:
        """Is ``(version, rank)`` a committed, un-torn recovery line?"""
        raise NotImplementedError

    # -- global queries ----------------------------------------------------
    def committed_map(self) -> Dict[int, List[int]]:
        """rank -> ascending durably committed versions."""
        raise NotImplementedError

    def lines_on_storage(self) -> Dict[int, List[int]]:
        """rank -> ascending versions with ANY stored object (sees torn
        lines — the view garbage collectors and retention audits need)."""
        raise NotImplementedError

    def committed_versions(self, rank: int) -> List[int]:
        return self.committed_map().get(rank, [])

    def last_committed_local(self, rank: int, validate: bool = False,
                             deep: bool = False) -> Optional[int]:
        """The last (optionally validated) version ``rank`` committed."""
        versions = self.committed_versions(rank)
        if not validate:
            return versions[-1] if versions else None
        for v in reversed(versions):
            if self.validate_line(v, rank, deep=deep):
                return v
        return None

    def last_committed_global(self, nprocs: int,
                              validate: bool = False) -> Optional[int]:
        """Last version committed by *all* ranks (harness-side check)."""
        cmap = self.committed_map()
        candidate: Optional[int] = None
        for rank in range(nprocs):
            versions = cmap.get(rank)
            if not versions:
                return None
            local: Optional[int] = None
            if validate:
                for v in reversed(versions):
                    if self.validate_line(v, rank):
                        local = v
                        break
            else:
                local = versions[-1]
            if local is None:
                return None
            candidate = local if candidate is None else min(candidate, local)
        for rank in range(nprocs):
            if candidate not in cmap.get(rank, []):
                return None
            if validate and not self.validate_line(candidate, rank):
                return None
        return candidate

    def checkpoint_bytes(self, version: int, rank: int) -> int:
        """Total payload bytes of one line (manifest-first, no payload
        reads)."""
        raise NotImplementedError

    # -- accounting --------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes the store currently occupies on its backend (live + any
        not-yet-collected garbage) — the retention studies' metric."""
        return self.backend.total_bytes()


class ScatterStore(CheckpointStore):
    """The per-file layout: every section its own backend object.

    A thin stateful veneer over the :mod:`repro.storage.manifest` path
    helpers — each section ``write`` is an atomic durable object (one
    fsync each on disk), the COMMIT marker is one more, and GC deletes
    the line's objects one by one.  Simple, legible on a filesystem, and
    the baseline the WAL's group commit is measured against.
    """

    def __init__(self, backend: StorageBackend):
        self.backend = backend

    def put_section(self, version, rank, section, payload):
        self.backend.write(_manifest.section_path(version, rank, section),
                           payload)

    def commit_line(self, version, rank, sections=None):
        _manifest.record_commit(self.backend, version, rank,
                                sections=sections)

    def delete_line(self, version, rank):
        for path in self.backend.list(_manifest.line_prefix(version, rank)):
            try:
                self.backend.delete(path)
            except StorageError:
                pass

    def read_section(self, version, rank, section):
        return self.backend.read(_manifest.section_path(version, rank, section))

    def has_section(self, version, rank, section):
        return self.backend.exists(
            _manifest.section_path(version, rank, section))

    def section_size(self, version, rank, section):
        return self.backend.size(_manifest.section_path(version, rank, section))

    def line_manifest(self, version, rank):
        return _manifest.line_manifest(self.backend, version, rank)

    def validate_line(self, version, rank, deep=False):
        return _manifest.validate_line(self.backend, version, rank, deep=deep)

    def committed_map(self):
        return _manifest.committed_map(self.backend)

    def lines_on_storage(self):
        return _manifest.lines_on_storage(self.backend)

    def checkpoint_bytes(self, version, rank):
        return _manifest.checkpoint_bytes(self.backend, version, rank)


def as_store(storage, procs_per_node: Optional[int] = None,
             nprocs: Optional[int] = None) -> CheckpointStore:
    """Normalize "a store or a bare backend" into a :class:`CheckpointStore`.

    * a :class:`CheckpointStore` passes through (optionally configured);
    * a :class:`StorageBackend` whose namespace holds WAL segments opens
      as a :class:`~repro.storage.wal.WalStore` (replaying the log) —
      restart tooling pointed at a bare backend restores either layout;
    * any other backend wraps as a :class:`ScatterStore`.
    """
    if isinstance(storage, CheckpointStore):
        store = storage
    elif isinstance(storage, StorageBackend):
        if storage.list(WAL_PREFIX):
            from .wal import WalStore  # local import: wal imports store
            store = WalStore(storage)
        else:
            store = ScatterStore(storage)
    else:
        raise TypeError(
            f"expected a CheckpointStore or StorageBackend, got "
            f"{type(storage).__name__}")
    if nprocs is not None:
        store.configure(nprocs, procs_per_node or 1)
    return store
