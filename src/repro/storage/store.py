"""The checkpoint-store layer: line/section/commit semantics over bytes.

Historically the runtime spoke *path conventions* directly to a
:class:`~repro.storage.stable.StorageBackend` — ``ckpt/v{n}/rank{r}/…``
helpers in :mod:`repro.storage.manifest` scattered every section into its
own object with one durability point each.  That convention is now one
implementation of an explicit interface:

* :class:`CheckpointStore` — owns the semantics every storage consumer
  needs: stage a section, commit a line with its manifest, read/validate
  sections, answer the global queries (``committed_map``,
  ``last_committed_global``), and delete superseded lines.
* :class:`ScatterStore` — the original per-file layout, kept for old
  stores, the baselines, and as the differential oracle for the WAL.
* :class:`~repro.storage.wal.WalStore` — the production engine: one
  append-only log per simulated node, group commit with a single batched
  fsync, recovery by replay, segment-based GC
  (DESIGN.md §8).

:func:`as_store` is the seam every layer normalizes through: protocol,
checkpoint files, drain daemon, restart harness, and campaign all accept
"a store or a bare backend" and meet here.  A bare backend whose
namespace already holds WAL segments is opened as a
:class:`~repro.storage.wal.WalStore` (replaying the log), so an operator
pointing :func:`~repro.core.ccc.resume_from_manifest` at the stable
storage of a failed WAL job restores without knowing which engine wrote
it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import manifest as _manifest
from .stable import StorageBackend, StorageError

#: backend namespace prefix of the WAL engine's segments (used by layout
#: auto-detection; see :func:`as_store` and :mod:`repro.storage.wal`)
WAL_PREFIX = "wal/"


class CheckpointStore:
    """Line/section/commit semantics of one stable checkpoint store.

    A *line* is one ``(version, rank)`` checkpoint: named section
    payloads plus a commit record carrying the manifest (per-section
    size and content digest).  A line is restart-eligible only once its
    commit record is **durable**; implementations decide what durability
    costs (one fsync per object for the scatter layout, one batched
    fsync per node group for the WAL).
    """

    #: the byte store underneath (shared across ranks of a job)
    backend: StorageBackend

    # -- topology ----------------------------------------------------------
    def configure(self, nprocs: int, procs_per_node: int = 1) -> None:
        """Late-bind the job topology (rank→node mapping, group sizes).

        Idempotent; called by every rank's protocol at startup.  The
        scatter layout has no per-node structure, so the default is a
        no-op.
        """

    # -- write path --------------------------------------------------------
    def put_section(self, version: int, rank: int, section: str,
                    payload: bytes) -> None:
        raise NotImplementedError

    def commit_line(self, version: int, rank: int,
                    sections: Optional[Dict[str, Tuple[int, str]]] = None,
                    ) -> None:
        """Record the commit of one line (``sections`` is its manifest)."""
        raise NotImplementedError

    def delete_line(self, version: int, rank: int) -> None:
        """Drop every trace of one line (GC; missing lines are a no-op)."""
        raise NotImplementedError

    # -- durability --------------------------------------------------------
    def flush(self) -> None:
        """Force every staged write durable (end-of-job, studies)."""

    def flush_rank(self, rank: int) -> None:
        """Force ``rank``'s node durable (its ``MPI_Finalize``)."""
        self.flush()

    def on_job_end(self, failed_rank: Optional[int] = None) -> None:
        """Job-lifetime boundary, called once per engine run.

        ``failed_rank`` is the fail-stop victim (None for a clean end).
        A clean end flushes; a crash must apply the implementation's
        loss semantics to the victim's node (the WAL discards/tears the
        unsynced tail).  The scatter layout has no unsynced state.
        """
        if failed_rank is None:
            self.flush()

    # -- read path ---------------------------------------------------------
    def read_section(self, version: int, rank: int, section: str) -> bytes:
        raise NotImplementedError

    def has_section(self, version: int, rank: int, section: str) -> bool:
        raise NotImplementedError

    def section_size(self, version: int, rank: int, section: str) -> int:
        raise NotImplementedError

    def line_manifest(self, version: int, rank: int) -> Optional[dict]:
        """The committed line's manifest record (None if absent/legacy)."""
        raise NotImplementedError

    def validate_line(self, version: int, rank: int,
                      deep: bool = False) -> bool:
        """Is ``(version, rank)`` a committed, un-torn recovery line?"""
        raise NotImplementedError

    # -- global queries ----------------------------------------------------
    def committed_map(self) -> Dict[int, List[int]]:
        """rank -> ascending durably committed versions."""
        raise NotImplementedError

    def lines_on_storage(self) -> Dict[int, List[int]]:
        """rank -> ascending versions with ANY stored object (sees torn
        lines — the view garbage collectors and retention audits need)."""
        raise NotImplementedError

    def committed_versions(self, rank: int) -> List[int]:
        return self.committed_map().get(rank, [])

    def last_committed_local(self, rank: int, validate: bool = False,
                             deep: bool = False) -> Optional[int]:
        """The last (optionally validated) version ``rank`` committed."""
        versions = self.committed_versions(rank)
        if not validate:
            return versions[-1] if versions else None
        for v in reversed(versions):
            if self.validate_line(v, rank, deep=deep):
                return v
        return None

    def last_committed_global(self, nprocs: int,
                              validate: bool = False) -> Optional[int]:
        """Last version committed by *all* ranks (harness-side check)."""
        cmap = self.committed_map()
        candidate: Optional[int] = None
        for rank in range(nprocs):
            versions = cmap.get(rank)
            if not versions:
                return None
            local: Optional[int] = None
            if validate:
                for v in reversed(versions):
                    if self.validate_line(v, rank):
                        local = v
                        break
            else:
                local = versions[-1]
            if local is None:
                return None
            candidate = local if candidate is None else min(candidate, local)
        for rank in range(nprocs):
            if candidate not in cmap.get(rank, []):
                return None
            if validate and not self.validate_line(candidate, rank):
                return None
        return candidate

    def checkpoint_bytes(self, version: int, rank: int) -> int:
        """Total payload bytes of one line (manifest-first, no payload
        reads)."""
        raise NotImplementedError

    # -- accounting --------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes the store currently occupies on its backend (live + any
        not-yet-collected garbage) — the retention studies' metric."""
        return self.backend.total_bytes()

    # -- cross-process refresh ---------------------------------------------
    def reload(self) -> None:
        """Rebuild in-memory indexes from the backend's bytes.

        The sharded engine calls this on a store whose backend is
        ``shared_across_fork`` (real disk): worker processes wrote
        through their forked store copies directly to the medium, so
        the parent's indexes are stale while the bytes are current.
        Stateless stores (the scatter layout derives everything from
        the backend) need nothing; the WAL re-replays its segments.
        """


class ScatterStore(CheckpointStore):
    """The per-file layout: every section its own backend object.

    A thin stateful veneer over the :mod:`repro.storage.manifest` path
    helpers — each section ``write`` is an atomic durable object (one
    fsync each on disk), the COMMIT marker is one more, and GC deletes
    the line's objects one by one.  Simple, legible on a filesystem, and
    the baseline the WAL's group commit is measured against.
    """

    def __init__(self, backend: StorageBackend):
        self.backend = backend

    def put_section(self, version, rank, section, payload):
        self.backend.write(_manifest.section_path(version, rank, section),
                           payload)

    def commit_line(self, version, rank, sections=None):
        _manifest.record_commit(self.backend, version, rank,
                                sections=sections)

    def delete_line(self, version, rank):
        for path in self.backend.list(_manifest.line_prefix(version, rank)):
            try:
                self.backend.delete(path)
            except StorageError:
                pass

    def read_section(self, version, rank, section):
        return self.backend.read(_manifest.section_path(version, rank, section))

    def has_section(self, version, rank, section):
        return self.backend.exists(
            _manifest.section_path(version, rank, section))

    def section_size(self, version, rank, section):
        return self.backend.size(_manifest.section_path(version, rank, section))

    def line_manifest(self, version, rank):
        return _manifest.line_manifest(self.backend, version, rank)

    def validate_line(self, version, rank, deep=False):
        return _manifest.validate_line(self.backend, version, rank, deep=deep)

    def committed_map(self):
        return _manifest.committed_map(self.backend)

    def lines_on_storage(self):
        return _manifest.lines_on_storage(self.backend)

    def checkpoint_bytes(self, version, rank):
        return _manifest.checkpoint_bytes(self.backend, version, rank)


class RecordingStore(CheckpointStore):
    """Per-shard checkpoint-store veneer for the sharded engine.

    Each forked shard wraps the job's store in one of these.  Three
    concerns, all in service of keeping a sharded run bit-identical to
    the cooperative engine (see DESIGN.md §10):

    * **operation log** — every mutator is recorded (with whether it
      completed), so the parent can replay the shard's writes into the
      real store after the run.  Per-node keyspaces are shard-disjoint,
      which makes shard-order replay exact.  Stores over a
      ``shared_across_fork`` backend (real disk) skip recording: their
      bytes already landed on the medium and the parent reloads instead;
    * **commit notices** — :meth:`take_notices` diffs the inner store's
      ``committed_map`` against what was already reported, yielding the
      ``(version, rank)`` lines that became *durable* since the last
      call (under the WAL a ``commit_line`` is not durable until its
      node's group flush, so notifying on the call itself would leak
      commits other ranks cannot see yet).  The sharded master collects
      these in shard status messages and rebroadcasts them at
      quiescence epochs;
    * **remote-commit overlay** — notices from other shards merge into
      :meth:`committed_map`, so global queries (the GC floor of
      ``last_committed_global``, and with it ``gc_deleted_lines`` in
      the per-rank stats) see exactly the cross-rank commit visibility
      a single-process run has at the same quiescence points.

    Everything else — reads, validation, ``commit_hooks``, counters —
    delegates to the wrapped store via explicit methods plus
    ``__getattr__``.
    """

    def __init__(self, inner: CheckpointStore):
        self.inner = inner
        self.backend = inner.backend
        #: replay log: (method name, args tuple, completed) — a mutator
        #: that raised (the at_group_commit fault hook killing its rank
        #: mid-commit) is recorded with completed=False so replay can
        #: reproduce the exact abort point
        self.ops: List[Tuple[str, tuple, bool]] = []
        self._record = not getattr(inner.backend, "shared_across_fork",
                                   False)
        #: rank -> versions already reported through take_notices
        self._noticed: Dict[int, set] = {}
        #: rank -> versions committed by other shards (overlay)
        self._remote: Dict[int, set] = {}

    # -- mutators (recorded) -----------------------------------------------
    def _logged(self, method: str, *args):
        if not self._record:
            return getattr(self.inner, method)(*args)
        try:
            result = getattr(self.inner, method)(*args)
        except BaseException:
            self.ops.append((method, args, False))
            raise
        self.ops.append((method, args, True))
        return result

    def configure(self, nprocs, procs_per_node=1):
        self._logged("configure", nprocs, procs_per_node)

    def put_section(self, version, rank, section, payload):
        self._logged("put_section", version, rank, section, payload)

    def commit_line(self, version, rank, sections=None):
        self._logged("commit_line", version, rank, sections)

    def delete_line(self, version, rank):
        self._logged("delete_line", version, rank)

    def flush(self):
        self._logged("flush")

    def flush_rank(self, rank):
        self._logged("flush_rank", rank)

    def on_job_end(self, failed_rank=None):
        self._logged("on_job_end", failed_rank)

    # -- sharded-engine plumbing ---------------------------------------------
    def take_notices(self) -> List[Tuple[int, int]]:
        """Durable ``(version, rank)`` commits not yet reported."""
        notices: List[Tuple[int, int]] = []
        for rank, versions in self.inner.committed_map().items():
            seen = self._noticed.setdefault(rank, set())
            for v in versions:
                if v not in seen:
                    seen.add(v)
                    notices.append((v, rank))
        notices.sort()
        return notices

    def apply_remote_commits(self, notices) -> None:
        """Merge rebroadcast ``(version, rank)`` notices into the overlay
        (notices for locally committed lines are harmless duplicates)."""
        for version, rank in notices:
            self._remote.setdefault(rank, set()).add(version)

    # -- reads / global queries ----------------------------------------------
    def read_section(self, version, rank, section):
        return self.inner.read_section(version, rank, section)

    def has_section(self, version, rank, section):
        return self.inner.has_section(version, rank, section)

    def section_size(self, version, rank, section):
        return self.inner.section_size(version, rank, section)

    def line_manifest(self, version, rank):
        return self.inner.line_manifest(version, rank)

    def validate_line(self, version, rank, deep=False):
        return self.inner.validate_line(version, rank, deep=deep)

    def committed_map(self):
        cmap = self.inner.committed_map()
        if self._remote:
            cmap = dict(cmap)
            for rank, versions in self._remote.items():
                cmap[rank] = sorted(set(cmap.get(rank, ())) | versions)
        return cmap

    def lines_on_storage(self):
        return self.inner.lines_on_storage()

    def checkpoint_bytes(self, version, rank):
        return self.inner.checkpoint_bytes(version, rank)

    def storage_bytes(self):
        return self.inner.storage_bytes()

    def reload(self):
        self.inner.reload()

    def __getattr__(self, name):
        if name == "inner":  # guard recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)


class _ReplayAbort(Exception):
    """Raised by the temporary replay commit hook to cut a replayed
    ``commit_line`` at the same point the shard's fault did."""


def replay_ops(store: CheckpointStore,
               ops: List[Tuple[str, tuple, bool]]) -> None:
    """Re-apply a shard's recorded mutations to the real store.

    Completed calls replay verbatim.  A ``commit_line`` that did *not*
    complete was cut by its rank's ``at_group_commit`` fault hook after
    the COMMIT record was staged but before the group-flush decision;
    replay reproduces that exact state by installing a hook that raises
    at the same point.  Other incomplete mutators left no durable state
    and are skipped.
    """
    hooks = getattr(store, "commit_hooks", None)
    for method, args, completed in ops:
        if completed:
            getattr(store, method)(*args)
            continue
        if method == "commit_line" and hooks is not None:
            rank = args[1]
            prev = hooks.get(rank)

            def _abort(_version):
                raise _ReplayAbort()

            hooks[rank] = _abort
            try:
                store.commit_line(*args)
            except _ReplayAbort:
                pass
            finally:
                if prev is None:
                    hooks.pop(rank, None)
                else:
                    hooks[rank] = prev


def as_store(storage, procs_per_node: Optional[int] = None,
             nprocs: Optional[int] = None) -> CheckpointStore:
    """Normalize "a store or a bare backend" into a :class:`CheckpointStore`.

    * a :class:`CheckpointStore` passes through (optionally configured);
    * a :class:`StorageBackend` whose namespace holds WAL segments opens
      as a :class:`~repro.storage.wal.WalStore` (replaying the log) —
      restart tooling pointed at a bare backend restores either layout;
    * any other backend wraps as a :class:`ScatterStore`.
    """
    if isinstance(storage, CheckpointStore):
        store = storage
    elif isinstance(storage, StorageBackend):
        if storage.list(WAL_PREFIX):
            from .wal import WalStore  # local import: wal imports store
            store = WalStore(storage)
        else:
            store = ScatterStore(storage)
    else:
        raise TypeError(
            f"expected a CheckpointStore or StorageBackend, got "
            f"{type(storage).__name__}")
    if nprocs is not None:
        store.configure(nprocs, procs_per_node or 1)
    return store
