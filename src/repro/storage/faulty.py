"""Storage-fault injection: a hostile disk behind the storage seam.

The recovery campaign kills *processes*; real systems also lose data to
the storage stack itself — torn multi-sector writes, short writes under
memory pressure, media bit-rot, a full disk, a controller that lies
about durability.  :class:`FaultyStorage` wraps any
:class:`~repro.storage.stable.StorageBackend` and injects exactly those
faults on a deterministic schedule, so the fault fuzzer
(:mod:`repro.harness.fuzz`) can attack the section digests of the
scatter layout (PR 5) and the record CRCs of the WAL (PR 6) at any
operation of a run.  :class:`FaultyStore` is the matching
:class:`~repro.storage.store.CheckpointStore` wrapper that sequences
the crash semantics: on a failed job it first applies the stalled-sync
data loss to the backend, *then* lets the inner store run its own crash
model (the WAL's torn-tail append and replay).

Fault classes (:data:`STORAGE_FAULT_KINDS`):

* ``torn_write`` — an atomic ``write`` persists only a prefix of the
  payload (the torn-marker / torn-section scenario);
* ``short_append`` — an ``append`` persists only a prefix, so the log's
  in-memory offsets run ahead of the bytes on disk and the next record
  lands torn (the WAL-CRC scenario);
* ``bit_rot`` — one bit of the object just written/appended flips on
  the medium (the digest/CRC corruption scenario);
* ``enospc`` — ``write``/``append`` raises
  :class:`~repro.storage.stable.StorageError` ("disk full") for a
  stretch of operations;
* ``stall_sync`` — a ``sync`` is acknowledged but buys no durability:
  everything appended since the last honest sync is lost if the job
  crashes before a later sync succeeds (the lying-controller /
  stalled-drain scenario).

Every fault is triggered by an *eligible-operation count* (1-based,
filtered by ``path_prefix``), never wall time, so a schedule replays
bit-identically under the cooperative engine.  Injections are counted
per class in :attr:`FaultyStorage.injected` and reported to the fuzz
coverage map as ``storage:<kind>`` points; with an empty schedule the
wrapper is bitwise-transparent and adds nothing but attribute
forwarding.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import coverage
from .stable import StorageBackend, StorageError
from .store import CheckpointStore

#: every injectable fault class, in display order
STORAGE_FAULT_KINDS = ("torn_write", "short_append", "bit_rot", "enospc",
                      "stall_sync")

#: which backend operations each fault class counts as eligible
_OP_CLASS = {
    "torn_write": ("write",),
    "short_append": ("append",),
    "bit_rot": ("write", "append"),
    "enospc": ("write", "append"),
    "stall_sync": ("sync",),
}


@dataclass
class StorageFault:
    """One scheduled storage fault."""

    kind: str
    #: fire on the N-th eligible operation (1-based) of the kind's class
    after_ops: int = 1
    #: only operations on paths with this prefix are eligible ("" = all)
    path_prefix: str = ""
    #: fraction of the payload a torn/short write persists
    keep_fraction: float = 0.5
    #: bit index flipped by ``bit_rot`` (modulo the object's bit length)
    bit: int = 0
    #: consecutive eligible operations affected (``enospc``/``stall_sync``
    #: stretches; torn/short/bit-rot hit exactly once regardless)
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise ValueError(f"unknown storage-fault kind {self.kind!r}; "
                             f"expected one of {STORAGE_FAULT_KINDS}")
        if self.after_ops < 1:
            raise ValueError("after_ops is a 1-based operation index")
        if not (0.0 <= self.keep_fraction < 1.0):
            raise ValueError("keep_fraction must be in [0, 1)")
        if self.bit < 0:
            raise ValueError("bit must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def describe(self) -> str:
        parts = [f"{self.kind} at op {self.after_ops}"]
        if self.count > 1:
            parts.append(f"x{self.count}")
        if self.path_prefix:
            parts.append(f"under {self.path_prefix!r}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form: kind plus non-default fields."""
        out: Dict[str, Any] = {"kind": self.kind, "after_ops": self.after_ops}
        if self.path_prefix:
            out["path_prefix"] = self.path_prefix
        if self.keep_fraction != 0.5:
            out["keep_fraction"] = self.keep_fraction
        if self.bit:
            out["bit"] = self.bit
        if self.count != 1:
            out["count"] = self.count
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StorageFault":
        allowed = {f.name for f in fields(cls)}
        bad = sorted(set(data) - allowed)
        if bad:
            raise ValueError(f"unknown StorageFault fields: {bad}")
        return cls(**data)


class FaultyStorage(StorageBackend):
    """A :class:`StorageBackend` proxy that injects scheduled faults.

    Deterministic: each fault keeps its own eligible-operation counter,
    so the same schedule against the same operation stream injects at
    the same instants.  Unknown attributes (the accounting counters,
    ``root``, ...) forward to the wrapped backend, so existing studies
    read the real traffic.
    """

    def __init__(self, inner: StorageBackend,
                 faults: Sequence[StorageFault] = ()):
        self.inner = inner
        self.faults: List[StorageFault] = list(faults)
        #: fault class -> number of operations actually perturbed
        self.injected: Dict[str, int] = {k: 0 for k in STORAGE_FAULT_KINDS}
        self._seen: Dict[int, int] = {}       # id(fault) -> eligible ops
        self._done: Dict[int, int] = {}       # id(fault) -> injections
        #: path -> durable length at the last honest durability point
        self._synced_len: Dict[str, int] = {}
        #: paths with at least one swallowed sync since their last honest
        #: durability point (the bytes a crash would lose)
        self._stalled: set = set()

    # -- fault scheduling ----------------------------------------------------
    def _due(self, op: str, path: str) -> List[StorageFault]:
        """Advance eligibility counters; return the faults firing now."""
        due = []
        for fault in self.faults:
            if op not in _OP_CLASS[fault.kind]:
                continue
            if fault.path_prefix and not path.startswith(fault.path_prefix):
                continue
            key = id(fault)
            seen = self._seen.get(key, 0) + 1
            self._seen[key] = seen
            done = self._done.get(key, 0)
            limit = fault.count if fault.kind in ("enospc", "stall_sync") \
                else 1
            if done < limit and seen >= fault.after_ops:
                self._done[key] = done + 1
                due.append(fault)
        return due

    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        coverage.hit(f"storage:{kind}")

    @staticmethod
    def _cut(data: bytes, keep_fraction: float) -> bytes:
        """The prefix a torn/short write persists (always a strict one)."""
        if len(data) <= 1:
            return b""
        return data[:max(1, int(len(data) * keep_fraction))]

    def _rot(self, path: str, bit: int) -> None:
        """Flip one bit of the stored object (best-effort: empty objects
        have no medium to rot)."""
        try:
            payload = bytearray(self.inner.read(path))
        except StorageError:
            return
        if not payload:
            return
        index = bit % (len(payload) * 8)
        payload[index // 8] ^= 1 << (index % 8)
        self.inner.write(path, bytes(payload))
        self._record("bit_rot")

    # -- StorageBackend API --------------------------------------------------
    def write(self, path: str, data: bytes) -> None:
        due = self._due("write", path)
        for fault in due:
            if fault.kind == "enospc":
                self._record("enospc")
                raise StorageError(f"no space left on device (injected) "
                                   f"writing {path!r}")
        torn = next((f for f in due if f.kind == "torn_write"), None)
        if torn is not None:
            data = self._cut(data, torn.keep_fraction)
        self.inner.write(path, data)
        # an atomic write is its own durability point
        self._synced_len[path] = len(data)
        self._stalled.discard(path)
        if torn is not None:
            self._record("torn_write")
        for fault in due:
            if fault.kind == "bit_rot":
                self._rot(path, fault.bit)

    def append(self, path: str, data: bytes) -> int:
        due = self._due("append", path)
        for fault in due:
            if fault.kind == "enospc":
                self._record("enospc")
                raise StorageError(f"no space left on device (injected) "
                                   f"appending to {path!r}")
        short = next((f for f in due if f.kind == "short_append"), None)
        if short is not None:
            data = self._cut(data, short.keep_fraction)
        offset = self.inner.append(path, data)
        if short is not None:
            self._record("short_append")
        for fault in due:
            if fault.kind == "bit_rot":
                self._rot(path, fault.bit)
        return offset

    def sync(self, path: str) -> None:
        due = self._due("sync", path)
        if any(f.kind == "stall_sync" for f in due):
            # acknowledged, not durable: the unsynced tail stays exposed
            self._record("stall_sync")
            self._stalled.add(path)
            return
        self.inner.sync(path)
        try:
            self._synced_len[path] = self.inner.size(path)
        except StorageError:
            self._synced_len.pop(path, None)
        self._stalled.discard(path)

    def read(self, path: str) -> bytes:
        return self.inner.read(path)

    def read_range(self, path: str, offset: int, nbytes: int) -> bytes:
        return self.inner.read_range(path, offset, nbytes)

    def exists(self, path: str) -> bool:
        return self.inner.exists(path)

    def delete(self, path: str) -> None:
        self.inner.delete(path)
        self._synced_len.pop(path, None)
        self._stalled.discard(path)

    def list(self, prefix: str = "") -> List[str]:
        return self.inner.list(prefix)

    def size(self, path: str) -> int:
        return self.inner.size(path)

    # -- crash semantics -----------------------------------------------------
    def apply_crash(self) -> None:
        """Lose what the stalled syncs never made durable.

        Every path whose last durability point was swallowed is truncated
        back to its recorded durable length — the medium state a crash
        exposes.  Called by :class:`FaultyStore` *before* the inner
        store's own crash handling, so WAL replay parses the post-loss
        bytes.
        """
        for path in sorted(self._stalled):
            durable = self._synced_len.get(path, 0)
            try:
                current = self.inner.read(path)
            except StorageError:
                continue
            if len(current) <= durable:
                continue
            coverage.hit("storage:stall_loss")
            if durable:
                self.inner.write(path, current[:durable])
            else:
                try:
                    self.inner.delete(path)
                except StorageError:
                    pass
        self._stalled.clear()

    def settle(self) -> None:
        """A clean job end: the page cache drains after all, nothing is
        lost — forget the stalled state."""
        self._stalled.clear()

    def __getattr__(self, name: str):
        # counters (write_count, fsync_count, ...) and backend-specific
        # attributes forward to the wrapped backend
        if name == "inner":  # guard recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.inner, name)


class FaultyStore(CheckpointStore):
    """A :class:`CheckpointStore` proxy sequencing storage-fault crashes.

    Delegates every store operation to the wrapped store; its one job is
    :meth:`on_job_end`, where a failed run first applies the backend's
    stalled-sync loss (:meth:`FaultyStorage.apply_crash`) and only then
    runs the inner store's crash model — the order a real crash imposes:
    the medium loses data at the instant of the crash, recovery replays
    whatever is left.
    """

    def __init__(self, inner: CheckpointStore,
                 faulty_backend: Optional[FaultyStorage] = None):
        self.inner = inner
        self.backend = faulty_backend if faulty_backend is not None \
            else inner.backend
        self._faulty = faulty_backend

    # -- crash sequencing ----------------------------------------------------
    def on_job_end(self, failed_rank: Optional[int] = None) -> None:
        if self._faulty is not None:
            if failed_rank is None:
                self._faulty.settle()
            else:
                self._faulty.apply_crash()
        self.inner.on_job_end(failed_rank)

    # -- delegation ----------------------------------------------------------
    def configure(self, nprocs: int, procs_per_node: int = 1) -> None:
        self.inner.configure(nprocs, procs_per_node)

    def put_section(self, version, rank, section, payload):
        self.inner.put_section(version, rank, section, payload)

    def commit_line(self, version, rank, sections=None):
        self.inner.commit_line(version, rank, sections=sections)

    def delete_line(self, version, rank):
        self.inner.delete_line(version, rank)

    def flush(self):
        self.inner.flush()

    def flush_rank(self, rank):
        self.inner.flush_rank(rank)

    def read_section(self, version, rank, section):
        return self.inner.read_section(version, rank, section)

    def has_section(self, version, rank, section):
        return self.inner.has_section(version, rank, section)

    def section_size(self, version, rank, section):
        return self.inner.section_size(version, rank, section)

    def line_manifest(self, version, rank):
        return self.inner.line_manifest(version, rank)

    def validate_line(self, version, rank, deep=False):
        return self.inner.validate_line(version, rank, deep=deep)

    def committed_map(self):
        return self.inner.committed_map()

    def lines_on_storage(self):
        return self.inner.lines_on_storage()

    def checkpoint_bytes(self, version, rank):
        return self.inner.checkpoint_bytes(version, rank)

    def storage_bytes(self):
        return self.inner.storage_bytes()

    @property
    def commit_hooks(self):
        # the WAL's at_group_commit fault window must keep working
        # through the wrapper
        return self.inner.commit_hooks

    @property
    def stats(self):
        return self.inner.stats
