"""Stable-storage substrate: backends, commit manifest, drain daemon."""

from .drain import DrainDaemon, DrainDevice, DrainReport
from .manifest import (
    checkpoint_bytes, commit_path, committed_map, committed_versions,
    delete_line, last_committed_global, last_committed_local, line_manifest,
    record_commit, section_digest, section_path, validate_line,
)
from .namespace import PrefixBackend, tenant_backend
from .stable import DiskStorage, InMemoryStorage, StorageBackend, StorageError
from .store import CheckpointStore, ScatterStore, as_store
from .wal import WalStore

__all__ = [
    "StorageBackend", "InMemoryStorage", "DiskStorage", "StorageError",
    "PrefixBackend", "tenant_backend",
    "record_commit", "committed_map", "committed_versions",
    "last_committed_local", "last_committed_global", "checkpoint_bytes",
    "section_path", "commit_path", "line_manifest", "section_digest",
    "validate_line", "delete_line",
    "DrainDaemon", "DrainDevice", "DrainReport",
    "CheckpointStore", "ScatterStore", "WalStore", "as_store",
]
