"""Stable-storage substrate: backends, commit manifest, drain daemon."""

from .drain import DrainDaemon, DrainReport
from .manifest import (
    checkpoint_bytes, commit_path, committed_versions, last_committed_global,
    last_committed_local, record_commit, section_path,
)
from .stable import DiskStorage, InMemoryStorage, StorageBackend, StorageError

__all__ = [
    "StorageBackend", "InMemoryStorage", "DiskStorage", "StorageError",
    "record_commit", "committed_versions", "last_committed_local",
    "last_committed_global", "checkpoint_bytes", "section_path", "commit_path",
    "DrainDaemon", "DrainReport",
]
