"""Checkpoint commit manifest.

Layout inside a storage backend::

    ckpt/v{version}/rank{r}/{section}     checkpoint payload sections
    ckpt/v{version}/rank{r}/COMMIT        per-rank commit marker

A recovery line is usable only if **every** rank committed it.  Each rank
can answer "what is the last version I committed?" locally; the global
answer is the minimum over ranks, computed during recovery with an
all-reduce — exactly the "global reduction to find last checkpoint
committed on all nodes" step of ``chkpt_RestoreCheckpoint`` (Figure 5).
This module provides the local queries plus a harness-side global check.

Crash consistency
-----------------
A COMMIT marker is no longer a bare token: it carries a *section
manifest* — the name, size, and content digest of every section of the
line — and is written only after every section is durable (in the
overlapped write-back pipeline, only once the virtual-time drain of the
staged bytes has completed).  :func:`validate_line` rejects *torn* lines:
a marker whose manifest names a missing section, a section whose stored
size disagrees with the manifest, or (with ``deep=True``) a payload whose
digest no longer matches.  Recovery queries skip torn lines and fall back
to the previous committed line.

Legacy markers (the bare ``b"ok"`` of earlier versions) are still
accepted and validate vacuously, so old stores remain restorable.
"""

from __future__ import annotations

import hashlib
import re
from typing import Dict, List, Optional, Tuple

from .stable import StorageBackend, StorageError

_VERSION_RE = re.compile(r"^ckpt/v(\d+)/rank(\d+)/COMMIT$")
_LINE_RE = re.compile(r"^ckpt/v(\d+)/rank(\d+)/")

#: legacy commit marker payload (no manifest)
LEGACY_MARKER = b"ok"


def section_path(version: int, rank: int, section: str) -> str:
    return f"ckpt/v{version}/rank{rank}/{section}"


def line_prefix(version: int, rank: int) -> str:
    return f"ckpt/v{version}/rank{rank}/"


def commit_path(version: int, rank: int) -> str:
    return f"ckpt/v{version}/rank{rank}/COMMIT"


def section_digest(payload: bytes) -> str:
    """Content digest recorded in the manifest (hex)."""
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def record_commit(storage: StorageBackend, version: int, rank: int,
                  sections: Optional[Dict[str, Tuple[int, str]]] = None,
                  ) -> None:
    """Atomically mark ``version`` committed by ``rank``.

    ``sections`` maps each section name to its ``(nbytes, digest)`` pair;
    when given, the marker carries the manifest that
    :func:`validate_line` checks at restore.  ``None`` writes the legacy
    bare marker (kept for the baselines and old stores).
    """
    if sections is None:
        storage.write(commit_path(version, rank), LEGACY_MARKER)
        return
    from ..statesave import serializer
    record = {
        "version": version,
        "rank": rank,
        "sections": {name: [int(nbytes), str(digest)]
                     for name, (nbytes, digest) in sections.items()},
    }
    storage.write(commit_path(version, rank), serializer.dumps(record))


def parse_commit_record(data: bytes) -> Optional[dict]:
    """The manifest carried by a COMMIT marker, or None for legacy markers.

    A marker that is neither the legacy token nor a well-formed manifest
    — a torn write or bit-rot caught mid-marker — raises
    :class:`StorageError`: the *line* is bad, not the program.  (Found
    by the fault fuzzer: a torn COMMIT marker used to escape as a raw
    ``IndexError``/``ValueError`` from the deserializer, crashing every
    recovery query instead of failing validation.)
    """
    if data == LEGACY_MARKER:
        return None
    from ..statesave import serializer
    try:
        record = serializer.loads(data)
    except Exception as exc:
        raise StorageError(f"corrupt COMMIT marker: {exc}") from None
    if not isinstance(record, dict) or "sections" not in record:
        raise StorageError("corrupt COMMIT marker: not a manifest")
    return record


def line_manifest(storage: StorageBackend, version: int, rank: int,
                  ) -> Optional[dict]:
    """Read and parse one line's COMMIT manifest (None if legacy/absent).

    A corrupt marker also reads as None: callers of this accessor want
    "the manifest, if one is usable" — rejecting the line outright is
    :func:`validate_line`'s job, and the restore path deep-validates
    before it ever builds a reader on the line.
    """
    try:
        data = storage.read(commit_path(version, rank))
        return parse_commit_record(data)
    except StorageError:
        return None


def validate_line(storage: StorageBackend, version: int, rank: int,
                  deep: bool = False) -> bool:
    """Is ``(version, rank)`` a committed, un-torn recovery line?

    Shallow validation (the default) checks that the COMMIT marker
    exists and that every manifest section is present with the recorded
    size — an ``os.stat`` per section on :class:`DiskStorage`, no
    payload reads.  ``deep=True`` additionally re-digests every payload,
    which is what the restore path uses on its candidate line.
    Legacy (manifest-less) markers validate vacuously.
    """
    from .. import coverage
    try:
        marker = storage.read(commit_path(version, rank))
        record = parse_commit_record(marker)
    except StorageError:
        return False
    if record is None:
        return True
    if record.get("version") != version or record.get("rank") != rank:
        return False
    for name, (nbytes, digest) in record["sections"].items():
        path = section_path(version, rank, name)
        try:
            if storage.size(path) != nbytes:
                return False
            if deep and section_digest(storage.read(path)) != digest:
                coverage.hit("path:digest_rejected")
                return False
        except StorageError:
            return False
    return True


def committed_map(storage: StorageBackend) -> Dict[int, List[int]]:
    """rank -> ascending committed versions, from ONE listing pass.

    The building block of every global query: a single
    ``storage.list("ckpt/")`` walk instead of one full namespace scan per
    rank (the old behavior was O(nprocs x objects) at restore).
    """
    out: Dict[int, List[int]] = {}
    for path in storage.list("ckpt/"):
        m = _VERSION_RE.match(path)
        if m:
            out.setdefault(int(m.group(2)), []).append(int(m.group(1)))
    for versions in out.values():
        versions.sort()
    return out


def committed_versions(storage: StorageBackend, rank: int) -> List[int]:
    """All versions this rank has committed, ascending."""
    return committed_map(storage).get(rank, [])


def lines_on_storage(storage: StorageBackend) -> Dict[int, List[int]]:
    """rank -> ascending versions with ANY object on storage, one pass.

    Unlike :func:`committed_map` this also sees *torn* lines (sections
    without a COMMIT marker) — the view garbage collectors and retention
    audits need.
    """
    out: Dict[int, set] = {}
    for path in storage.list("ckpt/"):
        m = _LINE_RE.match(path)
        if m:
            out.setdefault(int(m.group(2)), set()).add(int(m.group(1)))
    return {rank: sorted(versions) for rank, versions in out.items()}


def last_committed_local(storage: StorageBackend, rank: int,
                         validate: bool = False,
                         deep: bool = False) -> Optional[int]:
    """The last (optionally validated) version this rank committed.

    With ``validate=True`` torn lines are skipped: the scan walks the
    rank's committed versions newest-first and returns the first one
    whose manifest checks out (``deep`` re-digests payloads).
    """
    versions = committed_versions(storage, rank)
    if not validate:
        return versions[-1] if versions else None
    for v in reversed(versions):
        if validate_line(storage, v, rank, deep=deep):
            return v
    return None


def last_committed_global(storage: StorageBackend, nprocs: int,
                          validate: bool = False) -> Optional[int]:
    """Last version committed by *all* ranks (harness-side check).

    One listing pass builds the whole rank->versions map; the candidate
    is the min of per-rank maxima, verified against every rank's set.
    ``validate=True`` additionally shallow-validates each rank's
    candidate lines, skipping torn ones.
    """
    cmap = committed_map(storage)
    candidate: Optional[int] = None
    for rank in range(nprocs):
        versions = cmap.get(rank)
        if not versions:
            return None
        local: Optional[int] = None
        if validate:
            for v in reversed(versions):
                if validate_line(storage, v, rank):
                    local = v
                    break
        else:
            local = versions[-1]
        if local is None:
            return None
        candidate = local if candidate is None else min(candidate, local)
    # The minimum of per-rank maxima is committed everywhere because each rank
    # commits versions in order; verify defensively anyway.
    for rank in range(nprocs):
        if candidate not in cmap.get(rank, []):
            return None
        if validate and not validate_line(storage, candidate, rank):
            return None
    return candidate


def checkpoint_bytes(storage: StorageBackend, version: int, rank: int) -> int:
    """Total payload bytes of one rank's checkpoint (excluding the marker).

    Prefers the COMMIT manifest (no storage metadata walk at all, and
    stale sections left by a pre-crash attempt at the same version are
    not counted); otherwise sums :meth:`StorageBackend.size` over the
    line's sections — never reads payloads.
    """
    record = line_manifest(storage, version, rank)
    if record is not None:
        return sum(int(nbytes) for nbytes, _ in record["sections"].values())
    total = 0
    for path in storage.list(line_prefix(version, rank)):
        if not path.endswith("/COMMIT"):
            total += storage.size(path)
    return total


def delete_line(storage: StorageBackend, version: int, rank: int) -> None:
    """Remove every object of one rank's line (sections + marker).

    Used by recovery-line garbage collection; missing objects are
    ignored so concurrent deletion attempts are harmless.
    """
    for path in storage.list(line_prefix(version, rank)):
        try:
            storage.delete(path)
        except StorageError:
            pass
