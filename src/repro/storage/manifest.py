"""Checkpoint commit manifest.

Layout inside a storage backend::

    ckpt/v{version}/rank{r}/{section}     checkpoint payload sections
    ckpt/v{version}/rank{r}/COMMIT        per-rank commit marker

A recovery line is usable only if **every** rank committed it.  Each rank
can answer "what is the last version I committed?" locally; the global
answer is the minimum over ranks, computed during recovery with an
all-reduce — exactly the "global reduction to find last checkpoint
committed on all nodes" step of ``chkpt_RestoreCheckpoint`` (Figure 5).
This module provides the local queries plus a harness-side global check.
"""

from __future__ import annotations

import re
from typing import List, Optional

from .stable import StorageBackend

_VERSION_RE = re.compile(r"^ckpt/v(\d+)/rank(\d+)/COMMIT$")


def section_path(version: int, rank: int, section: str) -> str:
    return f"ckpt/v{version}/rank{rank}/{section}"


def commit_path(version: int, rank: int) -> str:
    return f"ckpt/v{version}/rank{rank}/COMMIT"


def record_commit(storage: StorageBackend, version: int, rank: int) -> None:
    """Atomically mark ``version`` committed by ``rank``."""
    storage.write(commit_path(version, rank), b"ok")


def committed_versions(storage: StorageBackend, rank: int) -> List[int]:
    """All versions this rank has committed, ascending."""
    versions = []
    for path in storage.list("ckpt/"):
        m = _VERSION_RE.match(path)
        if m and int(m.group(2)) == rank:
            versions.append(int(m.group(1)))
    return sorted(versions)


def last_committed_local(storage: StorageBackend, rank: int) -> Optional[int]:
    """The last version this rank committed, or None."""
    versions = committed_versions(storage, rank)
    return versions[-1] if versions else None


def last_committed_global(storage: StorageBackend, nprocs: int) -> Optional[int]:
    """Last version committed by *all* ranks (harness-side check)."""
    candidate: Optional[int] = None
    for rank in range(nprocs):
        local = last_committed_local(storage, rank)
        if local is None:
            return None
        candidate = local if candidate is None else min(candidate, local)
    # The minimum of per-rank maxima is committed everywhere because each rank
    # commits versions in order; verify defensively anyway.
    for rank in range(nprocs):
        if candidate not in committed_versions(storage, rank):
            return None
    return candidate


def checkpoint_bytes(storage: StorageBackend, version: int, rank: int) -> int:
    """Total payload bytes of one rank's checkpoint (excluding the marker)."""
    total = 0
    prefix = f"ckpt/v{version}/rank{rank}/"
    for path in storage.list(prefix):
        if not path.endswith("/COMMIT"):
            total += len(storage.read(path))
    return total
