"""Stable-storage backends.

A checkpoint is only useful if it survives the failure, so the runtime
writes through a :class:`StorageBackend`.  Two implementations:

* :class:`InMemoryStorage` — a thread-safe dict.  It deliberately survives
  engine teardown (the harness keeps it across the failed run and the
  restarted run), playing the role of the node-local disk.  Fast enough
  for tests and benches.
* :class:`DiskStorage` — real files under a root directory, with atomic
  writes (temp file + rename), for the examples and durability tests.

Backends are pure byte stores; *time* for I/O is charged by the caller
from the machine model (``disk_write_time``), so configuration #2 of
Tables 4–5 (go through the motions, skip the write) is expressible.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Dict, List


class StorageError(Exception):
    """Missing object / invalid path in a storage backend."""


class StorageBackend:
    """Abstract byte store keyed by slash-separated paths."""

    def write(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def read(self, path: str) -> bytes:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def delete(self, path: str) -> None:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        """All paths starting with ``prefix``, sorted."""
        raise NotImplementedError

    def size(self, path: str) -> int:
        """Size in bytes of one stored object, without reading its payload."""
        raise NotImplementedError

    def total_bytes(self, prefix: str = "") -> int:
        return sum(self.size(p) for p in self.list(prefix))


class InMemoryStorage(StorageBackend):
    """Thread-safe in-memory byte store (the simulated node-local disk)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._data: Dict[str, bytes] = {}
        self.write_count = 0
        self.written_bytes = 0

    def write(self, path: str, data: bytes) -> None:
        with self._lock:
            self._data[path] = bytes(data)
            self.write_count += 1
            self.written_bytes += len(data)

    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                return self._data[path]
            except KeyError:
                raise StorageError(f"no stored object at {path!r}") from None

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._data

    def delete(self, path: str) -> None:
        with self._lock:
            if path not in self._data:
                raise StorageError(f"no stored object at {path!r}")
            del self._data[path]

    def list(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(p for p in self._data if p.startswith(prefix))

    def size(self, path: str) -> int:
        with self._lock:
            try:
                return len(self._data[path])
            except KeyError:
                raise StorageError(f"no stored object at {path!r}") from None


class DiskStorage(StorageBackend):
    """File-backed store with atomic writes.

    Writes are lock-free: each goes to a uniquely named temp file
    (pid + thread id + per-instance counter) that is fsynced and then
    atomically ``os.replace``d into place.  Concurrent writers — the
    overlapped drain path commits many ranks' sections through one
    backend — therefore never serialize on a backend-global mutex, and
    readers always observe either the old or the new complete payload.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: itertools.count is advanced atomically under the GIL; combined
        #: with pid+tid it makes temp names collision-free
        self._tmp_seq = itertools.count()

    def _fs_path(self, path: str) -> str:
        norm = os.path.normpath(path)
        if norm.startswith("..") or os.path.isabs(norm):
            raise StorageError(f"path escapes storage root: {path!r}")
        return os.path.join(self.root, norm)

    def write(self, path: str, data: bytes) -> None:
        fs = self._fs_path(path)
        os.makedirs(os.path.dirname(fs), exist_ok=True)
        tmp = (f"{fs}.{os.getpid()}.{threading.get_ident()}"
               f".{next(self._tmp_seq)}.tmp")
        try:
            with open(tmp, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, fs)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def read(self, path: str) -> bytes:
        fs = self._fs_path(path)
        try:
            with open(fs, "rb") as f:
                return f.read()
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._fs_path(path))

    def delete(self, path: str) -> None:
        try:
            os.remove(self._fs_path(path))
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None

    def size(self, path: str) -> int:
        try:
            return os.stat(self._fs_path(path)).st_size
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None

    def list(self, prefix: str = "") -> List[str]:
        out = []
        for dirpath, _dirs, files in os.walk(self.root):
            for fname in files:
                if fname.endswith(".tmp"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fname), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    out.append(rel)
        return sorted(out)
