"""Stable-storage backends.

A checkpoint is only useful if it survives the failure, so the runtime
writes through a :class:`StorageBackend`.  Two implementations:

* :class:`InMemoryStorage` — a thread-safe dict.  It deliberately survives
  engine teardown (the harness keeps it across the failed run and the
  restarted run), playing the role of the node-local disk.  Fast enough
  for tests and benches.
* :class:`DiskStorage` — real files under a root directory, with atomic
  writes (temp file + rename), for the examples and durability tests.

Backends are pure byte stores; *time* for I/O is charged by the caller
from the machine model (``disk_write_time``), so configuration #2 of
Tables 4–5 (go through the motions, skip the write) is expressible.

Both backends expose the same path discipline (slash-separated relative
paths; anything escaping the root is rejected) and the same accounting
counters (``write_count``, ``written_bytes``, ``fsync_count``), so a
campaign's storage traffic can be compared across backends without the
semantics silently diverging.  ``fsync_count`` models durability points:
:class:`DiskStorage` counts real ``os.fsync`` calls, and
:class:`InMemoryStorage` counts where the disk backend *would* have
fsynced (one per atomic ``write``, one per ``sync``) — which is what
lets the group-commit study report fsyncs-per-committed-line on either.

On top of the atomic object operations the backends support an
*append stream* API — :meth:`StorageBackend.append`,
:meth:`StorageBackend.sync`, :meth:`StorageBackend.read_range` — used by
the log-structured WAL engine (:mod:`repro.storage.wal`): appends extend
an object without the read-modify-write an atomic ``write`` would need,
carry **no** durability on their own, and become durable only at the
next ``sync`` (the batched fsync of a group commit).
"""

from __future__ import annotations

import itertools
import os
import posixpath
import threading
from typing import Dict, List


class StorageError(Exception):
    """Missing object / invalid path in a storage backend."""


def normalize_path(path: str) -> str:
    """Canonical slash-separated relative path, or :class:`StorageError`.

    The one normalization both backends share: collapse ``.``/``//``
    segments, reject absolute paths and anything whose ``..`` segments
    would escape the storage root.  Keeping this in one place is what
    stops campaign results from silently diverging by backend — a path
    :class:`DiskStorage` refuses must be refused in memory too.
    """
    norm = posixpath.normpath(path)
    if norm.startswith("..") or posixpath.isabs(norm) or norm == ".":
        raise StorageError(f"path escapes storage root: {path!r}")
    return norm


class StorageBackend:
    """Abstract byte store keyed by slash-separated paths."""

    #: True when writes made in a forked child are visible to the parent
    #: process (real files).  The sharded engine uses this to decide
    #: between replaying a shard's recorded store operations (private
    #: memory) and reloading indexes from the medium (shared bytes).
    shared_across_fork = False

    def write(self, path: str, data: bytes) -> None:
        raise NotImplementedError

    def read(self, path: str) -> bytes:
        raise NotImplementedError

    def exists(self, path: str) -> bool:
        raise NotImplementedError

    def delete(self, path: str) -> None:
        raise NotImplementedError

    def list(self, prefix: str = "") -> List[str]:
        """All paths starting with ``prefix``, sorted."""
        raise NotImplementedError

    def size(self, path: str) -> int:
        """Size in bytes of one stored object, without reading its payload."""
        raise NotImplementedError

    def total_bytes(self, prefix: str = "") -> int:
        return sum(self.size(p) for p in self.list(prefix))

    # -- append-stream API (the WAL substrate) ------------------------------
    def append(self, path: str, data: bytes) -> int:
        """Extend ``path`` with ``data`` (creating it if absent).

        Returns the offset the appended bytes start at.  Appends carry no
        durability: a crash before the next :meth:`sync` may lose or tear
        the appended tail — exactly the window the WAL replay truncates.
        """
        raise NotImplementedError

    def sync(self, path: str) -> None:
        """Durability point for everything appended to ``path`` so far."""
        raise NotImplementedError

    def read_range(self, path: str, offset: int, nbytes: int) -> bytes:
        """``nbytes`` of one object starting at ``offset`` (may be short
        if the object ends first)."""
        return self.read(path)[offset:offset + nbytes]


class InMemoryStorage(StorageBackend):
    """Thread-safe in-memory byte store (the simulated node-local disk)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._data: Dict[str, bytes] = {}
        self.write_count = 0
        self.written_bytes = 0
        #: durability points the disk backend would have paid (one per
        #: atomic write, one per explicit sync) — see the module docstring
        self.fsync_count = 0
        #: payload reads (``read`` + ``read_range``) — lets the fuzzer's
        #: coverage see validation/replay passes on either backend
        self.read_count = 0

    def write(self, path: str, data: bytes) -> None:
        path = normalize_path(path)
        with self._lock:
            self._data[path] = bytes(data)
            self.write_count += 1
            self.written_bytes += len(data)
            self.fsync_count += 1

    def read(self, path: str) -> bytes:
        path = normalize_path(path)
        with self._lock:
            try:
                payload = self._data[path]
            except KeyError:
                raise StorageError(f"no stored object at {path!r}") from None
            self.read_count += 1
            return payload

    def exists(self, path: str) -> bool:
        path = normalize_path(path)
        with self._lock:
            return path in self._data

    def delete(self, path: str) -> None:
        path = normalize_path(path)
        with self._lock:
            if path not in self._data:
                raise StorageError(f"no stored object at {path!r}")
            del self._data[path]

    def list(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(p for p in self._data if p.startswith(prefix))

    def size(self, path: str) -> int:
        path = normalize_path(path)
        with self._lock:
            try:
                return len(self._data[path])
            except KeyError:
                raise StorageError(f"no stored object at {path!r}") from None

    def append(self, path: str, data: bytes) -> int:
        path = normalize_path(path)
        with self._lock:
            old = self._data.get(path, b"")
            self._data[path] = old + bytes(data)
            self.write_count += 1
            self.written_bytes += len(data)
            return len(old)

    def sync(self, path: str) -> None:
        normalize_path(path)
        with self._lock:
            self.fsync_count += 1

    def read_range(self, path: str, offset: int, nbytes: int) -> bytes:
        path = normalize_path(path)
        with self._lock:
            try:
                payload = self._data[path][offset:offset + nbytes]
            except KeyError:
                raise StorageError(f"no stored object at {path!r}") from None
            self.read_count += 1
            return payload


class DiskStorage(StorageBackend):
    """File-backed store with atomic writes.

    ``shared_across_fork``: the files are visible to every process, so
    sharded workers write through and the parent reloads (no op replay).

    Writes are lock-free: each goes to a uniquely named temp file
    (pid + thread id + per-instance counter) that is fsynced and then
    atomically ``os.replace``d into place.  Concurrent writers — the
    overlapped drain path commits many ranks' sections through one
    backend — therefore never serialize on a backend-global mutex, and
    readers always observe either the old or the new complete payload.

    Appends go straight to the file (``"ab"``), unsynced; :meth:`sync`
    fsyncs the file once — the WAL's group-commit durability point.
    """

    shared_across_fork = True

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        #: itertools.count is advanced atomically under the GIL; combined
        #: with pid+tid it makes temp names collision-free
        self._tmp_seq = itertools.count()
        self.write_count = 0
        self.written_bytes = 0
        self.fsync_count = 0
        self.read_count = 0

    def _fs_path(self, path: str) -> str:
        return os.path.join(self.root, normalize_path(path).replace("/", os.sep))

    def write(self, path: str, data: bytes) -> None:
        fs = self._fs_path(path)
        os.makedirs(os.path.dirname(fs), exist_ok=True)
        tmp = (f"{fs}.{os.getpid()}.{threading.get_ident()}"
               f".{next(self._tmp_seq)}.tmp")
        try:
            with open(tmp, "wb") as f:
                f.write(data)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, fs)
            self.write_count += 1
            self.written_bytes += len(data)
            self.fsync_count += 1
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def read(self, path: str) -> bytes:
        fs = self._fs_path(path)
        try:
            with open(fs, "rb") as f:
                payload = f.read()
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None
        self.read_count += 1
        return payload

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._fs_path(path))

    def delete(self, path: str) -> None:
        try:
            os.remove(self._fs_path(path))
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None

    def size(self, path: str) -> int:
        try:
            return os.stat(self._fs_path(path)).st_size
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None

    def list(self, prefix: str = "") -> List[str]:
        # Prune the walk to the deepest directory the prefix pins down:
        # GC and committed_map list on every commit, and walking the whole
        # root made each of those O(total objects) instead of O(line).
        dirpart, _, _ = prefix.rpartition("/")
        base = self.root
        if dirpart:
            try:
                base = os.path.join(self.root,
                                    normalize_path(dirpart).replace("/", os.sep))
            except StorageError:
                return []
        out = []
        if not os.path.isdir(base):
            return out
        for dirpath, _dirs, files in os.walk(base):
            for fname in files:
                if fname.endswith(".tmp"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fname), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    out.append(rel)
        return sorted(out)

    def append(self, path: str, data: bytes) -> int:
        fs = self._fs_path(path)
        os.makedirs(os.path.dirname(fs), exist_ok=True)
        with open(fs, "ab") as f:
            offset = f.tell()
            f.write(data)
        self.write_count += 1
        self.written_bytes += len(data)
        return offset

    def sync(self, path: str) -> None:
        fs = self._fs_path(path)
        try:
            with open(fs, "rb") as f:
                os.fsync(f.fileno())
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None
        self.fsync_count += 1

    def read_range(self, path: str, offset: int, nbytes: int) -> bytes:
        fs = self._fs_path(path)
        try:
            with open(fs, "rb") as f:
                f.seek(offset)
                payload = f.read(nbytes)
        except FileNotFoundError:
            raise StorageError(f"no stored object at {path!r}") from None
        self.read_count += 1
        return payload
