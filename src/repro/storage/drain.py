"""Asynchronous checkpoint drain daemon (PSC-style).

Section 6.4 of the paper: writing checkpoints to node-local disk does not
by itself give fault tolerance, because a dead node takes its disk with
it; but writing directly to a remote disk contends with application
traffic.  The strategy used at the Pittsburgh Supercomputing Center — and
the one C3 integrates with — is to write locally and have an *external
daemon* asynchronously drain the files to off-cluster storage over a
secondary network.

:class:`DrainDaemon` models that: given per-rank checkpoint sizes and the
machine's secondary-network/remote-disk bandwidth, it computes when each
rank's checkpoint becomes safe off-cluster, and by how much the
application would have been delayed had it written remotely in-line
(the comparison the design argument rests on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..mpi.timemodel import MachineModel
from .manifest import checkpoint_bytes, last_committed_global
from .stable import StorageBackend


@dataclass
class DrainReport:
    """Outcome of draining one recovery line off-cluster."""

    #: virtual time each rank's local write finished
    local_done: List[float]
    #: virtual time each rank's data was safe off-cluster
    remote_done: List[float]
    #: when the whole recovery line became durable off-cluster
    line_durable_at: float
    #: extra application delay a *synchronous* remote write would have cost
    synchronous_penalty: float


class DrainDaemon:
    """Models local-write + asynchronous remote drain of one checkpoint."""

    def __init__(self, machine: MachineModel, drain_streams: int = 4):
        if drain_streams < 1:
            raise ValueError("drain_streams must be >= 1")
        self.machine = machine
        #: concurrent node->remote transfer streams the daemon multiplexes
        self.drain_streams = drain_streams

    def drain(self, start_times: Sequence[float], sizes: Sequence[int]) -> DrainReport:
        """Drain per-rank checkpoints written locally at ``start_times``.

        ``sizes`` are bytes per rank.  The daemon serves local files in
        completion order, ``drain_streams`` at a time, each at the remote
        disk bandwidth.
        """
        if len(start_times) != len(sizes):
            raise ValueError("start_times and sizes must have equal length")
        m = self.machine
        local_done = [t + m.disk_write_time(s) for t, s in zip(start_times, sizes)]
        order = sorted(range(len(sizes)), key=lambda i: local_done[i])
        # greedy multiplex onto the drain streams
        stream_free = [0.0] * self.drain_streams
        remote_done = [0.0] * len(sizes)
        for i in order:
            s = min(range(self.drain_streams), key=lambda j: stream_free[j])
            begin = max(local_done[i], stream_free[s])
            cost = m.disk_latency + sizes[i] / m.remote_disk_bandwidth
            remote_done[i] = begin + cost
            stream_free[s] = remote_done[i]
        sync_penalty = max(
            (m.disk_latency + s / m.remote_disk_bandwidth) - m.disk_write_time(s)
            for s in sizes
        ) if sizes else 0.0
        return DrainReport(
            local_done=local_done,
            remote_done=remote_done,
            line_durable_at=max(remote_done) if remote_done else 0.0,
            synchronous_penalty=max(0.0, sync_penalty),
        )

    def drain_line(self, storage: StorageBackend, nprocs: int,
                   version: Optional[int] = None,
                   start_times: Optional[Sequence[float]] = None,
                   ) -> Optional[DrainReport]:
        """Drain a committed recovery line straight from the manifest.

        The entry point the recovery campaign (and any harness working
        against real stable storage) uses: look up ``version`` — by
        default the last line committed on *all* ranks — read each rank's
        actual checkpoint payload size from the storage backend, and model
        the off-cluster drain of exactly those bytes.  Returns ``None``
        when the storage holds no complete recovery line.

        ``start_times`` defaults to every rank starting its local write at
        t=0 (the worst case for drain-stream contention).
        """
        if version is None:
            version = last_committed_global(storage, nprocs)
            if version is None:
                return None
        sizes = [checkpoint_bytes(storage, version, r) for r in range(nprocs)]
        if start_times is None:
            start_times = [0.0] * nprocs
        return self.drain(start_times, sizes)
