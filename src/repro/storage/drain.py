"""Asynchronous checkpoint drain daemon (PSC-style).

Section 6.4 of the paper: writing checkpoints to node-local disk does not
by itself give fault tolerance, because a dead node takes its disk with
it; but writing directly to a remote disk contends with application
traffic.  The strategy used at the Pittsburgh Supercomputing Center — and
the one C3 integrates with — is to write locally and have an *external
daemon* asynchronously drain the files to off-cluster storage over a
secondary network.

:class:`DrainDaemon` models that: given per-rank checkpoint sizes and the
machine's secondary-network/remote-disk bandwidth, it computes when each
rank's checkpoint becomes safe off-cluster, and by how much the
application would have been delayed had it written remotely in-line
(the comparison the design argument rests on).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..mpi.timemodel import MachineModel
from .stable import StorageBackend
from .store import as_store


class DrainDevice:
    """Scheduler-integrated virtual-time node-local disk.

    The live counterpart of :class:`DrainDaemon`'s postmortem report: one
    FIFO write queue per *node* (co-located ranks — ``procs_per_node`` of
    the machine model — share their node's disk bandwidth), advanced in
    virtual time as ranks stage checkpoint bytes.  ``submit`` returns the
    virtual instant the staged bytes are durable on the local disk; the
    protocol writes the COMMIT marker only once the rank's clock passes
    that instant, which is what makes the overlapped write-back pipeline
    crash-consistent — a rank killed mid-drain leaves sections without a
    marker, and recovery falls back to the previous committed line.

    Under the default cooperative scheduler exactly one rank runs at a
    time, so submission order — and therefore every completion time — is
    deterministic.  The lock only matters for the threaded escape-hatch
    backend.
    """

    def __init__(self, machine: MachineModel, nprocs: int):
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.machine = machine
        self.procs_per_node = max(1, machine.procs_per_node)
        nodes = -(-nprocs // self.procs_per_node)  # ceil
        #: per-node virtual time the disk becomes idle
        self._busy_until = [0.0] * nodes
        self._lock = threading.Lock()
        #: accounting the studies read
        self.submissions = 0
        self.submitted_bytes = 0

    def node_of(self, rank: int) -> int:
        return rank // self.procs_per_node

    def submit(self, rank: int, nbytes: int, now: float) -> float:
        """Queue ``nbytes`` from ``rank`` at virtual time ``now``.

        Returns the virtual time the write completes: the request starts
        when both the submitter has staged it and the node's disk has
        finished everything queued before it, then runs at the machine's
        local-disk bandwidth (one seek latency per request, matching the
        in-line path's ``disk_write_time`` charge).
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        node = self.node_of(rank)
        with self._lock:
            start = max(now, self._busy_until[node])
            done = start + self.machine.disk_write_time(nbytes)
            self._busy_until[node] = done
            self.submissions += 1
            self.submitted_bytes += nbytes
            return done

    def busy_until(self, rank: int) -> float:
        """Virtual time ``rank``'s node disk becomes idle (for tests)."""
        with self._lock:
            return self._busy_until[self.node_of(rank)]


@dataclass
class DrainReport:
    """Outcome of draining one recovery line off-cluster."""

    #: virtual time each rank's local write finished
    local_done: List[float]
    #: virtual time each rank's data was safe off-cluster
    remote_done: List[float]
    #: when the whole recovery line became durable off-cluster
    line_durable_at: float
    #: extra application delay a *synchronous* remote write would have cost
    synchronous_penalty: float


class DrainDaemon:
    """Models local-write + asynchronous remote drain of one checkpoint."""

    def __init__(self, machine: MachineModel, drain_streams: int = 4):
        if drain_streams < 1:
            raise ValueError("drain_streams must be >= 1")
        self.machine = machine
        #: concurrent node->remote transfer streams the daemon multiplexes
        self.drain_streams = drain_streams

    def drain(self, start_times: Sequence[float], sizes: Sequence[int]) -> DrainReport:
        """Drain per-rank checkpoints written locally at ``start_times``.

        ``sizes`` are bytes per rank.  The daemon serves local files in
        completion order, ``drain_streams`` at a time, each at the remote
        disk bandwidth.
        """
        if len(start_times) != len(sizes):
            raise ValueError("start_times and sizes must have equal length")
        m = self.machine
        local_done = [t + m.disk_write_time(s) for t, s in zip(start_times, sizes)]
        order = sorted(range(len(sizes)), key=lambda i: local_done[i])
        # greedy multiplex onto the drain streams
        stream_free = [0.0] * self.drain_streams
        remote_done = [0.0] * len(sizes)
        for i in order:
            s = min(range(self.drain_streams), key=lambda j: stream_free[j])
            begin = max(local_done[i], stream_free[s])
            cost = m.disk_latency + sizes[i] / m.remote_disk_bandwidth
            remote_done[i] = begin + cost
            stream_free[s] = remote_done[i]
        sync_penalty = max(
            (m.disk_latency + s / m.remote_disk_bandwidth) - m.disk_write_time(s)
            for s in sizes
        ) if sizes else 0.0
        return DrainReport(
            local_done=local_done,
            remote_done=remote_done,
            line_durable_at=max(remote_done) if remote_done else 0.0,
            synchronous_penalty=max(0.0, sync_penalty),
        )

    def drain_line(self, storage, nprocs: int,
                   version: Optional[int] = None,
                   start_times: Optional[Sequence[float]] = None,
                   ) -> Optional[DrainReport]:
        """Drain a committed recovery line straight from the manifest.

        The entry point the recovery campaign (and any harness working
        against real stable storage) uses: look up ``version`` — by
        default the last line committed on *all* ranks — read each rank's
        actual checkpoint payload size from the storage backend, and model
        the off-cluster drain of exactly those bytes.  Returns ``None``
        when the storage holds no complete recovery line.

        ``start_times`` defaults to every rank starting its local write at
        t=0 (the worst case for drain-stream contention).
        """
        store = as_store(storage)
        if version is None:
            version = store.last_committed_global(nprocs)
            if version is None:
                return None
        sizes = [store.checkpoint_bytes(version, r) for r in range(nprocs)]
        if start_times is None:
            start_times = [0.0] * nprocs
        return self.drain(start_times, sizes)
