"""Sharded-engine study: scale smoke + engine-differential campaign.

Two questions about :mod:`repro.mpi.sharded`, answered in one
machine-readable report (``BENCH_shard.json``):

1. **Does it scale?**  A 4096-rank scaling point (the cooperative
   engine's practical sweep tops out around 256 ranks per the
   ``scaling`` module) measured end to end on the sharded backend —
   original vs. C3 makespan, exactly like a ``scaling`` sweep cell.
2. **Is it the same simulator, only faster?**  The recovery campaign
   matrix is run twice — cooperative and ``sharded:N`` — with identical
   scenarios, and the reports are diffed cell by cell.  Everything a
   scenario *verifies* (returns, recovery success, log-replay and
   send-suppression evidence) must match exactly; virtual timings
   match bitwise for point-to-point apps and to a relative tolerance
   for collective-heavy apps, whose drain-triggered commit actions
   land at control-drain observation points (DESIGN.md §10 documents
   the contract; ``tests/mpi/test_sharded.py`` pins it).  Because the
   observing drain itself can differ on those apps, anything coupled
   to *where* a commit landed relative to a kill or to job completion
   is compared structurally instead of numerically: commit instants
   (``line_durable_at``, ``drain_sync_penalty``), retained-line
   counts, the restore-from-line vs. log-replay recovery path when a
   kill races a commit, storm-cell kill counts (survivors execute an
   engine-dependent number of ops before observing an abort), and
   failed executions' makespans — see :func:`diff_rows` for the exact
   per-field rules.

Both campaign passes run the cells inline (no process pool), so the
wall-clock comparison isolates the engine: the cooperative pass is one
interpreter, the sharded pass forks N node-shards per cell.  On a
multi-core runner the sharded pass must win; ``--require-speedup X``
turns that expectation into the exit status (CI gates at >= 4 shards on
>= 4 cores; on fewer cores the gate is refused as vacuous).

Command line::

    python -m repro.harness.shardstudy --json BENCH_shard.json
    python -m repro.harness.shardstudy --matrix full --shards 4 \\
        --require-speedup 1.0
    python -m repro.harness.shardstudy --scale-ranks 4096 --matrix smoke
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from .campaign import full_matrix, run_campaign, smoke_matrix
from .jobs import (
    add_engine_arg, add_output_args, add_storage_arg, add_worker_args,
    write_artifact,
)
from .scaling import measure_scaling_point

__all__ = [
    "diff_rows", "main", "run_study", "scale_smoke",
]

#: virtual timings that may skew by a few drain-position-coupled commit
#: charges on collective-heavy apps: compared under ``rtol`` instead of
#: bitwise (the skew is a handful of call overheads, so it is only
#: visible at the TESTING machine's microsecond-scale makespans)
_TOLERANT_FIELDS = ("golden_seconds", "clean_c3_seconds")
#: commit/GC instants evaluated *at* drain observation points: on
#: collective apps the observing drain itself differs, so the values
#: carry no cross-engine meaning — compared for presence only
_DRAIN_FIELDS = ("line_durable_at", "drain_sync_penalty")
#: derived from failed executions' makespans (abort-observation
#: instants): compared structurally, never numerically
_ABORT_FIELDS = ("total_faulty_seconds", "restart_cost_seconds")


def _close(a, b, rtol: float, atol: float = 0.0) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return math.isclose(float(a), float(b), rel_tol=rtol, abs_tol=atol)


def diff_rows(label: str, rc: Dict, rs: Dict,
              rtol: float = 2e-2, real_kill: bool = False) -> List[str]:
    """Mismatches between a cooperative and a sharded campaign row.

    Empty list = the cell is equivalent under the engine-differential
    contract.  ``engine`` naturally differs and is skipped.  Two
    schedule-coupled regimes get structural instead of numeric
    comparison (both verify bitwise; the *path* to the verified state
    is what differs):

    * ``storm`` cells inject kills probabilistically per executed op,
      and how many ops a survivor executes before observing an abort
      is engine-dependent — so the kill count itself is coupled;
    * a kill whose instant races a drain-triggered commit on a
      collective-heavy app lands on opposite sides of the commit per
      engine, flipping the recovery path between restore-from-line and
      pure log replay (and shifting every makespan downstream of it).

    ``real_kill=True`` is the relaxed grade for diffing a simulated
    engine against a ``supports_real_kill`` one (DESIGN.md §12): a real
    SIGKILL destroys the victim node's *whole* staged WAL tail where
    the simulated engines model a torn tail, so every field coupled to
    what the crash left durable — the commit count, and the replay /
    suppression evidence of the recovering execution — is compared
    structurally.  The verification verdicts (``verified*``), the
    restart count, and the fired-kill evidence stay exact: recovery
    must still reach bitwise-identical results, however it got there.
    ``real_kills`` itself naturally differs (that is the point) and is
    skipped like ``engine``.
    """
    storm = rc.get("kill_timing") == "storm"
    # did both engines take the same recovery path?  if not, makespans
    # downstream of the recovery are not numerically comparable
    same_path = rc.get("restored_version") == rs.get("restored_version")
    bad: List[str] = []
    for k in sorted(set(rc) | set(rs)):
        if k == "engine" or (real_kill and k == "real_kills"):
            continue
        v, w = rc.get(k), rs.get(k)
        if k in _TOLERANT_FIELDS:
            ok = _close(v, w, rtol)
        elif k == "c3_overhead_pct":
            # a ratio of two close numbers: the EP kernels amplify the
            # clean-run commit-position skew into ~2 points of overhead
            # at microsecond-scale makespans
            ok = _close(v, w, rtol, atol=2.5)
        elif k in _DRAIN_FIELDS:
            ok = (v is None) == (w is None)
        elif k == "lines_retained":
            # GC runs at drain observation points; a run that finishes
            # before the final GC pass retains more lines (never fewer
            # than one — the recovery line itself)
            ok = (isinstance(v, int) and isinstance(w, int)
                  and (v == w or (v >= 1 and w >= 1)))
        elif k == "checkpoints_committed":
            # a commit racing the kill instant lands before it on one
            # engine and after it on the other; under a storm the
            # restart counts themselves differ, and each extra restart
            # replays its own commit schedule
            ok = (isinstance(v, int) and isinstance(w, int)
                  and (abs(v - w) <= 1 or storm or real_kill))
        elif k == "restored_version":
            # restore-from-line vs. log-replay is commit-race-coupled;
            # require each engine's own restore evidence to be
            # internally consistent instead
            ok = all((r.get("restored_version") is None)
                     == (not r.get("restore_seconds"))
                     for r in (rc, rs))
        elif k == "restore_seconds":
            ok = True  # judged with restored_version above
        elif k == "restarts":
            ok = v == w or (storm and isinstance(v, int)
                            and isinstance(w, int) and v >= 1 and w >= 1)
        elif k == "run_seconds":
            # failed-run makespans are abort-observation times; the
            # recovered (final) run agrees tightly only when both
            # engines recovered the same way
            ok = (isinstance(v, list) and isinstance(w, list)
                  and bool(v) and bool(w)
                  and float(v[-1]) > 0 and float(w[-1]) > 0)
            if ok and not storm:
                ok = len(v) == len(w) and (
                    not same_path or real_kill
                    or _close(float(v[-1]), float(w[-1]), rtol))
        elif k in _ABORT_FIELDS:
            ok = (v is None) == (w is None) and (
                v is None or (v > 0) == (w > 0))
        elif real_kill and k in ("replayed_from_log", "suppressed_sends"):
            # what a crash leaves in the durable log differs between a
            # lost-whole staged tail (real SIGKILL) and a torn tail
            # (simulated), so the recovering execution's replay and
            # suppression counts carry no cross-grade meaning
            ok = (isinstance(v, int) and isinstance(w, int)
                  and v >= 0 and w >= 0)
        elif k == "fired":
            # describe() strings embed resolved at_time instants, which
            # inherit the collective-app golden-runtime skew; storm
            # kill counts are abort-observation-coupled outright
            ok = (isinstance(v, list) and isinstance(w, list)
                  and (len(v) == len(w)
                       or (storm and bool(v) and bool(w))))
        else:
            ok = v == w
        if not ok:
            bad.append(f"{label}: {k}: {v!r} != {w!r}")
    return bad


def scale_smoke(nprocs: int, shards: int, platform: str = "lemieux",
                app: str = "ring", params: Optional[dict] = None,
                wall_timeout: float = 600.0,
                engine: Optional[str] = None,
                storage: Optional[str] = None) -> Dict:
    """One large-rank scaling point on the engine under study."""
    params = params if params is not None else dict(payload=16, niter=4,
                                                   work=0.1)
    return measure_scaling_point(app, nprocs, platform, params,
                                 engine=engine or f"sharded:{shards}",
                                 wall_timeout=wall_timeout,
                                 storage=storage)


def run_study(shards: int = 4, matrix: str = "smoke", nprocs: int = 4,
              scale_ranks: int = 4096, scale_shards: Optional[int] = None,
              rtol: float = 2e-2, engine: Optional[str] = None,
              storage: Optional[str] = None,
              parallel: Optional[bool] = False,
              max_workers: Optional[int] = None, progress=None) -> Dict:
    """The full study; returns the ``BENCH_shard.json`` payload.

    ``engine`` overrides the engine compared against cooperative
    (default ``sharded:<shards>``); ``storage`` forces a stable-storage
    flavor on both campaign passes and the scaling point (default: the
    scenarios' native backends).  ``parallel`` defaults to ``False``
    because the wall-clock comparison only isolates the engine when
    both campaign passes run inline.
    """
    study_engine = engine or f"sharded:{shards}"
    scenarios = (full_matrix(nprocs=nprocs) if matrix == "full"
                 else smoke_matrix(nprocs=nprocs))
    if storage is not None:
        scenarios = [dataclasses.replace(s, storage=storage)
                     for s in scenarios]

    point = scale_smoke(scale_ranks, scale_shards or shards,
                        engine=engine, storage=storage)

    runs = {}
    for eng in (None, study_engine):
        name = eng or "cooperative"
        if progress:
            progress(f"campaign[{name}]: {len(scenarios)} cells")
        cells = [dataclasses.replace(s, engine=eng) for s in scenarios]
        report = run_campaign(cells, parallel=parallel,
                              max_workers=max_workers)
        runs[name] = report

    coop = runs["cooperative"]
    shard = runs[study_engine]
    mismatches: List[str] = []
    for rc, rs in zip(coop.rows, shard.rows):
        mismatches.extend(diff_rows(rc["scenario"], rc, rs, rtol=rtol))

    speedup = (coop.wall_seconds / shard.wall_seconds
               if shard.wall_seconds else float("inf"))
    report = {
        "shards": shards,
        "matrix": matrix,
        "cells": len(scenarios),
        "cpu_count": os.cpu_count(),
        "scaling_point": point,
        "campaign_wall_seconds": {
            "cooperative": coop.wall_seconds,
            study_engine: shard.wall_seconds,
        },
        "speedup": speedup,
        "cooperative_ok": coop.ok,
        "sharded_ok": shard.ok,
        "cells_match": not mismatches,
        "mismatches": mismatches,
        "summary": {
            "cooperative": coop.summary(),
            study_engine: shard.summary(),
        },
    }
    if engine is not None:
        report["engine"] = study_engine
    if storage is not None:
        report["storage"] = storage
    return report


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.shardstudy",
        description="Scale smoke + cooperative-vs-sharded campaign "
                    "comparison for the sharded virtual-time engine.")
    ap.add_argument("--shards", type=int, default=4,
                    help="worker processes for the sharded passes "
                         "(default 4)")
    ap.add_argument("--matrix", choices=["smoke", "full"], default="smoke",
                    help="campaign matrix to compare (smoke: CI subset; "
                         "full: all 480 app x platform x kill cells)")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per campaign cell (default 4)")
    ap.add_argument("--scale-ranks", type=int, default=4096,
                    help="rank count of the sharded scaling point "
                         "(default 4096)")
    ap.add_argument("--rtol", type=float, default=2e-2,
                    help="relative tolerance for drain-position-coupled "
                         "virtual timings (default 2e-2)")
    ap.add_argument("--require-speedup", type=float, metavar="X",
                    help="exit 1 unless sharded campaign wall is at "
                         "least X times faster than cooperative; refused "
                         "when the machine has fewer cores than shards")
    add_engine_arg(ap, help="engine compared against cooperative: "
                            "threads or sharded[:N] (default: "
                            "sharded:<--shards>)")
    add_storage_arg(ap, help="stable-storage flavor forced on both "
                             "campaign passes and the scaling point "
                             "(default: the scenarios' native backends)")
    add_worker_args(ap)
    add_output_args(ap, quiet=False)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    farm = args.workers is not None and not args.inline
    if args.require_speedup is not None and farm:
        print("refusing --require-speedup with --workers: pool-farmed "
              "campaign passes do not isolate the engine", file=sys.stderr)
        return 2
    t0 = time.time()
    report = run_study(shards=args.shards, matrix=args.matrix,
                       nprocs=args.nprocs, scale_ranks=args.scale_ranks,
                       rtol=args.rtol, engine=args.engine,
                       storage=args.storage,
                       parallel=True if farm else False,
                       max_workers=args.workers,
                       progress=lambda msg: print(msg, flush=True))
    report["wall_seconds"] = time.time() - t0

    point = report["scaling_point"]
    walls = report["campaign_wall_seconds"]
    print(f"scaling point: {point['app']} x {point['nprocs']} ranks on "
          f"{point['platform']}: original {point['original_seconds']:.4f}s, "
          f"C3 {point['c3_seconds']:.4f}s "
          f"({point['overhead_pct']:+.2f}%), "
          f"{point['wall_seconds']:.1f}s wall")
    for name, wall in walls.items():
        print(f"campaign[{name}]: {report['cells']} cells, {wall:.1f}s wall")
    print(f"speedup: {report['speedup']:.2f}x | cells match: "
          f"{report['cells_match']} | verdicts ok: "
          f"coop={report['cooperative_ok']} sharded={report['sharded_ok']}")
    for m in report["mismatches"][:20]:
        print(f"  MISMATCH {m}", file=sys.stderr)

    if args.json:
        write_artifact(args.json, report)

    ok = (report["cells_match"] and report["cooperative_ok"]
          and report["sharded_ok"])
    if args.require_speedup is not None:
        cores = os.cpu_count() or 1
        if cores < args.shards:
            print(f"refusing --require-speedup: {cores} cores < "
                  f"{args.shards} shards makes the gate vacuous",
                  file=sys.stderr)
            return 2
        if report["speedup"] < args.require_speedup:
            print(f"speedup {report['speedup']:.2f}x below required "
                  f"{args.require_speedup:.2f}x", file=sys.stderr)
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
