"""WAL group-commit study: fsyncs-per-line of the log-structured engine.

The scatter layout pays one durability point per storage object — every
section and every COMMIT marker of every rank is its own fsync, which is
exactly the cost model ROADMAP item 5 says the storage layer cannot
carry into campaign-as-a-service scale.  The WAL engine
(:mod:`repro.storage.wal`, DESIGN.md §8) amortizes it: co-located ranks
append into one per-node log and a line's commits ride down in a single
batched fsync per node — the *group commit*.

Two row families, both gate-judged (exit status 1 on violation):

* **Commit cells** — a real C3 job per (platform, kernel), once over the
  scatter layout and once over the WAL, both on the real-file
  :class:`~repro.storage.stable.DiskStorage` backend.  Gates: the WAL's
  fsyncs-per-committed-line must be *strictly below* the scatter
  layout's; the WAL must stay within one fsync per node per committed
  line (plus one end-of-job flush per node); and segment GC must leave
  at most 2 live recovery lines per rank.
* **Discipline cells** — a controlled write schedule (every rank commits
  ``lines`` lines, no job noise) on both backends across node shapes.
  Gate: **exactly** one fsync per node per group-committed line — the
  pinned form of the acceptance bound — and a reopened store must
  replay to the same index with bitwise-identical payloads.

Command line::

    python -m repro.harness.walstudy                    # all 3 platforms
    python -m repro.harness.walstudy --json BENCH_wal.json
    python -m repro.harness.walstudy --platforms lemieux --kernels heat
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..core.ccc import run_c3, run_original
from ..core.protocol import C3Config
from ..mpi.timemodel import MACHINES
from ..storage.manifest import section_digest
from ..storage.stable import DiskStorage, InMemoryStorage
from ..storage.store import as_store
from ..storage.wal import WalStore
from .jobs import (
    add_engine_arg, add_output_args, add_storage_arg, add_worker_args,
    fail_exit, require_known, write_artifact,
)
from .overlap import OVERLAP_KERNELS
from .parallel import Cell, CellError, run_cells
from .report import render_table

__all__ = [
    "WAL_KERNELS", "WAL_PLATFORMS", "commit_rows", "discipline_rows",
    "main", "measure_commit_cell", "measure_discipline_cell",
    "render_commits", "render_discipline",
]

#: the three platform models of the evaluation; their procs_per_node
#: (4 / 2 / 2) are the group sizes the WAL coalesces commits over
WAL_PLATFORMS = ("lemieux", "velocity2", "cmi")

#: steady-state-sized kernels (shared with the overlap study): several
#: checkpoint intervals per run, commits and GC happening *during* the
#: run rather than piling into the end-of-job flush
WAL_KERNELS: Dict[str, dict] = OVERLAP_KERNELS

#: checkpoint interval as a fraction of the golden runtime (the overlap
#: study's steady-state cadence)
INTERVAL_FRAC = 0.18


def _nodes(nprocs: int, procs_per_node: int) -> int:
    return -(-nprocs // max(1, procs_per_node))


def _retained(store) -> int:
    return max((len(v) for v in store.lines_on_storage().values()),
               default=0)


def measure_commit_cell(platform: str, kernel: str, nprocs: int = 4,
                        engine: Optional[str] = None,
                        backend: str = "disk") -> Dict:
    """Top-level (picklable) cell body: one scatter-vs-WAL commit row.

    ``backend`` picks the storage backend both engines run over:
    ``"disk"`` (the study default — real files, real fsyncs via the
    counter seam) or ``"memory"`` (the same counters on the in-memory
    backend, for quick differential runs via ``--storage memory``).
    """
    machine = MACHINES[platform]
    golden = run_original(name_app(kernel), nprocs, machine=machine,
                          engine=engine)
    golden.raise_errors()
    config = C3Config(
        checkpoint_interval=golden.virtual_time * INTERVAL_FRAC)
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as tmp:
        def make_backend(tag: str):
            if backend == "memory":
                return InMemoryStorage()
            return DiskStorage(f"{tmp}/{tag}")

        scatter_backend = make_backend("scatter")
        result, _ = run_c3(name_app(kernel), nprocs, machine=machine,
                           storage=scatter_backend, config=config,
                           engine=engine)
        result.raise_errors()
        scatter = as_store(scatter_backend)
        scatter_lines = scatter.last_committed_global(nprocs) or 0
        scatter_fsyncs = scatter_backend.fsync_count
        scatter_bytes = scatter_backend.total_bytes()
        scatter_retained = _retained(scatter)

        wal_backend = make_backend("wal")
        store = WalStore(wal_backend)
        result, _ = run_c3(name_app(kernel), nprocs, machine=machine,
                           storage=store, config=config,
                           engine=engine)
        result.raise_errors()
        wal_lines = store.last_committed_global(nprocs) or 0
        wal_fsyncs = wal_backend.fsync_count
        wal_bytes = wal_backend.total_bytes()
        wal_retained = _retained(store)
        wal_stats = store.stats()
    nodes = _nodes(nprocs, machine.procs_per_node)
    row = {
        "platform": platform,
        "kernel": kernel,
        "nprocs": nprocs,
        "nodes": nodes,
        "procs_per_node": machine.procs_per_node,
        "scatter_lines": scatter_lines,
        "wal_lines": wal_lines,
        "scatter_fsyncs": scatter_fsyncs,
        "wal_fsyncs": wal_fsyncs,
        "scatter_fsyncs_per_line": (scatter_fsyncs / scatter_lines
                                    if scatter_lines else None),
        "wal_fsyncs_per_line": (wal_fsyncs / wal_lines
                                if wal_lines else None),
        "wal_fsyncs_per_node_per_line": (
            wal_fsyncs / (nodes * wal_lines) if wal_lines else None),
        "group_commits": wal_stats["group_commits"],
        "segments_created": wal_stats["segments_created"],
        "segments_retired": wal_stats["segments_retired"],
        "segments_compacted": wal_stats["segments_compacted"],
        "scatter_stored_bytes": scatter_bytes,
        "wal_stored_bytes": wal_bytes,
        "scatter_lines_retained": scatter_retained,
        "wal_lines_retained": wal_retained,
    }
    if backend != "disk":
        row["backend"] = backend
    row["failure"] = _judge_commit(row)
    row["passed"] = row["failure"] is None
    return row


def commit_rows(platforms: Sequence[str] = WAL_PLATFORMS,
                kernels: Optional[Sequence[str]] = None,
                nprocs: int = 4,
                engine: Optional[str] = None,
                parallel: Optional[bool] = None,
                max_workers: Optional[int] = None,
                backend: str = "disk",
                on_row=None) -> List[Dict]:
    """One gate-judged scatter-vs-WAL cell per (platform, kernel)."""
    names = list(kernels) if kernels else sorted(WAL_KERNELS)
    cells = [Cell(measure_commit_cell,
                  dict(platform=platform, kernel=name, nprocs=nprocs,
                       engine=engine, backend=backend),
                  label=f"wal:{platform}/{name}")
             for platform in platforms for name in names]
    rows: List[Dict] = []

    def on_result(_i: int, cell: Cell, result) -> None:
        if isinstance(result, CellError):
            err = result
            result = dict.fromkeys(_COMMIT_METRICS)
            result.update(platform=cell.kwargs["platform"],
                          kernel=cell.kwargs["kernel"], nprocs=nprocs,
                          failure=err.error, passed=False)
        rows.append(result)
        if on_row is not None:
            on_row(result)

    run_cells(cells, parallel=parallel, max_workers=max_workers,
              on_result=on_result)
    return rows


#: metric keys nulled out in the row of a cell whose worker died
_COMMIT_METRICS = (
    "nodes", "procs_per_node", "scatter_lines", "wal_lines",
    "scatter_fsyncs", "wal_fsyncs", "scatter_fsyncs_per_line",
    "wal_fsyncs_per_line", "wal_fsyncs_per_node_per_line",
    "group_commits", "segments_created", "segments_retired",
    "segments_compacted", "scatter_stored_bytes", "wal_stored_bytes",
    "scatter_lines_retained", "wal_lines_retained",
)


def name_app(name: str):
    """The campaign-style app callable for one study kernel."""
    from ..apps import APPS
    app = APPS[name]
    params = WAL_KERNELS[name]

    def wrapped(ctx):
        return app(ctx, **params)

    wrapped.__name__ = f"{name}_walstudy"
    return wrapped


def _judge_commit(row: Dict) -> Optional[str]:
    """The group-commit gates for one scatter-vs-WAL cell (None = pass)."""
    if row["scatter_lines"] < 2 or row["wal_lines"] < 2:
        return (f"too few committed lines for a steady-state measurement "
                f"(scatter {row['scatter_lines']}, wal {row['wal_lines']})")
    if not row["wal_fsyncs_per_line"] < row["scatter_fsyncs_per_line"]:
        return (f"group commit did not reduce fsyncs per line "
                f"({row['wal_fsyncs_per_line']:.2f} >= "
                f"{row['scatter_fsyncs_per_line']:.2f})")
    # <= 1 fsync per node per committed line, plus at most one
    # end-of-job flush per node (the MPI_Finalize drain of staged GC
    # tombstones).
    budget = row["nodes"] * (row["wal_lines"] + 1)
    if row["wal_fsyncs"] > budget:
        return (f"WAL exceeded one fsync per node per committed line "
                f"({row['wal_fsyncs']} > {row['nodes']} nodes x "
                f"({row['wal_lines']} lines + 1 final flush))")
    # Segment GC must retain no more lines than the scatter layout's
    # per-file deletes, and <= 2 whenever the cell reaches GC steady
    # state (kernels whose drain backlog defers every commit into the
    # end-of-job flush legitimately retain more — identically on both
    # engines, so the parity bound is the storage-engine gate).
    budget = max(2, row["scatter_lines_retained"])
    if row["wal_lines_retained"] > budget:
        return (f"segment GC left {row['wal_lines_retained']} recovery "
                f"lines per rank on storage (> {budget}: the scatter "
                "baseline's retention)")
    return None


def measure_discipline_cell(backend_name: str, ppn: int, nprocs: int = 4,
                            lines: int = 6) -> Dict:
    """Top-level (picklable) cell body: one controlled group-commit row."""
    with tempfile.TemporaryDirectory(prefix="repro-wal-") as tmp:
        if backend_name == "disk":
            backend = DiskStorage(tmp)
        else:
            backend = InMemoryStorage()
        store = WalStore(backend)
        store.configure(nprocs, procs_per_node=ppn)
        payloads = {}
        for v in range(1, lines + 1):
            for r in range(nprocs):
                payload = bytes(((v * 31 + r + i) % 256)
                                for i in range(128))
                payloads[(v, r)] = payload
                store.put_section(v, r, "state", payload)
                store.commit_line(
                    v, r, sections={
                        "state": (len(payload),
                                  section_digest(payload))})
        nodes = _nodes(nprocs, ppn)
        fsyncs = backend.fsync_count
        replay_ok = True
        if backend_name == "disk":
            reopened = WalStore(backend)
            reopened.configure(nprocs, procs_per_node=ppn)
            replay_ok = (
                reopened.last_committed_global(nprocs) == lines
                and all(reopened.read_section(v, r, "state")
                        == payloads[(v, r)]
                        for v in range(1, lines + 1)
                        for r in range(nprocs)))
    row = {
        "backend": backend_name,
        "nprocs": nprocs,
        "procs_per_node": ppn,
        "nodes": nodes,
        "lines": lines,
        "fsyncs": fsyncs,
        "fsyncs_per_node_per_line": fsyncs / (nodes * lines),
        "replay_bitwise": replay_ok,
    }
    row["failure"] = _judge_discipline(row)
    row["passed"] = row["failure"] is None
    return row


def discipline_rows(nprocs: int = 4, lines: int = 6,
                    backends: Sequence[str] = ("memory", "disk"),
                    parallel: Optional[bool] = None,
                    max_workers: Optional[int] = None,
                    on_row=None) -> List[Dict]:
    """Controlled group-commit cells: exact fsync counts, replay parity.

    Every rank writes one section and commits, for ``lines`` lines, over
    every node shape — no job noise, so the fsync count is pinned
    *exactly*: one per node per group-committed line.  The disk cells
    then reopen the backend cold and require WAL replay to rebuild the
    same committed index with bitwise-identical payloads.
    """
    cells = [Cell(measure_discipline_cell,
                  dict(backend_name=backend_name, ppn=ppn, nprocs=nprocs,
                       lines=lines),
                  label=f"wal-discipline:{backend_name}/ppn{ppn}")
             for backend_name in backends for ppn in (1, 2, nprocs)]
    rows: List[Dict] = []

    def on_result(_i: int, cell: Cell, result) -> None:
        if isinstance(result, CellError):
            err = result
            result = dict.fromkeys(("nodes", "lines", "fsyncs",
                                    "fsyncs_per_node_per_line",
                                    "replay_bitwise"))
            result.update(backend=cell.kwargs["backend_name"],
                          nprocs=nprocs,
                          procs_per_node=cell.kwargs["ppn"],
                          failure=err.error, passed=False)
        rows.append(result)
        if on_row is not None:
            on_row(result)

    run_cells(cells, parallel=parallel, max_workers=max_workers,
              on_result=on_result)
    return rows


def _judge_discipline(row: Dict) -> Optional[str]:
    expected = row["nodes"] * row["lines"]
    if row["fsyncs"] != expected:
        return (f"expected exactly one fsync per node per line "
                f"({expected}), counted {row['fsyncs']}")
    if not row["replay_bitwise"]:
        return "replayed store did not match the written lines bitwise"
    return None


def render_commits(rows: Sequence[Dict]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append([
            r["platform"], r["kernel"], "PASS" if r["passed"] else "FAIL",
            r["wal_lines"],
            r["scatter_fsyncs_per_line"], r["wal_fsyncs_per_line"],
            r["wal_fsyncs_per_node_per_line"],
            r["group_commits"], r["segments_retired"],
            r["wal_lines_retained"],
        ])
    return render_table(
        "WAL group commit vs per-file scatter (DiskStorage; fsyncs per "
        "committed line)",
        ["Platform", "Kernel", "Gate", "Lines", "Scatter f/l", "WAL f/l",
         "WAL f/node/l", "GrpCommits", "SegRetired", "Held"],
        table_rows, widths=[9, 8, 5, 6, 12, 9, 13, 10, 10, 5],
    )


def render_discipline(rows: Sequence[Dict]) -> str:
    table_rows = []
    for r in rows:
        table_rows.append([
            f"{r['backend']}/ppn{r['procs_per_node']}",
            "PASS" if r["passed"] else "FAIL",
            r["nodes"], r["lines"], r["fsyncs"],
            r["fsyncs_per_node_per_line"],
            "yes" if r["replay_bitwise"] else "NO",
        ])
    return render_table(
        "Group-commit discipline: exactly one fsync per node per line",
        ["Cell", "Gate", "Nodes", "Lines", "Fsyncs", "F/node/line",
         "Replay="],
        table_rows, widths=[12, 5, 6, 6, 7, 12, 8],
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.walstudy",
        description="WAL group-commit study: fsyncs per committed line of "
                    "the log-structured engine vs the per-file scatter "
                    "layout on real files, plus exact-count group-commit "
                    "discipline cells; exits non-zero if group commit does "
                    "not reduce fsyncs per line, exceeds one fsync per "
                    "node per line, or GC retains more than 2 lines.")
    ap.add_argument("--platforms",
                    help="comma-separated platform models "
                         f"(default: {', '.join(WAL_PLATFORMS)})")
    ap.add_argument("--kernels",
                    help="comma-separated kernels "
                         f"(default: {', '.join(sorted(WAL_KERNELS))})")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per run (default 4)")
    add_engine_arg(ap)
    add_storage_arg(ap, help="storage backend under *both* engines of the "
                             "commit cells: disk (the study default: real "
                             "files, real fsyncs) or memory/wal flavors "
                             "mapping to the in-memory backend")
    ap.add_argument("--skip-discipline", action="store_true",
                    help="commit cells only (no controlled-count slice)")
    add_worker_args(ap)
    add_output_args(ap)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    platforms = (args.platforms.split(",") if args.platforms
                 else list(WAL_PLATFORMS))
    kernels = args.kernels.split(",") if args.kernels else None
    rc = require_known(platforms, MACHINES, "platforms")
    if rc is None and kernels:
        rc = require_known(kernels, WAL_KERNELS, "kernels")
    if rc:
        return rc
    # the study inherently compares scatter vs WAL; --storage selects the
    # backend both engines run over (disk flavors = the study default)
    backend = ("memory" if args.storage in ("memory", "wal") else "disk")

    def show_commit(r: Dict) -> None:
        if args.quiet:
            return
        verdict = "PASS" if r["passed"] else f"FAIL ({r['failure']})"
        counts = ("" if r["scatter_fsyncs_per_line"] is None else
                  f": scatter={r['scatter_fsyncs_per_line']:.1f} f/line "
                  f"wal={r['wal_fsyncs_per_line']:.2f} f/line")
        print(f"{verdict} {r['platform']}/{r['kernel']}{counts}", flush=True)

    def show_discipline(r: Dict) -> None:
        if args.quiet:
            return
        verdict = "PASS" if r["passed"] else f"FAIL ({r['failure']})"
        counts = ("" if r["fsyncs"] is None else
                  f": {r['fsyncs']} fsyncs for {r['nodes']} nodes x "
                  f"{r['lines']} lines")
        print(f"{verdict} {r['backend']}/ppn{r['procs_per_node']}{counts}",
              flush=True)

    t0 = time.time()
    parallel = False if args.inline else None
    c_rows = commit_rows(platforms, kernels, nprocs=args.nprocs,
                         engine=args.engine, parallel=parallel,
                         max_workers=args.workers, backend=backend,
                         on_row=show_commit)
    d_rows = []
    if not args.skip_discipline:
        d_rows = discipline_rows(nprocs=args.nprocs, parallel=parallel,
                                 max_workers=args.workers,
                                 on_row=show_discipline)
    wall = time.time() - t0

    print()
    print(render_commits(c_rows))
    if d_rows:
        print()
        print(render_discipline(d_rows))
    failures = ([f"{r['platform']}/{r['kernel']}"
                 for r in c_rows if not r["passed"]]
                + [f"{r['backend']}/ppn{r['procs_per_node']}"
                   for r in d_rows if not r["passed"]])
    summary = {
        "commit_cells": len(c_rows),
        "discipline_cells": len(d_rows),
        "passed": len(c_rows) + len(d_rows) - len(failures),
        "failed": failures,
        "wall_seconds": wall,
    }
    print(f"\n{summary['passed']}/{len(c_rows) + len(d_rows)} cells within "
          f"the WAL gates ({wall:.1f}s wall)")
    if args.json:
        write_artifact(args.json, {"summary": summary, "commits": c_rows,
                                   "discipline": d_rows})
    if failures:
        return fail_exit(failures)
    return 0


if __name__ == "__main__":
    sys.exit(main())
