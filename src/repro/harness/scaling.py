"""Scaling study: C3 overhead vs. process count at paper-true scales.

Paper mapping: Tables 2-3 make the headline scalability claim — the
C3 coordination layer's failure-free overhead stays small and roughly
*flat* as the process count grows into the hundreds ("up to hundreds of
processes").  The table drivers reproduce the individual cells at
downscaled rank counts; this module reproduces the *claim itself*: it
sweeps 16 -> 256 simulated ranks on the three evaluation cluster models
(Lemieux, Velocity 2, CMI), measuring the original-vs-C3 runtime at
each point under weak scaling (per-rank working set held constant, the
regime of the paper's scaling runs), and checks that the overhead at
the largest rank count does not deviate from the small-rank trend
beyond a tolerance.

Feasible because the engine's default backend is the cooperative rank
scheduler (:mod:`repro.mpi.scheduler`): a 256-rank job costs 256 parked
carrier fibers and one run loop, not 256 free-running 1 MiB threads.
The sweep also accepts ``engine="threads"`` for differential runs and
``engine="sharded[:N]"`` to split the simulated nodes across N forked
worker processes (:mod:`repro.mpi.sharded`), which is what pushes the
sweep past 4096 ranks (see :mod:`repro.harness.shardstudy`).

Command line::

    python -m repro.harness.scaling --json BENCH_scaling.json
    python -m repro.harness.scaling --ranks 16,64,256 --apps ring,heat
    python -m repro.harness.scaling --platforms lemieux --engine threads
    python -m repro.harness.scaling --ranks 1024,4096 --engine sharded:8

Exit status 0 iff every (platform, app) series satisfies the flatness
criterion; the JSON report carries the rows, the violations, and the
sweep configuration, and is uploaded by the ``scaling-smoke`` CI job as
``BENCH_scaling.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..mpi.engine import resolve_backend
from ..mpi.timemodel import MACHINES
from .jobs import (
    add_engine_arg, add_output_args, add_storage_arg, add_worker_args,
    open_store, require_known, write_artifact,
)
from .parallel import Cell, run_cells
from .report import render_table
from .runner import measure_c3, measure_original

__all__ = [
    "SCALING_APPS", "SCALING_PLATFORMS", "SCALING_RANKS", "check_flatness",
    "main", "measure_scaling_point", "render_scaling", "scaling_cell",
    "scaling_rows", "write_report",
]

#: the sweep's process counts: 16 (the old simulator ceiling) up to 256
#: (the top of the paper's Velocity 2 runs, mid-range on Lemieux)
SCALING_RANKS: Tuple[int, ...] = (16, 32, 64, 128, 256)

#: weak-scaling kernels: per-rank parameters held constant across rank
#: counts, so the per-rank compute/communication mix matches at every
#: point and any overhead growth is attributable to the protocol.
#: ``ring`` stresses collectives + neighbor exchange; ``heat`` is the
#: canonical halo pattern; ``CG`` adds an allgather whose volume grows
#: with the rank count (the hardest case for flatness).
SCALING_APPS: Dict[str, dict] = {
    "ring": dict(payload=16, niter=6, work=0.1),
    "heat": dict(local_n=32, niter=8, work_scale=2.5e6),
    "CG": dict(local_n=8, nnz_per_row=4, niter=3, work_scale=4e6),
}

#: the three evaluation clusters of Tables 2-7
SCALING_PLATFORMS: Tuple[str, ...] = ("lemieux", "velocity2", "cmi")

#: default flatness tolerance: |overhead(max ranks) - small-rank trend|
#: in percentage points (the paper's series move a few points at most)
DEFAULT_TOLERANCE_PCT = 5.0


def measure_scaling_point(app_name: str, nprocs: int, platform: str,
                          params: dict, engine: Optional[str] = None,
                          wall_timeout: float = 240.0,
                          storage: Optional[str] = None) -> Dict:
    """One sweep cell: original vs. C3-without-checkpoints at one scale.

    ``storage`` names a stable-storage flavor from the shared CLI seam
    (:data:`repro.harness.jobs.STORAGE_CHOICES`); ``None`` keeps the
    production default (WAL over in-memory storage).
    """
    machine = MACHINES[platform]
    t0 = time.time()
    with open_store(storage, prefix="repro-scaling-") as factory:
        orig = measure_original(app_name, nprocs, machine, params,
                                wall_timeout=wall_timeout, engine=engine)
        c3 = measure_c3(app_name, nprocs, machine, params, checkpoints=0,
                        wall_timeout=wall_timeout, engine=engine,
                        storage=factory() if factory is not None else None)
    overhead = ((c3.virtual_seconds - orig.virtual_seconds)
                / orig.virtual_seconds * 100.0)
    row = {
        "app": app_name,
        "platform": platform,
        "nprocs": nprocs,
        "engine": resolve_backend(engine),
        "original_seconds": orig.virtual_seconds,
        "c3_seconds": c3.virtual_seconds,
        "overhead_pct": overhead,
        "app_sends": c3.app_sends,
        "wall_seconds": time.time() - t0,
    }
    if storage is not None:
        row["storage"] = storage
    return row


def scaling_cell(app_name: str, nprocs: int, platform: str, params: dict,
                 **kw) -> Cell:
    """A :func:`measure_scaling_point` run as a farmable cell."""
    return Cell(measure_scaling_point,
                dict(app_name=app_name, nprocs=nprocs, platform=platform,
                     params=params, **kw),
                label=f"scaling:{app_name}@{nprocs}:{platform}")


def scaling_rows(ranks: Sequence[int] = SCALING_RANKS,
                 apps: Optional[Dict[str, dict]] = None,
                 platforms: Sequence[str] = SCALING_PLATFORMS,
                 engine: Optional[str] = None,
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 storage: Optional[str] = None,
                 wall_timeout: float = 240.0) -> List[Dict]:
    """The full sweep: platforms x apps x rank counts, pool-farmed."""
    apps = apps if apps is not None else SCALING_APPS
    extra = {} if storage is None else {"storage": storage}
    cells = [scaling_cell(app, n, platform, params, engine=engine,
                          wall_timeout=wall_timeout, **extra)
             for platform in platforms
             for app, params in apps.items()
             for n in ranks]
    return list(run_cells(cells, parallel=parallel,
                          max_workers=max_workers))


def check_flatness(rows: Sequence[Dict],
                   tolerance_pct: float = DEFAULT_TOLERANCE_PCT,
                   cap_pct: float = 10.0,
                   floor_pct: float = -2.0) -> List[str]:
    """Verify the paper's flat-overhead shape; returns violations.

    Two criteria, mirroring what the Table 2/3 benches assert at
    downscaled ranks, now at paper scale:

    * **low everywhere** — every point's overhead must sit inside
      ``(floor_pct, cap_pct)`` (the paper's series stay below ~10%
      except the called-out SMG2000 anomaly, which the sweep kernels
      avoid);
    * **no runaway growth** — per (platform, app) series, the overhead
      at the largest rank count must sit within ``tolerance_pct``
      percentage points of the small-rank trend (the mean of the two
      smallest rank counts).
    """
    series: Dict[Tuple[str, str], List[Tuple[int, float]]] = {}
    violations = []
    for r in rows:
        o = r["overhead_pct"]
        if not floor_pct < o < cap_pct:
            violations.append(
                f"{r['platform']}/{r['app']}: overhead at {r['nprocs']} "
                f"ranks is {o:.2f}%, outside ({floor_pct:.1f}%, "
                f"{cap_pct:.1f}%)")
        series.setdefault((r["platform"], r["app"]), []).append(
            (r["nprocs"], o))
    for (platform, app), pts in sorted(series.items()):
        pts.sort()
        if len(pts) < 2:
            continue
        baseline = sum(o for _, o in pts[:2]) / 2.0
        top_n, top_o = pts[-1]
        if abs(top_o - baseline) > tolerance_pct:
            violations.append(
                f"{platform}/{app}: overhead at {top_n} ranks is "
                f"{top_o:.2f}% vs small-rank trend {baseline:.2f}% "
                f"(tolerance {tolerance_pct:.1f} points)")
    return violations


def render_scaling(rows: Sequence[Dict]) -> str:
    """Overhead-vs-process-count text table (one row per sweep cell)."""
    table_rows = [[r["platform"], r["app"], r["nprocs"], r["engine"],
                   round(r["original_seconds"], 6),
                   round(r["c3_seconds"], 6),
                   round(r["overhead_pct"], 2)]
                  for r in rows]
    return render_table(
        "Scaling study: C3 overhead vs process count (weak scaling)",
        ["Platform", "Code", "Procs", "Engine", "Original s", "C3 s",
         "Ovh %"],
        table_rows,
        widths=[10, 6, 6, 12, 12, 12, 7],
    )


def write_report(path: str, rows: Sequence[Dict], violations: Sequence[str],
                 config: Dict) -> None:
    """Write the machine-readable sweep report (``BENCH_scaling.json``)."""
    write_artifact(path, {"config": config, "violations": list(violations),
                          "rows": list(rows)})


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.scaling",
        description="Sweep 16->256 simulated ranks on the paper's cluster "
                    "models and verify the flat overhead-vs-process-count "
                    "claim of Tables 2-3.")
    ap.add_argument("--ranks", default=",".join(map(str, SCALING_RANKS)),
                    help="comma-separated rank counts "
                         f"(default {','.join(map(str, SCALING_RANKS))})")
    ap.add_argument("--apps", default=",".join(SCALING_APPS),
                    help="comma-separated kernels "
                         f"(known: {', '.join(SCALING_APPS)})")
    ap.add_argument("--platforms", default=",".join(SCALING_PLATFORMS),
                    help="comma-separated machine models "
                         f"(default {','.join(SCALING_PLATFORMS)})")
    add_engine_arg(ap)
    add_storage_arg(ap)
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE_PCT,
                    help="flatness tolerance in percentage points "
                         f"(default {DEFAULT_TOLERANCE_PCT})")
    add_worker_args(ap)
    add_output_args(ap, quiet=False)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    ranks = tuple(int(r) for r in args.ranks.split(","))
    rc = require_known(args.apps.split(","), SCALING_APPS, "scaling apps")
    if rc:
        return rc
    apps = {a: SCALING_APPS[a] for a in args.apps.split(",")}
    platforms = tuple(args.platforms.split(","))
    rc = require_known(platforms, MACHINES, "platforms")
    if rc:
        return rc

    t0 = time.time()
    rows = scaling_rows(ranks=ranks, apps=apps, platforms=platforms,
                        engine=args.engine, storage=args.storage,
                        parallel=False if args.inline else None,
                        max_workers=args.workers)
    violations = check_flatness(rows, tolerance_pct=args.tolerance)
    print(render_scaling(rows))
    print(f"\n{len(rows)} sweep cells in {time.time() - t0:.1f}s wall "
          f"(engine={resolve_backend(args.engine)}, "
          f"ranks {min(ranks)}->{max(ranks)})")
    if args.json:
        config = {
            "ranks": list(ranks), "apps": sorted(apps),
            "platforms": list(platforms),
            "engine": resolve_backend(args.engine),
            "tolerance_pct": args.tolerance,
        }
        if args.storage is not None:
            config["storage"] = args.storage
        write_report(args.json, rows, violations, config)
    if violations:
        print("FLATNESS VIOLATIONS:", file=sys.stderr)
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print("flat-overhead claim holds at every (platform, app) series")
    return 0


if __name__ == "__main__":
    sys.exit(main())
