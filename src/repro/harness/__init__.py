"""Experiment harness: paper data, scale configs, drivers, rendering."""

from . import paperdata
from .experiments import (
    ablation_blocking_vs_nonblocking, ablation_initiation,
    ablation_logging_phases, ablation_piggyback,
    render_checkpoint, render_overhead, render_restart, render_table1,
    table1_rows, table2_rows, table3_rows, table4_rows, table5_rows,
    table6_rows, table7_rows,
)
from .platforms import (
    LEMIEUX_CODES, RESTART_CODES, SIZE_SCALE, TABLE1_CODES, VELOCITY2_CODES,
)
from .parallel import Cell, default_workers, run_cells
from .report import render_table
from .runner import (
    c3_cell, measure_c3, measure_original, measure_restart, original_cell,
    restart_cell,
)

__all__ = [
    "Cell", "run_cells", "default_workers",
    "original_cell", "c3_cell", "restart_cell",
    "paperdata",
    "table1_rows", "table2_rows", "table3_rows", "table4_rows",
    "table5_rows", "table6_rows", "table7_rows",
    "render_table1", "render_overhead", "render_checkpoint", "render_restart",
    "render_table",
    "ablation_initiation", "ablation_logging_phases", "ablation_piggyback",
    "ablation_blocking_vs_nonblocking",
    "measure_original", "measure_c3", "measure_restart",
    "LEMIEUX_CODES", "VELOCITY2_CODES", "TABLE1_CODES", "RESTART_CODES",
    "SIZE_SCALE",
]
