"""Experiment harness: paper data, scale configs, drivers, rendering."""

from . import paperdata
from .experiments import (
    ablation_blocking_vs_nonblocking, ablation_initiation,
    ablation_logging_phases, ablation_piggyback, campaign_restart_rows,
    campaign_rows, render_checkpoint, render_overhead, render_restart,
    render_table1, table1_rows, table2_rows, table3_rows, table4_rows,
    table5_rows, table6_rows, table7_rows,
)
from .platforms import (
    LEMIEUX_CODES, OverheadConfig, PLATFORMS, PlatformConfig, RESTART_CODES,
    SIZE_SCALE, ScalePoint, TABLE1_CODES, VELOCITY2_CODES,
)
from .parallel import Cell, default_workers, run_cells
from .report import render_table
from .runner import (
    c3_cell, measure_c3, measure_original, measure_recovery, measure_restart,
    original_cell, recovery_cell, restart_cell,
)

__all__ = [
    "Cell", "run_cells", "default_workers",
    "original_cell", "c3_cell", "restart_cell", "recovery_cell",
    "paperdata",
    "campaign_rows", "campaign_restart_rows",
    "table1_rows", "table2_rows", "table3_rows", "table4_rows",
    "table5_rows", "table6_rows", "table7_rows",
    "render_table1", "render_overhead", "render_checkpoint", "render_restart",
    "render_table",
    "ablation_initiation", "ablation_logging_phases", "ablation_piggyback",
    "ablation_blocking_vs_nonblocking",
    "measure_original", "measure_c3", "measure_restart", "measure_recovery",
    "LEMIEUX_CODES", "VELOCITY2_CODES", "TABLE1_CODES", "RESTART_CODES",
    "SIZE_SCALE",
    "PLATFORMS", "PlatformConfig", "ScalePoint", "OverheadConfig",
]

#: Campaign and scaling exports resolve lazily (PEP 562) so ``python -m
#: repro.harness.campaign`` / ``python -m repro.harness.scaling`` do not
#: import their module twice (once via this package, once as
#: ``__main__``) and trip runpy's warning.
_CAMPAIGN_EXPORTS = frozenset({
    "Scenario", "CampaignReport", "build_matrix", "smoke_matrix",
    "full_matrix", "run_campaign", "render_campaign",
})
_SCALING_EXPORTS = frozenset({
    "SCALING_APPS", "SCALING_PLATFORMS", "SCALING_RANKS", "check_flatness",
    "measure_scaling_point", "render_scaling", "scaling_cell",
    "scaling_rows",
})
_SIZES_EXPORTS = frozenset({
    "SIZES_PARAMS", "SIZES_PLATFORMS", "measure_kernel_sizes",
    "render_sizes", "table_sizes_rows",
})
_OVERLAP_EXPORTS = frozenset({
    "OVERLAP_KERNELS", "OVERLAP_PLATFORMS", "fault_rows", "overhead_rows",
    "render_overlap",
})
_JOBS_EXPORTS = frozenset({
    "STORAGE_CHOICES", "open_store", "write_artifact",
})
_LOADGEN_EXPORTS = frozenset({
    "build_mix", "percentile", "run_loadgen",
})
__all__ += (sorted(_CAMPAIGN_EXPORTS) + sorted(_SCALING_EXPORTS)
            + sorted(_SIZES_EXPORTS) + sorted(_OVERLAP_EXPORTS)
            + sorted(_JOBS_EXPORTS) + sorted(_LOADGEN_EXPORTS))


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign
        return getattr(campaign, name)
    if name in _SCALING_EXPORTS:
        from . import scaling
        return getattr(scaling, name)
    if name in _SIZES_EXPORTS:
        from . import sizes
        return getattr(sizes, name)
    if name in _OVERLAP_EXPORTS:
        from . import overlap
        return getattr(overlap, name)
    if name in _JOBS_EXPORTS:
        from . import jobs
        return getattr(jobs, name)
    if name in _LOADGEN_EXPORTS:
        from . import loadgen
        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
