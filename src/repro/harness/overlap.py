"""Overlapped write-back study: the extended Tables 4-5 configuration.

Section 6.4 of the paper argues that checkpoint cost should be bounded
by *protocol* work, not by the disk: write locally, drain asynchronously
(the PSC daemon), and never block the application for the write.  The
Tables 4-5 configuration study separates the two costs — #1 (no
checkpoint), #2 (go through the motions, skip the write), #3 (in-line
write) — and this driver adds the **overlapped** configuration: the
production pipeline that stages the serialized sections onto the node's
virtual-time drain device (:class:`repro.storage.drain.DrainDevice`) and
writes the crash-consistent COMMIT marker only when the background drain
completes.

Two claims are gated (exit status 1 on violation):

* **Overhead** — on every (platform, kernel) cell the overlapped
  per-checkpoint overhead is *strictly below* the in-line configuration
  #3, collapsing toward configuration #2: overlap hides the disk, so
  what remains is serialization plus protocol work.
* **Crash consistency & GC** — kill-mid-drain and kill-mid-commit
  scenarios (a rank dies while line 2's staged bytes are in flight /
  the instant before its COMMIT is written) must recover **bitwise**
  from the *previous* committed line, and storage must retain at most
  2 recovery lines per rank at the end (superseded lines
  garbage-collected).

Cells are sized for steady state: the checkpoint interval is a multiple
of the platform's drain time, so commits and GC happen *during* the run
(the regime the paper's daemon argument assumes) rather than piling into
the end-of-job flush.

Command line::

    python -m repro.harness.overlap                     # all 3 platforms
    python -m repro.harness.overlap --json BENCH_overlap.json
    python -m repro.harness.overlap --platforms lemieux --kernels heat
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..mpi.timemodel import MACHINES
from .jobs import (
    add_engine_arg, add_output_args, add_storage_arg, add_worker_args,
    fail_exit, open_store, require_known, write_artifact,
)
from .parallel import Cell, CellError, run_cells
from .runner import measure_c3, measure_recovery
from .report import render_table

__all__ = [
    "OVERLAP_KERNELS", "OVERLAP_PLATFORMS", "fault_rows", "main",
    "measure_fault_cell", "measure_overhead_cell", "overhead_rows",
    "render_overlap",
]

#: the three platform models of the evaluation (Tables 4-5)
OVERLAP_PLATFORMS = ("lemieux", "velocity2", "cmi")

#: study kernels with steady-state-sized parameters: golden runtimes of
#: tens of virtual milliseconds, so one checkpoint interval dwarfs the
#: platform drain time (0.2-0.3 ms) and the pipeline reaches its
#: commit-and-GC steady state inside the run
OVERLAP_KERNELS: Dict[str, dict] = {
    "heat": dict(local_n=64, niter=30, work_scale=2000.0),
    "CG": dict(local_n=2048, nnz_per_row=8, niter=10),
    "SMG2000": dict(local_n=24, levels=4, niter=6),
}

#: fault slice: kill during / at the end of line TORN_LINE's drain, so
#: TORN_LINE - 1 is the previous committed line the recovery must fall
#: back to (the gate checks this exactly)
TORN_LINE = 2
FAULT_KILLS: Dict[str, List[dict]] = {
    "mid_drain": [{"rank": 1, "in_drain": TORN_LINE}],
    "mid_commit": [{"rank": 0, "at_commit": TORN_LINE}],
}


def measure_overhead_cell(platform: str, kernel: str, nprocs: int = 4,
                          engine: Optional[str] = None,
                          storage: Optional[str] = None) -> Dict:
    """Top-level (picklable) cell body: one gate-judged overhead row."""
    machine = MACHINES[platform]
    params = OVERLAP_KERNELS[kernel]
    with open_store(storage, prefix="repro-overlap-") as factory:
        def store():
            return factory() if factory is not None else None

        cfg1 = measure_c3(kernel, nprocs, machine, params, checkpoints=0,
                          engine=engine, storage=store())
        common = dict(checkpoints=1,
                      reference_time=cfg1.virtual_seconds,
                      engine=engine)
        cfg2 = measure_c3(kernel, nprocs, machine, params,
                          save_to_disk=False, storage=store(), **common)
        cfg3 = measure_c3(kernel, nprocs, machine, params,
                          save_to_disk=True, storage=store(), **common)
        ovl = measure_c3(kernel, nprocs, machine, params,
                         save_to_disk=True, overlap=True, storage=store(),
                         **common)
    row = {
        "platform": platform,
        "kernel": kernel,
        "nprocs": nprocs,
        "cfg1_s": cfg1.virtual_seconds,
        "cfg2_s": cfg2.virtual_seconds,
        "cfg3_s": cfg3.virtual_seconds,
        "overlap_s": ovl.virtual_seconds,
        "cfg2_cost_s": cfg2.virtual_seconds - cfg1.virtual_seconds,
        "inline_cost_s": cfg3.virtual_seconds - cfg1.virtual_seconds,
        "overlap_cost_s": ovl.virtual_seconds - cfg1.virtual_seconds,
        "committed_inline": cfg3.checkpoints_committed,
        "committed_overlap": ovl.checkpoints_committed,
    }
    if storage is not None:
        row["storage"] = storage
    row["failure"] = _judge_overhead(row)
    row["passed"] = row["failure"] is None
    return row


#: metric keys nulled out in the row of a cell whose worker died
_OVERHEAD_METRICS = ("cfg1_s", "cfg2_s", "cfg3_s", "overlap_s",
                     "cfg2_cost_s", "inline_cost_s", "overlap_cost_s",
                     "committed_inline", "committed_overlap")


def _dead_row(err: CellError, metrics: Sequence[str], **identity) -> Dict:
    """A failed row for a cell whose worker process died (see parallel)."""
    row = dict.fromkeys(metrics)
    row.update(identity)
    row["failure"] = err.error
    row["passed"] = False
    return row


def overhead_rows(platforms: Sequence[str] = OVERLAP_PLATFORMS,
                  kernels: Optional[Sequence[str]] = None,
                  nprocs: int = 4,
                  engine: Optional[str] = None,
                  parallel: Optional[bool] = None,
                  max_workers: Optional[int] = None,
                  storage: Optional[str] = None,
                  on_row: Optional[Callable[[Dict], None]] = None,
                  ) -> List[Dict]:
    """One gate-judged row per (platform, kernel) cell, pool-farmed."""
    names = list(kernels) if kernels else sorted(OVERLAP_KERNELS)
    cells = [Cell(measure_overhead_cell,
                  dict(platform=platform, kernel=name, nprocs=nprocs,
                       engine=engine, storage=storage),
                  label=f"overlap:{platform}/{name}")
             for platform in platforms for name in names]
    rows: List[Dict] = []

    def on_result(_i: int, cell: Cell, result) -> None:
        if isinstance(result, CellError):
            result = _dead_row(result, _OVERHEAD_METRICS,
                               platform=cell.kwargs["platform"],
                               kernel=cell.kwargs["kernel"], nprocs=nprocs)
        rows.append(result)
        if on_row is not None:
            on_row(result)

    run_cells(cells, parallel=parallel, max_workers=max_workers,
              on_result=on_result)
    return rows


def _judge_overhead(row: Dict) -> Optional[str]:
    """The overhead gate for one cell (None = pass)."""
    if row["committed_inline"] < 1 or row["committed_overlap"] < 1:
        return "no checkpoint committed (vacuous measurement)"
    if not row["overlap_cost_s"] < row["inline_cost_s"]:
        return (f"overlapped commit overhead not strictly below in-line "
                f"({row['overlap_cost_s']:.6g}s >= "
                f"{row['inline_cost_s']:.6g}s)")
    return None


def measure_fault_cell(platform: str, kill: str, nprocs: int = 4,
                       engine: Optional[str] = None) -> Dict:
    """Top-level (picklable) cell body: one torn-line recovery row."""
    machine = MACHINES[platform]
    record = measure_recovery(
        "heat", nprocs, machine, OVERLAP_KERNELS["heat"],
        [dict(k) for k in FAULT_KILLS[kill]], interval_frac=0.18,
        engine=engine)
    row = {
        "platform": platform,
        "kill": kill,
        **record,
    }
    row["failure"] = _judge_fault(row)
    row["passed"] = row["failure"] is None
    return row


def fault_rows(platforms: Sequence[str] = OVERLAP_PLATFORMS,
               nprocs: int = 4, engine: Optional[str] = None,
               parallel: Optional[bool] = None,
               max_workers: Optional[int] = None,
               on_row: Optional[Callable[[Dict], None]] = None,
               ) -> List[Dict]:
    """Kill-mid-drain / kill-mid-commit recovery cells, gate-judged."""
    cells = [Cell(measure_fault_cell,
                  dict(platform=platform, kill=kill_name, nprocs=nprocs,
                       engine=engine),
                  label=f"overlap-fault:{platform}/{kill_name}")
             for platform in platforms for kill_name in FAULT_KILLS]
    rows: List[Dict] = []

    def on_result(_i: int, cell: Cell, result) -> None:
        if isinstance(result, CellError):
            result = _dead_row(result,
                               ("restarts", "restored_version",
                                "checkpoints_committed", "lines_retained"),
                               platform=cell.kwargs["platform"],
                               kill=cell.kwargs["kill"])
        rows.append(result)
        if on_row is not None:
            on_row(result)

    run_cells(cells, parallel=parallel, max_workers=max_workers,
              on_result=on_result)
    return rows


def _judge_fault(row: Dict) -> Optional[str]:
    """The crash-consistency + GC gate for one fault cell (None = pass)."""
    if not row.get("fired"):
        return "kill never fired (scenario vacuous)"
    if not row["verified_recovery"]:
        return "recovered results are not bitwise-equal to golden"
    if not row["verified_clean"]:
        return "clean C3 run diverged from the golden results"
    if row.get("restored_version") != TORN_LINE - 1:
        return (f"recovery restored from v{row.get('restored_version')} "
                f"instead of falling back past the torn line {TORN_LINE} "
                f"to v{TORN_LINE - 1}")
    if row["lines_retained"] > 2:
        return (f"GC left {row['lines_retained']} recovery lines on "
                "storage (> 2 at steady state)")
    return None


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else seconds * 1e3


def render_overlap(rows: Sequence[Dict]) -> str:
    """Paper-layout text table of the overhead cells (virtual ms)."""
    table_rows = []
    for r in rows:
        table_rows.append([
            r["platform"], r["kernel"], "PASS" if r["passed"] else "FAIL",
            _ms(r["cfg1_s"]), _ms(r["cfg2_s"]), _ms(r["cfg3_s"]),
            _ms(r["overlap_s"]),
            _ms(r["inline_cost_s"]), _ms(r["overlap_cost_s"]),
        ])
    return render_table(
        "Overlapped write-back vs in-line commit (Tables 4-5 extension; "
        "virtual ms, one checkpoint)",
        ["Platform", "Kernel", "Gate", "#1 ms", "#2 ms", "#3 ms", "Ovl ms",
         "InlineCost", "OvlCost"],
        table_rows, widths=[9, 8, 5, 9, 9, 9, 9, 11, 10],
    )


def render_faults(rows: Sequence[Dict]) -> str:
    """Verdict table of the kill-mid-drain / kill-mid-commit cells."""
    table_rows = []
    for r in rows:
        table_rows.append([
            f"{r['platform']}/{r['kill']}",
            "PASS" if r["passed"] else "FAIL",
            r.get("restarts"), r.get("restored_version"),
            r.get("checkpoints_committed"), r.get("lines_retained"),
        ])
    return render_table(
        "Torn-line recovery: kill mid-drain / mid-commit",
        ["Cell", "Gate", "Restarts", "RestoredV", "Committed", "Held"],
        table_rows, widths=[24, 5, 8, 9, 9, 5],
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.overlap",
        description="Overlapped write-back study: per-checkpoint overhead "
                    "of the production drain pipeline vs the in-line "
                    "Tables 4-5 configuration #3, plus kill-mid-drain / "
                    "kill-mid-commit torn-line recovery; exits non-zero "
                    "if overlap is not strictly cheaper on every cell or "
                    "any fault cell fails to recover bitwise with <= 2 "
                    "retained lines.")
    ap.add_argument("--platforms",
                    help="comma-separated platform models "
                         f"(default: {', '.join(OVERLAP_PLATFORMS)})")
    ap.add_argument("--kernels",
                    help="comma-separated kernels "
                         f"(default: {', '.join(sorted(OVERLAP_KERNELS))})")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per run (default 4)")
    add_engine_arg(ap)
    add_storage_arg(ap)
    ap.add_argument("--skip-faults", action="store_true",
                    help="overhead cells only (no kill/restart slice)")
    add_worker_args(ap)
    add_output_args(ap)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    platforms = (args.platforms.split(",") if args.platforms
                 else list(OVERLAP_PLATFORMS))
    kernels = args.kernels.split(",") if args.kernels else None
    rc = require_known(platforms, MACHINES, "platforms")
    if rc is None and kernels:
        rc = require_known(kernels, OVERLAP_KERNELS, "kernels")
    if rc:
        return rc

    def show_overhead(r: Dict) -> None:
        if args.quiet:
            return
        verdict = "PASS" if r["passed"] else f"FAIL ({r['failure']})"
        costs = ("" if r["inline_cost_s"] is None else
                 f": inline={r['inline_cost_s'] * 1e3:.3f}ms "
                 f"overlap={r['overlap_cost_s'] * 1e3:.3f}ms")
        print(f"{verdict} {r['platform']}/{r['kernel']}{costs}", flush=True)

    def show_fault(r: Dict) -> None:
        if args.quiet:
            return
        verdict = "PASS" if r["passed"] else f"FAIL ({r['failure']})"
        print(f"{verdict} {r['platform']}/{r['kill']}: "
              f"restored=v{r.get('restored_version')} "
              f"held={r.get('lines_retained')}", flush=True)

    t0 = time.time()
    parallel = False if args.inline else None
    o_rows = overhead_rows(platforms, kernels, nprocs=args.nprocs,
                           engine=args.engine, storage=args.storage,
                           parallel=parallel, max_workers=args.workers,
                           on_row=show_overhead)
    f_rows = []
    if not args.skip_faults:
        f_rows = fault_rows(platforms, nprocs=args.nprocs,
                            engine=args.engine, parallel=parallel,
                            max_workers=args.workers, on_row=show_fault)
    wall = time.time() - t0

    print()
    print(render_overlap(o_rows))
    if f_rows:
        print()
        print(render_faults(f_rows))
    failures = ([f"{r['platform']}/{r['kernel']}"
                 for r in o_rows if not r["passed"]]
                + [f"{r['platform']}/{r['kill']}"
                   for r in f_rows if not r["passed"]])
    summary = {
        "overhead_cells": len(o_rows),
        "fault_cells": len(f_rows),
        "passed": len(o_rows) + len(f_rows) - len(failures),
        "failed": failures,
        "wall_seconds": wall,
    }
    print(f"\n{summary['passed']}/{len(o_rows) + len(f_rows)} cells within "
          f"the overlap gates ({wall:.1f}s wall)")
    if args.json:
        write_artifact(args.json, {"summary": summary, "overhead": o_rows,
                                   "faults": f_rows})
    if failures:
        return fail_exit(failures)
    return 0


if __name__ == "__main__":
    sys.exit(main())
