"""Experiment runner primitives.

Wraps the three execution modes of the evaluation — original, C3 without
checkpoints, C3 with one checkpoint (configurations #1/#2/#3 of Tables
4-5) — plus the restart measurement of Tables 6-7, returning plain
result records the table drivers assemble into rows.

Every measurement is addressed by *app name* and plain-data parameters,
so a measurement is also a picklable :class:`~repro.harness.parallel.Cell`
— the ``*_cell`` builders below wrap the measure functions for the
process-pool harness that sweeps whole tables concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..apps import APPS
from ..core.ccc import run_c3, run_original
from ..core.protocol import C3Config
from ..mpi.timemodel import MachineModel
from ..storage.stable import InMemoryStorage
from .parallel import Cell


@dataclass
class ModeResult:
    """One job execution's measurements."""

    virtual_seconds: float
    checkpoint_bytes: int = 0
    log_bytes: int = 0
    checkpoints_committed: int = 0
    last_commit_time: float = 0.0
    restore_seconds: float = 0.0
    app_sends: int = 0


def _with_params(app_name: str, params: dict) -> Callable:
    app = APPS[app_name]

    def wrapped(ctx):
        return app(ctx, **params)

    wrapped.__name__ = f"{app_name}_configured"
    return wrapped


def measure_original(app_name: str, nprocs: int, machine: MachineModel,
                     params: dict, wall_timeout: float = 240.0) -> ModeResult:
    result = run_original(_with_params(app_name, params), nprocs,
                          machine=machine, wall_timeout=wall_timeout)
    result.raise_errors()
    return ModeResult(virtual_seconds=result.virtual_time)


def measure_c3(app_name: str, nprocs: int, machine: MachineModel,
               params: dict, checkpoints: int = 0, save_to_disk: bool = True,
               interval_fraction: float = 0.45,
               reference_time: Optional[float] = None,
               wall_timeout: float = 240.0) -> ModeResult:
    """A C3 run: ``checkpoints == 0`` is configuration #1, otherwise one
    (or more) timer-initiated checkpoints — #2 with ``save_to_disk=False``,
    #3 with True."""
    interval = None
    if checkpoints > 0:
        base = reference_time if reference_time else 1.0
        interval = base * interval_fraction / checkpoints
    config = C3Config(checkpoint_interval=interval,
                      save_to_disk=save_to_disk,
                      max_checkpoints=checkpoints or None)
    storage = InMemoryStorage()
    result, stats = run_c3(_with_params(app_name, params), nprocs,
                           machine=machine, storage=storage, config=config,
                           wall_timeout=wall_timeout)
    result.raise_errors()
    st = [s for s in stats if s is not None]
    return ModeResult(
        virtual_seconds=result.virtual_time,
        checkpoint_bytes=max((s.last_checkpoint_bytes for s in st), default=0),
        log_bytes=max((s.last_log_bytes for s in st), default=0),
        checkpoints_committed=min((s.checkpoints_committed for s in st),
                                  default=0),
        last_commit_time=max((s.last_commit_time for s in st), default=0.0),
        app_sends=sum(s.app_sends for s in st),
    )


def measure_restart(app_name: str, machine: MachineModel, params: dict,
                    wall_timeout: float = 240.0) -> Dict[str, float]:
    """Tables 6-7 methodology, on a uniprocessor run.

    Run 1: execute to completion taking one mid-run checkpoint; measure
    the elapsed time from the last committed checkpoint to the end.
    Run 2: restart from that checkpoint; measure from the start of the
    restore procedure to the end.  The restart cost is the difference.
    """
    app = _with_params(app_name, params)
    base = run_original(app, 1, machine=machine, wall_timeout=wall_timeout)
    base.raise_errors()
    total = base.virtual_time

    storage = InMemoryStorage()
    config = C3Config(checkpoint_interval=total * 0.5, max_checkpoints=1)
    full, stats = run_c3(app, 1, machine=machine, storage=storage,
                         config=config, wall_timeout=wall_timeout)
    full.raise_errors()
    st = stats[0]
    if st is None or st.checkpoints_committed < 1:
        raise RuntimeError(f"{app_name}: no checkpoint committed in run 1")
    tail_after_ckpt = full.virtual_time - st.last_commit_time

    restarted, rstats = run_c3(app, 1, machine=machine, storage=storage,
                               config=config, restoring=True,
                               wall_timeout=wall_timeout)
    restarted.raise_errors()
    restart_elapsed = restarted.virtual_time
    return {
        "original_seconds": total,
        "tail_after_checkpoint": tail_after_ckpt,
        "restart_run_seconds": restart_elapsed,
        "restart_cost": restart_elapsed - tail_after_ckpt,
        "restore_seconds": rstats[0].restore_seconds if rstats[0] else 0.0,
    }


# ---------------------------------------------------------------------------
# Cell builders for the process-pool harness (see repro.harness.parallel).
# ---------------------------------------------------------------------------

def original_cell(app_name: str, nprocs: int, machine: MachineModel,
                  params: dict, **kw) -> Cell:
    """A :func:`measure_original` run as a farmable cell."""
    return Cell(measure_original, dict(app_name=app_name, nprocs=nprocs,
                                       machine=machine, params=params, **kw),
                label=f"original:{app_name}@{nprocs}:{machine.name}")


def c3_cell(app_name: str, nprocs: int, machine: MachineModel,
            params: dict, **kw) -> Cell:
    """A :func:`measure_c3` run as a farmable cell."""
    return Cell(measure_c3, dict(app_name=app_name, nprocs=nprocs,
                                 machine=machine, params=params, **kw),
                label=f"c3:{app_name}@{nprocs}:{machine.name}")


def restart_cell(app_name: str, machine: MachineModel, params: dict,
                 **kw) -> Cell:
    """A :func:`measure_restart` run as a farmable cell."""
    return Cell(measure_restart, dict(app_name=app_name, machine=machine,
                                      params=params, **kw),
                label=f"restart:{app_name}:{machine.name}")
