"""Experiment runner primitives.

Wraps the three execution modes of the evaluation — original, C3 without
checkpoints, C3 with one checkpoint (configurations #1/#2/#3 of Tables
4-5) — plus the restart measurement of Tables 6-7, returning plain
result records the table drivers assemble into rows.

Every measurement is addressed by *app name* and plain-data parameters,
so a measurement is also a picklable :class:`~repro.harness.parallel.Cell`
— the ``*_cell`` builders below wrap the measure functions for the
process-pool harness that sweeps whole tables concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..apps import APPS
from ..core.ccc import resume_from_manifest, run_c3, run_original
from ..core.modes import ProtocolError
from ..core.protocol import C3Config
from ..mpi.engine import resolve_backend
from ..mpi.faults import FaultPlan, FaultSpec
from ..mpi.timemodel import MachineModel
from ..storage.drain import DrainDaemon
from ..storage.stable import InMemoryStorage, StorageBackend
from ..storage.store import as_store
from ..storage.wal import WalStore
from .parallel import Cell


@dataclass
class ModeResult:
    """One job execution's measurements."""

    virtual_seconds: float
    checkpoint_bytes: int = 0
    log_bytes: int = 0
    checkpoints_committed: int = 0
    last_commit_time: float = 0.0
    restore_seconds: float = 0.0
    app_sends: int = 0


def _with_params(app_name: str, params: dict) -> Callable:
    app = APPS[app_name]

    def wrapped(ctx):
        return app(ctx, **params)

    wrapped.__name__ = f"{app_name}_configured"
    return wrapped


def measure_original(app_name: str, nprocs: int, machine: MachineModel,
                     params: dict, wall_timeout: float = 240.0,
                     engine: Optional[str] = None) -> ModeResult:
    result = run_original(_with_params(app_name, params), nprocs,
                          machine=machine, wall_timeout=wall_timeout,
                          engine=engine)
    result.raise_errors()
    return ModeResult(virtual_seconds=result.virtual_time)


def measure_c3(app_name: str, nprocs: int, machine: MachineModel,
               params: dict, checkpoints: int = 0, save_to_disk: bool = True,
               overlap: bool = False,
               interval_fraction: float = 0.45,
               reference_time: Optional[float] = None,
               wall_timeout: float = 240.0,
               engine: Optional[str] = None,
               storage=None) -> ModeResult:
    """A C3 run: ``checkpoints == 0`` is configuration #1, otherwise one
    (or more) timer-initiated checkpoints — #2 with ``save_to_disk=False``,
    #3 with True.  ``overlap=True`` is the *overlapped* configuration of
    the extended Tables 4-5 study: checkpoints write to disk through the
    background drain device instead of blocking in-line (the production
    path; here default-off so configurations #2/#3 keep the paper's
    in-line semantics)."""
    interval = None
    if checkpoints > 0:
        base = reference_time if reference_time else 1.0
        interval = base * interval_fraction / checkpoints
    config = C3Config(checkpoint_interval=interval,
                      save_to_disk=save_to_disk, overlap=overlap,
                      max_checkpoints=checkpoints or None)
    # storage=None: the production engine (a WAL over in-memory storage),
    # so every table measurement exercises group commit and segment GC;
    # the study CLIs' --storage seam passes an explicit store instead
    result, stats = run_c3(_with_params(app_name, params), nprocs,
                           machine=machine, storage=storage, config=config,
                           wall_timeout=wall_timeout, engine=engine)
    result.raise_errors()
    st = [s for s in stats if s is not None]
    return ModeResult(
        virtual_seconds=result.virtual_time,
        checkpoint_bytes=max((s.last_checkpoint_bytes for s in st), default=0),
        log_bytes=max((s.last_log_bytes for s in st), default=0),
        checkpoints_committed=min((s.checkpoints_committed for s in st),
                                  default=0),
        last_commit_time=max((s.last_commit_time for s in st), default=0.0),
        app_sends=sum(s.app_sends for s in st),
    )


def measure_restart(app_name: str, machine: MachineModel, params: dict,
                    wall_timeout: float = 240.0) -> Dict[str, float]:
    """Tables 6-7 methodology, on a uniprocessor run.

    Run 1: execute to completion taking one mid-run checkpoint; measure
    the elapsed time from the last committed checkpoint to the end.
    Run 2: restart from that checkpoint; measure from the start of the
    restore procedure to the end.  The restart cost is the difference.
    """
    app = _with_params(app_name, params)
    base = run_original(app, 1, machine=machine, wall_timeout=wall_timeout)
    base.raise_errors()
    total = base.virtual_time

    # One production store (WAL over memory) shared by run 1 and the
    # restart: run 2 restores by replaying the log run 1 committed.
    storage = WalStore(InMemoryStorage())
    config = C3Config(checkpoint_interval=total * 0.5, max_checkpoints=1)
    full, stats = run_c3(app, 1, machine=machine, storage=storage,
                         config=config, wall_timeout=wall_timeout)
    full.raise_errors()
    st = stats[0]
    if st is None or st.checkpoints_committed < 1:
        raise RuntimeError(f"{app_name}: no checkpoint committed in run 1")
    tail_after_ckpt = full.virtual_time - st.last_commit_time

    restarted, rstats = run_c3(app, 1, machine=machine, storage=storage,
                               config=config, restoring=True,
                               wall_timeout=wall_timeout)
    restarted.raise_errors()
    restart_elapsed = restarted.virtual_time
    return {
        "original_seconds": total,
        "tail_after_checkpoint": tail_after_ckpt,
        "restart_run_seconds": restart_elapsed,
        "restart_cost": restart_elapsed - tail_after_ckpt,
        "restore_seconds": rstats[0].restore_seconds if rstats[0] else 0.0,
    }


def _returns_equal(measured, golden) -> bool:
    """Bitwise result equivalence: the recovery correctness criterion."""
    if len(measured) != len(golden):
        return False
    for m, g in zip(measured, golden):
        if isinstance(m, np.ndarray) or isinstance(g, np.ndarray):
            if not np.array_equal(np.asarray(m), np.asarray(g)):
                return False
        elif m != g:
            return False
    return True


def _resolve_kill(kill: dict, golden_seconds: float) -> FaultSpec:
    """A campaign kill dict becomes a concrete :class:`FaultSpec`.

    Kills are plain data so scenarios stay picklable and JSON-able.  The
    ``frac`` key is resolved against the golden runtime into ``at_time``;
    every other key maps 1:1 onto the spec field of the same name.
    """
    kill = dict(kill)
    frac = kill.pop("frac", None)
    if frac is not None:
        kill["at_time"] = frac * golden_seconds
    return FaultSpec(**kill)


def measure_recovery(app_name: str, nprocs: int, machine: MachineModel,
                     params: dict, kills: List[dict],
                     interval_frac: float = 0.2, seed: int = 0,
                     max_restarts: int = 8, drain_streams: int = 4,
                     wall_timeout: float = 120.0,
                     engine: Optional[str] = None,
                     storage_factory: Optional[
                         Callable[[], StorageBackend]] = None) -> Dict:
    """One recovery-campaign scenario: golden run, fault run, restart,
    verify.

    1. **Golden** — the uninstrumented application runs to completion;
       its per-rank results are the ground truth and its runtime anchors
       fraction-based kill times and the checkpoint interval.
    2. **Clean C3** — the same app under the coordination layer with
       timer-initiated checkpoints, no faults.  Verifies instrumentation
       alone does not perturb results and provides the restart-cost
       baseline.
    3. **Faulty** — re-run with the scenario's fail-stop kills injected;
       on each failure, restart through
       :func:`~repro.core.ccc.resume_from_manifest` — the same entry
       point an out-of-process operator would use — until the job
       completes (late-message replay, early-send suppression, and
       nondeterminism replay all exercised by the restore path).
    4. **Verify** — both the clean and the recovered results must be
       bitwise-identical to the golden ones.

    ``storage_factory`` supplies the stable storage per execution phase
    (default :class:`InMemoryStorage`); it may return a bare
    :class:`~repro.storage.stable.StorageBackend` (scatter layout) or a
    :class:`~repro.storage.store.CheckpointStore` such as a
    :class:`~repro.storage.wal.WalStore`.  A tmpdir-rooted
    :class:`~repro.storage.stable.DiskStorage` factory runs the whole
    kill/restart/verify pipeline against real files.

    Returns a plain-data record (JSON-able) with the verification
    verdicts and the restart-cost figures the Table 6/7 drivers consume.
    """
    app = _with_params(app_name, params)
    make_storage = storage_factory or InMemoryStorage

    golden = run_original(app, nprocs, machine=machine,
                          wall_timeout=wall_timeout, engine=engine)
    golden.raise_errors()
    golden_s = golden.virtual_time

    config = C3Config(checkpoint_interval=golden_s * interval_frac)
    clean, clean_stats = run_c3(app, nprocs, machine=machine,
                                storage=make_storage(), config=config,
                                wall_timeout=wall_timeout, engine=engine)
    clean.raise_errors()
    verified_clean = _returns_equal(clean.returns, golden.returns)

    plan = FaultPlan([_resolve_kill(k, golden_s) for k in kills], seed=seed)
    storage = make_storage()
    run_times: List[float] = []
    restore_s = 0.0
    real_kills = 0
    result, stats = run_c3(app, nprocs, machine=machine, storage=storage,
                           config=config, fault_plan=plan,
                           wall_timeout=wall_timeout, engine=engine)
    result.raise_errors()
    run_times.append(result.virtual_time)
    real_kills += sum(1 for k in result.real_kills if k.get("sigkill"))
    restarts = 0
    while result.failure is not None:
        restarts += 1
        if restarts > max_restarts:
            raise ProtocolError(
                f"{app_name}: failed {restarts} times; giving up "
                f"(last failure: {result.failure})")
        result, stats = resume_from_manifest(
            app, nprocs, storage, machine=machine, config=config,
            fault_plan=plan, wall_timeout=wall_timeout, require_line=False,
            engine=engine)
        result.raise_errors()
        run_times.append(result.virtual_time)
        real_kills += sum(1 for k in result.real_kills if k.get("sigkill"))
        restore_s += max((s.restore_seconds for s in stats if s), default=0.0)
    verified_recovery = _returns_equal(result.returns, golden.returns)

    st = [s for s in stats if s is not None]
    # Committed-line count from the storage engine, not from protocol
    # stats: failed executions return no stats, and the final (restarted)
    # execution's counters start at zero, so the store's index is the only
    # ground truth across the whole kill/restart sequence.  ``validate``
    # makes torn lines (a kill mid-drain/mid-commit/mid-group-commit)
    # invisible here, exactly as they are to restore.
    store = as_store(storage)
    committed = store.last_committed_global(nprocs, validate=True) or 0
    # Recovery-line GC evidence: distinct versions with any object still
    # on stable storage, per rank (<= 2 at steady state when GC is on).
    lines_retained = max(
        (len(v) for v in store.lines_on_storage().values()), default=0)
    drain = DrainDaemon(machine, drain_streams=drain_streams).drain_line(
        storage, nprocs)
    return {
        "app": app_name,
        "nprocs": nprocs,
        "platform": machine.name,
        "engine": resolve_backend(engine),
        "kills": [dict(k) for k in kills],
        "fired": [s.describe() for s in plan.fired],
        "interval_frac": interval_frac,
        "verified": verified_clean and verified_recovery,
        "verified_clean": verified_clean,
        "verified_recovery": verified_recovery,
        "restarts": restarts,
        #: waitpid-confirmed SIGKILL deliveries across the faulty run
        #: and every restart — 0 for simulated-fault engines, and for a
        #: real-kill engine the count of faults that physically took an
        #: OS process (the process-backend smoke gate asserts >= 1)
        "real_kills": real_kills,
        "golden_seconds": golden_s,
        "clean_c3_seconds": clean.virtual_time,
        "c3_overhead_pct": (clean.virtual_time - golden_s) / golden_s * 100.0,
        "run_seconds": run_times,
        "total_faulty_seconds": sum(run_times),
        "restart_cost_seconds": sum(run_times) - clean.virtual_time,
        "restore_seconds": restore_s,
        #: recovery lines committed on all ranks over the whole sequence
        "checkpoints_committed": committed,
        #: distinct checkpoint versions still on storage (max over ranks)
        #: after the final execution — the GC retention evidence
        "lines_retained": lines_retained,
        #: replay/suppression evidence from the final (recovering)
        #: execution — earlier failed executions return no stats
        "replayed_from_log": sum(s.replayed_from_log for s in st),
        "suppressed_sends": sum(s.suppressed_sends for s in st),
        #: the line the final execution restored from (None: cold start)
        #: — for torn-line scenarios this is the *previous* committed
        #: line, the fallback evidence
        "restored_version": max(
            (s.restored_version for s in st
             if s.restored_version is not None), default=None),
        "line_durable_at": drain.line_durable_at if drain else None,
        "drain_sync_penalty": drain.synchronous_penalty if drain else None,
    }


# ---------------------------------------------------------------------------
# Cell builders for the process-pool harness (see repro.harness.parallel).
# ---------------------------------------------------------------------------

def original_cell(app_name: str, nprocs: int, machine: MachineModel,
                  params: dict, **kw) -> Cell:
    """A :func:`measure_original` run as a farmable cell."""
    return Cell(measure_original, dict(app_name=app_name, nprocs=nprocs,
                                       machine=machine, params=params, **kw),
                label=f"original:{app_name}@{nprocs}:{machine.name}")


def c3_cell(app_name: str, nprocs: int, machine: MachineModel,
            params: dict, **kw) -> Cell:
    """A :func:`measure_c3` run as a farmable cell."""
    return Cell(measure_c3, dict(app_name=app_name, nprocs=nprocs,
                                 machine=machine, params=params, **kw),
                label=f"c3:{app_name}@{nprocs}:{machine.name}")


def restart_cell(app_name: str, machine: MachineModel, params: dict,
                 **kw) -> Cell:
    """A :func:`measure_restart` run as a farmable cell."""
    return Cell(measure_restart, dict(app_name=app_name, machine=machine,
                                      params=params, **kw),
                label=f"restart:{app_name}:{machine.name}")


def recovery_cell(app_name: str, nprocs: int, machine: MachineModel,
                  params: dict, kills: List[dict], label: str = "",
                  **kw) -> Cell:
    """A :func:`measure_recovery` scenario as a farmable cell."""
    return Cell(measure_recovery,
                dict(app_name=app_name, nprocs=nprocs, machine=machine,
                     params=params, kills=kills, **kw),
                label=label or f"recovery:{app_name}@{nprocs}:{machine.name}")
