"""Service load generator: the ``BENCH_service.json`` gate.

Drives N concurrent tenants of mixed job submissions through a
:class:`repro.service.CampaignService` and gates what the service
layer promises:

* **zero verify failures** — every recovery job must recover and
  verify bitwise against its golden run; every overhead job must
  complete;
* **golden-run cache correctness under load** — phase 2 resubmits a
  sample of phase-1 jobs (same tenant, same spec): each must be served
  from the cache without re-execution and compare *bitwise* equal to
  the first run's canonical result bytes;
* **p99 submission-to-first-result latency** — measured from
  ``submit`` (so queue wait counts) to the first streamed cell event,
  against ``--p99-budget``.

The default shape — 120 submissions across 4 tenants through a
32-deep bounded queue — exercises backpressure: far more submissions
in flight than the queue admits.  Everything is seeded, so the bench
is reproducible run to run (latencies aside).

Command line::

    python -m repro.harness.loadgen --json BENCH_service.json
    python -m repro.harness.loadgen --tenants 8 --jobs 500 --workers 8
    python -m repro.harness.loadgen --storage wal --p99-budget 10
"""

from __future__ import annotations

import argparse
import asyncio
import math
import random
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..mpi.backends import backend_for
from ..service import CampaignService, JobSpec, canonical_result_bytes
from .jobs import (
    add_engine_arg, add_output_args, add_seed_arg, add_storage_arg,
    add_worker_args, write_artifact,
)

__all__ = ["build_mix", "drive", "main", "percentile", "run_loadgen"]

#: fast kernels the mix draws from (testing-platform scale)
MIX_APPS = ("ring", "heat", "CG")

#: kill-timing classes for the recovery jobs in the mix
MIX_KILLS = {
    "early": lambda n: ({"rank": n - 1, "frac": 0.2},),
    "mid": lambda n: ({"rank": 1 % n, "frac": 0.55},),
    "late": lambda n: ({"rank": 0, "frac": 0.85},),
    "double": lambda n: ({"rank": 1 % n, "frac": 0.35},
                         {"rank": n - 1, "frac": 0.7},),
}


def build_mix(rng: random.Random, count: int,
              storage: Optional[str] = None,
              engine: Optional[str] = None,
              platform: str = "testing") -> List[JobSpec]:
    """``count`` distinct job specs: mostly recovery, some overhead.

    Each spec gets a distinct ``seed``, so every spec is a distinct
    cache key — phase-1 cache hits would silently shrink the amount of
    real execution the bench measures.
    """
    specs: List[JobSpec] = []
    for i in range(count):
        app = rng.choice(MIX_APPS)
        nprocs = rng.randint(2, 4)
        flavor = storage if storage is not None \
            else rng.choice(("memory", "wal"))
        if rng.random() < 0.2:
            specs.append(JobSpec(app=app, platform=platform,
                                 nprocs=nprocs, seed=i, engine=engine,
                                 storage=flavor, kind="overhead"))
        else:
            kills = MIX_KILLS[rng.choice(tuple(MIX_KILLS))](nprocs)
            specs.append(JobSpec(app=app, platform=platform,
                                 nprocs=nprocs, seed=i, engine=engine,
                                 storage=flavor, kills=kills))
    return specs


def percentile(values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile (``pct`` in [0, 100]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


async def _submit_and_consume(service: CampaignService, tenant: str,
                              spec: JobSpec) -> Dict[str, Any]:
    """Submit one job and stream its events to completion."""
    job = await service.submit(tenant, spec)
    cells = 0
    async for event in job.events():
        if event["type"] == "cell":
            cells += 1
    end = job.first_result_at if job.first_result_at is not None \
        else time.monotonic()
    return {
        "tenant": tenant,
        "key": spec.cache_key(),
        "cached": job.cached,
        "ok": job.ok,
        "error": job.error,
        "cells": cells,
        "latency": end - job.submitted_at,
        "bytes": (canonical_result_bytes(job.rows)
                  if job.rows is not None else None),
    }


async def drive(service: CampaignService, tenants: Sequence[str],
                specs: Sequence[JobSpec], duplicates: Sequence[int],
                ) -> Tuple[List[Dict], List[Dict]]:
    """Phase 1: every spec once (spec i on tenant i mod N), all
    concurrent.  Phase 2: the sampled duplicate indices again, same
    tenant and spec — these must be cache-served.  Returns both phases'
    per-job records."""
    assignment = [tenants[i % len(tenants)] for i in range(len(specs))]
    first = await asyncio.gather(*[
        _submit_and_consume(service, assignment[i], specs[i])
        for i in range(len(specs))])
    second = await asyncio.gather(*[
        _submit_and_consume(service, assignment[i], specs[i])
        for i in duplicates])
    for rec, i in zip(second, duplicates):
        rec["duplicate_of"] = i
        rec["bitwise_equal"] = (rec["bytes"] is not None
                                and rec["bytes"] == first[i]["bytes"])
    return list(first), list(second)


def run_loadgen(tenants: int = 4, jobs: int = 120,
                duplicate_frac: float = 0.3, queue_limit: int = 32,
                workers: Optional[int] = None, seed: int = 0,
                storage: Optional[str] = None,
                engine: Optional[str] = None,
                platform: str = "testing",
                p99_budget: float = 30.0) -> Dict[str, Any]:
    """The whole bench; returns the ``BENCH_service.json`` payload."""
    rng = random.Random(seed)
    n_dup = int(jobs * duplicate_frac)
    n_unique = max(1, jobs - n_dup)
    # The engine rides the service's default_engine (the process-backend
    # executor option), not the specs: that is the seam a deployment
    # would flip, and the cache keys must reflect the engine the service
    # actually applied.
    specs = build_mix(rng, n_unique, storage=storage, platform=platform)
    duplicates = [rng.randrange(n_unique) for _ in range(n_dup)]
    tenant_names = [f"tenant{i:02d}" for i in range(max(1, tenants))]
    workers = workers if workers is not None else 4

    # A real-kill engine physically destroys node processes, so the
    # tenants' shared medium must be real disk for fault-injected jobs
    # to have stable bytes to recover from (capability flag, not an
    # engine-name check); namespaces delegate shared_across_fork.
    real_kill = (engine is not None
                 and backend_for(engine).supports_real_kill)
    disk_root = tempfile.mkdtemp(prefix="repro-loadgen-") if real_kill \
        else None

    async def bench() -> Tuple[List[Dict], List[Dict], Dict]:
        from ..storage.stable import DiskStorage
        shared = DiskStorage(disk_root) if disk_root is not None else None
        async with CampaignService(backend=shared,
                                   queue_limit=queue_limit,
                                   workers=workers,
                                   default_engine=engine) as svc:
            first, second = await drive(svc, tenant_names, specs,
                                        duplicates)
            return first, second, svc.stats()

    t0 = time.monotonic()
    try:
        first, second, stats = asyncio.run(bench())
    finally:
        if disk_root is not None:
            shutil.rmtree(disk_root, ignore_errors=True)
    wall = time.monotonic() - t0

    everything = first + second
    failures = [r for r in everything if not r["ok"]]
    dup_misses = [r for r in second if not r["cached"]]
    dup_unequal = [r for r in second if not r["bitwise_equal"]]
    latencies = [r["latency"] for r in everything]
    p99 = percentile(latencies, 99.0)
    submissions = len(everything)
    gates = {
        "zero_verify_failures": not failures,
        "duplicates_cache_served": not dup_misses,
        "duplicates_bitwise_equal": not dup_unequal,
        "p99_within_budget": p99 <= p99_budget,
    }
    return {
        "config": {
            "tenants": len(tenant_names), "jobs": jobs,
            "unique_jobs": n_unique, "duplicates": len(duplicates),
            "duplicate_frac": duplicate_frac,
            "queue_limit": queue_limit, "workers": workers,
            "seed": seed, "storage": storage, "engine": engine,
            "service_backend": "disk" if real_kill else "memory",
            "platform": platform, "p99_budget_s": p99_budget,
        },
        "submissions": submissions,
        "wall_seconds": round(wall, 3),
        "throughput_jobs_per_s": round(submissions / wall, 2) if wall
        else None,
        "cache": {
            "hits": sum(1 for r in everything if r["cached"]),
            "hit_rate": round(
                sum(1 for r in everything if r["cached"]) / submissions,
                4),
            "duplicate_misses": len(dup_misses),
            "duplicate_mismatches": len(dup_unequal),
        },
        "latency_s": {
            "p50": round(percentile(latencies, 50.0), 4),
            "p90": round(percentile(latencies, 90.0), 4),
            "p99": round(p99, 4),
            "max": round(max(latencies), 4) if latencies else 0.0,
        },
        "verify_failures": [
            {"tenant": r["tenant"], "error": r["error"]}
            for r in failures],
        "service": stats,
        "gates": gates,
        "ok": all(gates.values()),
    }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.loadgen",
        description="Drive N concurrent tenants of mixed submissions "
                    "through the campaign service; gate verify "
                    "failures, cache correctness, and p99 latency.")
    ap.add_argument("--tenants", type=int, default=4,
                    help="concurrent tenants (default 4)")
    ap.add_argument("--jobs", type=int, default=120,
                    help="total submissions, duplicates included "
                         "(default 120)")
    ap.add_argument("--duplicate-frac", type=float, default=0.3,
                    help="fraction of submissions that resubmit an "
                         "earlier spec (default 0.3)")
    ap.add_argument("--queue-limit", type=int, default=32,
                    help="bounded queue depth (default 32: far fewer "
                         "slots than submissions, so backpressure is "
                         "exercised)")
    ap.add_argument("--platform", default="testing",
                    help="machine model for every job (default testing)")
    ap.add_argument("--p99-budget", type=float, default=30.0,
                    help="p99 submission-to-first-result budget in "
                         "seconds (default 30)")
    add_engine_arg(ap)
    add_storage_arg(ap, help="force every job's stable-storage flavor "
                             "(default: a seeded memory/wal mix)")
    add_seed_arg(ap, help="mix RNG seed (default 0)")
    add_worker_args(ap)
    add_output_args(ap)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    report = run_loadgen(
        tenants=args.tenants, jobs=args.jobs,
        duplicate_frac=args.duplicate_frac,
        queue_limit=args.queue_limit,
        workers=1 if args.inline else args.workers, seed=args.seed,
        storage=args.storage, engine=args.engine,
        platform=args.platform, p99_budget=args.p99_budget)
    if not args.quiet:
        lat = report["latency_s"]
        print(f"{report['submissions']} submissions "
              f"({report['config']['tenants']} tenants, "
              f"{report['config']['unique_jobs']} unique) in "
              f"{report['wall_seconds']}s "
              f"({report['throughput_jobs_per_s']} jobs/s)")
        print(f"cache: {report['cache']['hits']} hits "
              f"(rate {report['cache']['hit_rate']}), "
              f"{report['cache']['duplicate_misses']} duplicate "
              f"misses, {report['cache']['duplicate_mismatches']} "
              f"bitwise mismatches")
        print(f"latency s: p50={lat['p50']} p90={lat['p90']} "
              f"p99={lat['p99']} max={lat['max']} "
              f"(budget {report['config']['p99_budget_s']})")
    if args.json:
        write_artifact(args.json, report)
    for name, passed in report["gates"].items():
        if not passed:
            print(f"GATE FAILED: {name}")
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
