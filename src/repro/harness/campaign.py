"""Fault-injection recovery campaign: kill/restart/verify at matrix scale.

The paper's headline claim is that C3 makes restart about as cheap as
taking a checkpoint (Tables 6/7) while recovering *exactly* — replayed
late messages, suppressed early sends, and logged non-determinism give a
restarted run the failure-free answer bit for bit.  The unit tests
exercise single recovery paths; this module opens the whole scenario
space: every app kernel x platform model x kill timing, each scenario
running the golden/clean/faulty/verify pipeline of
:func:`repro.harness.runner.measure_recovery` through the process-pool
harness.

A *scenario* is plain data (picklable, JSON-able): an app name with
campaign-sized parameters, a machine-model name, and a named *kill
timing* that expands into fail-stop :class:`~repro.mpi.faults.FaultSpec`
triggers —

======================  ====================================================
timing                  kills
======================  ====================================================
``early``               one rank at 15% of the golden runtime
``mid_run``             one rank at 55%
``late``                one rank at 85%
``double``              two ranks, 35% and 70% (multi-fault schedule)
``epoch_boundary``      a rank the instant it advances to epoch 2
                        (``chkpt_StartCheckpoint`` ran, nothing committed)
``mid_collective``      a rank inside its 4th collective, mid-exchange
``mid_drain``           a rank while line 1's staged bytes are still
                        draining to the node disk (overlapped write-back:
                        sections on storage, COMMIT not yet written — the
                        torn line must be rejected at restore)
``mid_commit``          a rank the instant line 1 becomes durable, right
                        before its COMMIT marker is written (the
                        narrowest tear window of the commit pipeline)
``mid_group_commit``    a rank right after its COMMIT record for line 1 is
                        staged in its node's WAL buffer, before the
                        batched group-commit fsync — the staged group is
                        torn out of the log tail (WAL storage only)
``torn_record``         the last rank at the same window: its node's
                        unsynced tail is cut *mid-record* at crash, so
                        replay must truncate at the tear and recovery
                        fall back to the prior line (WAL storage only)
``storm``               every rank with per-operation probability, seeded
======================  ====================================================

The two WAL-only timings require ``--storage wal`` or ``--storage
wal-disk`` (scatter stores have no group-commit window; the matrix
builder skips them elsewhere).

Restarts go through :func:`repro.core.ccc.resume_from_manifest` — the
storage-manifest entry point an operator would use — so the campaign
drives exactly the restart path the paper's Section 4 describes, not a
test-only shortcut.  Per scenario the report records the verification
verdicts (clean C3 vs golden, recovered vs golden), restart counts,
restart-cost figures in the Table 6/7 schema, protocol evidence (log
replays, suppressed sends), and the off-cluster durability numbers of
the PSC-style drain daemon.

Command line::

    python -m repro.harness.campaign --smoke            # CI subset, < 60 s
    python -m repro.harness.campaign --full             # kernels x 3 platforms x timings
    python -m repro.harness.campaign --apps CG,LU --kills mid_collective \
        --platforms lemieux --json CAMPAIGN.json

Exit status 0 iff every scenario verified (and every deterministic kill
actually fired).  ``--json`` writes the machine-readable report; the CI
workflow uploads it and fails on a non-zero exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import APPS
from ..mpi.backends import backend_for
from ..mpi.timemodel import MACHINES
from .jobs import (
    add_engine_arg, add_output_args, add_seed_arg, add_storage_arg,
    add_worker_args, fail_exit, open_store, run_study, write_artifact,
    StudyJob,
)
from .parallel import Cell, CellError
from .report import render_table
from .runner import measure_recovery

__all__ = [
    "APP_KERNELS", "CAMPAIGN_PARAMS", "COLLECTIVE_APPS",
    "INSTRUMENTED_KERNELS", "KILL_TIMINGS",
    "CampaignJob", "CampaignReport", "Scenario", "build_matrix",
    "full_matrix", "main", "render_campaign", "run_campaign",
    "smoke_matrix",
]

#: The ten benchmark kernels of the paper's Section 6, plus the two demo
#: apps, plus the six precompiler-instrumented kernel variants
#: (``*+ccc``: plain annotated source run through ``repro.precompiler``)
#: — the campaign's default coverage set.
INSTRUMENTED_KERNELS: Tuple[str, ...] = (
    "CG+ccc", "LU+ccc", "MG+ccc", "EP+ccc", "ring+ccc", "heat+ccc",
)

APP_KERNELS: Tuple[str, ...] = (
    "CG", "LU", "SP", "BT", "MG", "EP", "FT", "IS", "SMG2000", "HPL",
    "ring", "heat",
) + INSTRUMENTED_KERNELS

#: Campaign-sized app parameters: long enough for several checkpoint
#: intervals (so structural kills have epochs/collectives to land in),
#: small enough that a 3-run scenario finishes in well under a second.
CAMPAIGN_PARAMS: Dict[str, dict] = {
    "CG": dict(local_n=32, nnz_per_row=4, niter=8),
    "LU": dict(local_nx=12, local_ny=12, niter=8),
    "SP": dict(local_rows=6, row_len=32, niter=8),
    "BT": dict(local_rows=6, row_len=32, niter=8),
    "MG": dict(local_n=64, levels=3, niter=6),
    "EP": dict(pairs_per_batch=512, batches=6),
    "FT": dict(local_rows=4, row_len=32, niter=6),
    "IS": dict(keys_per_rank=512, niter=6),
    "SMG2000": dict(local_n=8, levels=3, niter=4),
    "HPL": dict(n=48, block=8, trials=3),
    "ring": dict(payload=8, niter=10),
    "heat": dict(local_n=16, niter=10),
}
# the instrumented variants run at the same campaign scale as their
# handwritten counterparts
CAMPAIGN_PARAMS.update({
    name: dict(CAMPAIGN_PARAMS[name.split("+")[0]])
    for name in INSTRUMENTED_KERNELS
})

#: Apps whose kernels perform collective operations; ``mid_collective``
#: scenarios only apply to these (LU is pure point-to-point).
COLLECTIVE_APPS = frozenset(APP_KERNELS) - {"LU", "LU+ccc"}

#: The three platform models of the evaluation (Tables 2-7).
FULL_PLATFORMS: Tuple[str, ...] = ("lemieux", "velocity2", "cmi")


def _kill_early(nprocs: int) -> List[dict]:
    return [{"rank": nprocs - 1, "frac": 0.15}]


def _kill_mid_run(nprocs: int) -> List[dict]:
    return [{"rank": 1 % nprocs, "frac": 0.55}]


def _kill_late(nprocs: int) -> List[dict]:
    return [{"rank": 0, "frac": 0.85}]


def _kill_double(nprocs: int) -> List[dict]:
    return [{"rank": 1 % nprocs, "frac": 0.35},
            {"rank": (nprocs - 1), "frac": 0.70}]


def _kill_epoch_boundary(nprocs: int) -> List[dict]:
    # Epoch 1 is the one boundary every kernel reaches on every platform
    # (EP's pragmas all sit early in the run, so rank 1 never advances to
    # epoch 2 on the high-latency machines).  The boundary semantics are
    # the same at every line: the epoch has advanced, nothing of the new
    # line is committed, and recovery must come from the previous one —
    # here, from the beginning.  Deeper boundaries are pinned by
    # tests/integration/test_campaign.py on the testing platform.
    return [{"rank": 1 % nprocs, "at_epoch": 1}]


def _kill_mid_collective(nprocs: int) -> List[dict]:
    return [{"rank": nprocs - 1, "in_collective": 4}]


def _kill_mid_drain(nprocs: int) -> List[dict]:
    # Line 1 is the first line every checkpointing kernel stages on every
    # platform (the dense epoch_boundary cadence applies, see
    # KILL_TIMINGS); the victim dies with the line's sections staged but
    # its COMMIT unwritten — recovery must reject the torn line.
    return [{"rank": 1 % nprocs, "in_drain": 1}]


def _kill_mid_commit(nprocs: int) -> List[dict]:
    return [{"rank": 0, "at_commit": 1}]


def _kill_mid_group_commit(nprocs: int) -> List[dict]:
    # The victim dies with its COMMIT record for line 1 staged in the
    # node's WAL buffer but the batched fsync not yet issued; the whole
    # staged group is lost, replay finds no durable COMMIT for the line,
    # and recovery falls back.  Line 1 for the same reason as mid_drain:
    # it is the one line every kernel stages on every platform.
    return [{"rank": 1 % nprocs, "at_group_commit": 1}]


def _kill_torn_record(nprocs: int) -> List[dict]:
    # Same window, but the *last* rank — typically the final committer of
    # its node's group, so the buffered tail it tears is the fullest one.
    # The crash model cuts the tail mid-record, forcing replay to detect
    # the torn record (bad length/CRC) and physically truncate at the
    # tear before recovery proceeds from the prior committed line.
    return [{"rank": nprocs - 1, "at_group_commit": 1}]


def _kill_storm(nprocs: int) -> List[dict]:
    return [{"rank": r, "probability": 0.002} for r in range(nprocs)]


#: Named kill timings: name -> (builder, deterministic,
#: needs_collectives, interval_frac, needs_wal).
#: ``deterministic`` timings must inject at least one failure, or the
#: scenario fails — a matrix whose kills silently miss is not a recovery
#: test.  (For multi-kill schedules like ``double``, later kills are
#: best-effort: restarted runs reset virtual clocks, and cheap log-replay
#: re-execution can finish before a late trigger is reached again.)
#: ``interval_frac`` (when not None) overrides the scenario's checkpoint
#: cadence: ``epoch_boundary`` checkpoints densely so every kernel
#: reaches its first epoch boundary at all on every platform (EP's
#: pragmas all sit in the first fraction of the run on high-latency
#: machines; at the default cadence the timer never trips there).
#: ``needs_wal`` timings fire from the WAL store's group-commit hook and
#: are skipped for scatter storage, which has no such window.
KILL_TIMINGS: Dict[str, Tuple[Callable[[int], List[dict]], bool, bool,
                              Optional[float], bool]] = {
    "early": (_kill_early, True, False, None, False),
    "mid_run": (_kill_mid_run, True, False, None, False),
    "late": (_kill_late, True, False, None, False),
    "double": (_kill_double, True, False, None, False),
    "epoch_boundary": (_kill_epoch_boundary, True, False, 0.05, False),
    "mid_collective": (_kill_mid_collective, True, True, None, False),
    "mid_drain": (_kill_mid_drain, True, False, 0.05, False),
    "mid_commit": (_kill_mid_commit, True, False, 0.05, False),
    "mid_group_commit": (_kill_mid_group_commit, True, False, 0.05, True),
    "torn_record": (_kill_torn_record, True, False, 0.05, True),
    "storm": (_kill_storm, False, False, None, False),
}

#: Storage choices whose scenarios run against the WAL engine.
WAL_STORAGES = frozenset({"wal", "wal-disk"})

#: Storage choices whose medium survives a killed OS process — what a
#: ``supports_real_kill`` backend needs for fault-injected scenarios.
DISK_STORAGES = frozenset({"disk", "wal-disk"})


@dataclass(frozen=True)
class Scenario:
    """One campaign cell: app x platform x kill timing, as plain data."""

    app: str
    platform: str
    kill: str
    nprocs: int = 4
    params: dict = field(default_factory=dict)
    kills: Tuple[dict, ...] = ()
    interval_frac: float = 0.2
    seed: int = 0
    wall_timeout: float = 120.0
    #: engine backend (None = the default cooperative scheduler)
    engine: Optional[str] = None
    #: stable-storage engine: "memory" (default) / "disk" (fresh
    #: tmpdir-rooted DiskStorage per execution phase — real files, real
    #: atomic renames) run the per-file scatter layout; "wal" /
    #: "wal-disk" run the log-structured WAL engine (group commit,
    #: replay recovery, segment GC) over the same two backends
    storage: str = "memory"

    @property
    def label(self) -> str:
        if self.storage != "memory":
            return f"{self.app}/{self.platform}/{self.kill}@{self.storage}"
        return f"{self.app}/{self.platform}/{self.kill}"


def build_matrix(apps: Sequence[str], platforms: Sequence[str],
                 kills: Sequence[str], nprocs: int = 4,
                 interval_frac: float = 0.2, seed: int = 0,
                 wall_timeout: float = 120.0,
                 engine: Optional[str] = None,
                 storage: str = "memory") -> List[Scenario]:
    """The scenario grid, skipping inapplicable combinations
    (``mid_collective`` on point-to-point-only apps; the WAL-only
    timings on scatter storage)."""
    unknown = [a for a in apps if a not in APPS]
    if unknown:
        raise ValueError(f"unknown apps: {unknown}; have {sorted(APPS)}")
    unknown = [p for p in platforms if p not in MACHINES]
    if unknown:
        raise ValueError(
            f"unknown platforms: {unknown}; have {sorted(MACHINES)}")
    unknown = [k for k in kills if k not in KILL_TIMINGS]
    if unknown:
        raise ValueError(
            f"unknown kill timings: {unknown}; have {sorted(KILL_TIMINGS)}")
    scenarios = []
    for app in apps:
        for platform in platforms:
            for kill in kills:
                (builder, _det, needs_coll, frac_override,
                 needs_wal) = KILL_TIMINGS[kill]
                if needs_coll and app not in COLLECTIVE_APPS:
                    continue
                if needs_wal and storage not in WAL_STORAGES:
                    continue
                scenarios.append(Scenario(
                    app=app, platform=platform, kill=kill, nprocs=nprocs,
                    params=CAMPAIGN_PARAMS.get(app, {}),
                    kills=tuple(builder(nprocs)),
                    interval_frac=(frac_override if frac_override is not None
                                   else interval_frac),
                    seed=seed, wall_timeout=wall_timeout, engine=engine,
                    storage=storage))
    return scenarios


def smoke_matrix(nprocs: int = 4, interval_frac: float = 0.2,
                 seed: int = 0, engine: Optional[str] = None,
                 storage: str = "memory") -> List[Scenario]:
    """The CI subset: every app kernel, one platform, kill timings
    rotated across apps so each deterministic timing appears several
    times — full kernel coverage in well under a minute.  WAL storage
    widens the rotation with the group-commit tear windows."""
    rotation = ("mid_run", "epoch_boundary", "mid_collective", "mid_drain",
                "early", "late", "double", "mid_commit")
    if storage in WAL_STORAGES:
        rotation += ("mid_group_commit", "torn_record")
    scenarios = []
    for i, app in enumerate(APP_KERNELS):
        kill = rotation[i % len(rotation)]
        if kill == "mid_collective" and app not in COLLECTIVE_APPS:
            kill = "mid_run"
        scenarios.extend(build_matrix([app], ["testing"], [kill],
                                      nprocs=nprocs,
                                      interval_frac=interval_frac,
                                      seed=seed, engine=engine,
                                      storage=storage))
    return scenarios


def full_matrix(nprocs: int = 4) -> List[Scenario]:
    """Every app kernel x the three evaluation platforms x every kill
    timing (deterministic and probabilistic)."""
    return build_matrix(APP_KERNELS, FULL_PLATFORMS, tuple(KILL_TIMINGS),
                        nprocs=nprocs)


# ---------------------------------------------------------------------------
# Execution and reporting
# ---------------------------------------------------------------------------

@dataclass
class CampaignReport:
    """All scenario records plus the pass/fail roll-up."""

    rows: List[Dict]
    wall_seconds: float = 0.0
    #: harness-level error (e.g. a broken worker pool) that forced the
    #: affected scenarios onto the inline fallback — the verdicts are
    #: still complete, but the underlying cause must not be hidden
    harness_error: Optional[str] = None

    @property
    def failures(self) -> List[Dict]:
        return [r for r in self.rows if not r["passed"]]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> Dict:
        rows = self.rows
        out = {
            "scenarios": len(rows),
            "passed": sum(r["passed"] and not r.get("skipped")
                          for r in rows),
            "skipped": sum(bool(r.get("skipped")) for r in rows),
            "failed": [r["scenario"] for r in self.failures],
            "total_restarts": sum(r.get("restarts", 0) for r in rows),
            "wall_seconds": self.wall_seconds,
        }
        if self.harness_error:
            out["harness_error"] = self.harness_error
        return out

    def to_json(self) -> str:
        return json.dumps({"summary": self.summary(), "rows": self.rows},
                          indent=2, default=str)

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())


def skip_reason(scenario: Scenario) -> Optional[str]:
    """Why this backend cannot run the scenario honestly, or ``None``.

    Decided from the backend's capability flags (one source of truth in
    :mod:`repro.mpi.backends`), not from engine-name string checks: a
    ``supports_real_kill`` backend physically destroys the victim OS
    process, so a fault-injected scenario over a storage flavor whose
    medium dies with the process has nothing stable to recover from and
    is recorded as skipped-with-reason rather than run dishonestly.
    """
    impl = backend_for(scenario.engine)
    if (impl.supports_real_kill and scenario.kills
            and scenario.storage not in DISK_STORAGES):
        return (f"engine {impl.name!r} delivers faults as real SIGKILLs; "
                f"storage {scenario.storage!r} dies with the killed "
                f"process (needs one of {sorted(DISK_STORAGES)})")
    return None


def _judge(scenario: Scenario, record: Dict) -> Dict:
    """Fold a measurement record into a campaign row with a verdict."""
    if record.get("skipped"):
        # capability skip: a row with the reason, counted apart from
        # passes in the summary, never a silent hole in the matrix
        return {"scenario": scenario.label, "kill_timing": scenario.kill,
                "passed": True, "failure": None, **record}
    deterministic = KILL_TIMINGS[scenario.kill][1]
    # At least one kill must have fired (see KILL_TIMINGS: later kills of
    # a multi-fault schedule are best-effort after clocks reset).
    fired = bool(record.get("fired"))
    failure = None
    if record.get("error"):
        failure = record["error"]
    elif not record["verified_clean"]:
        failure = "clean C3 run diverged from the golden results"
    elif not record["verified_recovery"]:
        failure = "recovered results are not bitwise-equal to golden"
    elif deterministic and not fired:
        failure = "deterministic kill never fired (scenario vacuous)"
    return {
        "scenario": scenario.label,
        "kill_timing": scenario.kill,
        "passed": failure is None,
        "failure": failure,
        **record,
    }


def _error_record(scenario: Scenario, exc: Exception) -> Dict:
    return {
        "app": scenario.app, "nprocs": scenario.nprocs,
        "platform": scenario.platform, "kills": list(scenario.kills),
        "fired": [], "interval_frac": scenario.interval_frac,
        "verified": False, "verified_clean": False,
        "verified_recovery": False, "restarts": 0,
        "error": f"{type(exc).__name__}: {exc}",
    }


def _measure_scenario(scenario: Scenario) -> Dict:
    """Top-level (picklable) cell body: one scenario, never raises.

    Scenario errors (a deadlocked run, a protocol assertion) become
    error records, so a broken cell neither aborts its ``run_cells``
    wave nor discards the pool's in-flight results for the rest.  The
    storage flavor resolves through :func:`repro.harness.jobs.
    open_store`: ``"disk"`` scenarios run against fresh tmpdir-rooted
    :class:`~repro.storage.stable.DiskStorage` backends (removed after
    the measurement); ``"wal"`` / ``"wal-disk"`` wrap the in-memory /
    tmpdir backend in a fresh :class:`~repro.storage.wal.WalStore`, so
    the whole kill/restart/verify pipeline — including WAL replay on
    restart — runs against the log-structured engine.
    """
    s = scenario
    reason = skip_reason(s)
    if reason is not None:
        return {"app": s.app, "nprocs": s.nprocs, "platform": s.platform,
                "kills": list(s.kills), "skipped": reason}
    try:
        with open_store(s.storage, prefix="repro-campaign-") as factory:
            return measure_recovery(
                s.app, s.nprocs, MACHINES[s.platform], dict(s.params),
                [dict(k) for k in s.kills], interval_frac=s.interval_frac,
                seed=s.seed, wall_timeout=s.wall_timeout, engine=s.engine,
                storage_factory=factory)
    except Exception as exc:  # noqa: BLE001 - verdict, not crash
        return _error_record(s, exc)


class CampaignJob(StudyJob):
    """The recovery campaign as a study job: scenarios in, verdicts out."""

    name = "campaign"

    def __init__(self, scenarios: Sequence[Scenario]):
        self.scenarios = list(scenarios)

    def cells(self) -> List[Cell]:
        return [Cell(_measure_scenario, dict(scenario=s), label=s.label)
                for s in self.scenarios]

    def judge(self, index: int, cell: Cell, result: Dict) -> Dict:
        return _judge(self.scenarios[index], result)

    def error_row(self, index: int, cell: Cell, err: CellError) -> Dict:
        s = self.scenarios[index]
        return _judge(s, dict(_error_record(s, RuntimeError(err.error)),
                              traceback=err.traceback))


def run_campaign(scenarios: Sequence[Scenario],
                 parallel: Optional[bool] = None,
                 max_workers: Optional[int] = None,
                 progress: Optional[Callable[[Dict], None]] = None,
                 ) -> CampaignReport:
    """Run every scenario through the shared study-job harness.

    Per-scenario errors are captured as failed rows instead of aborting
    the campaign, so one broken cell cannot hide the verdicts of the
    rest.  ``progress`` receives each judged row as it completes (input
    order).
    """
    report = run_study(
        CampaignJob(scenarios), parallel=parallel, max_workers=max_workers,
        progress=(None if progress is None
                  else lambda _i, row: progress(row)))
    return CampaignReport(rows=report.rows,
                          wall_seconds=report.wall_seconds,
                          harness_error=report.harness_error)


def render_campaign(rows: Sequence[Dict]) -> str:
    """The campaign verdict table (paper-layout plain text)."""
    table_rows = []
    for r in rows:
        table_rows.append([
            r["scenario"],
            ("SKIP" if r.get("skipped")
             else "PASS" if r["passed"] else "FAIL"),
            r.get("restarts", 0),
            r.get("checkpoints_committed"),
            r.get("lines_retained"),
            _us(r.get("golden_seconds")),
            _us(r.get("restart_cost_seconds")),
            _us(r.get("restore_seconds")),
            r.get("replayed_from_log"),
            r.get("suppressed_sends"),
        ])
    return render_table(
        "Recovery campaign: kill / restart / verify",
        ["Scenario", "Verdict", "Restarts", "Ckpts", "Held", "Golden us",
         "RestartCost us", "Restore us", "Replayed", "Suppressed"],
        table_rows,
        widths=[30, 7, 8, 5, 4, 10, 14, 10, 8, 10],
    )


def _us(seconds: Optional[float]) -> Optional[float]:
    """Microseconds — campaign runs are tiny; seconds would render 0.00."""
    return None if seconds is None else seconds * 1e6


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.campaign",
        description="Fault-injection recovery campaign: for each app "
                    "kernel x platform x kill timing, run golden / clean-C3 "
                    "/ kill+restart and verify bitwise-equal results.")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="CI subset: every kernel, testing platform, "
                           "rotated kill timings (default)")
    mode.add_argument("--full", action="store_true",
                      help="every kernel x 3 platforms x every timing")
    ap.add_argument("--apps", help="comma-separated app names "
                                   f"(default: all of {', '.join(APP_KERNELS)})")
    ap.add_argument("--platforms",
                    help="comma-separated machine models "
                         f"(known: {', '.join(sorted(MACHINES))})")
    ap.add_argument("--kills",
                    help="comma-separated kill timings "
                         f"(known: {', '.join(KILL_TIMINGS)})")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per scenario (default 4)")
    add_engine_arg(ap)
    add_storage_arg(ap, default="memory",
                    help="stable-storage engine per scenario: scatter "
                         "layout over in-memory (default) or tmpdir-rooted "
                         "real files, or the WAL engine over the same two "
                         "backends (enables the group-commit kill windows)")
    ap.add_argument("--interval-frac", type=float, default=0.2,
                    help="checkpoint interval as a fraction of the golden "
                         "runtime (default 0.2)")
    add_seed_arg(ap, help="RNG seed for probabilistic kills")
    add_worker_args(ap)
    ap.add_argument("--list", action="store_true",
                    help="print the scenario matrix and exit")
    add_output_args(ap)
    return ap.parse_args(argv)


def _select_matrix(args: argparse.Namespace) -> List[Scenario]:
    explicit = args.apps or args.platforms or args.kills
    if args.smoke and explicit:
        raise SystemExit(
            "--smoke selects a fixed matrix; drop it to combine "
            "--apps/--platforms/--kills (or use --full to widen their "
            "defaults)")
    if args.full:
        apps = args.apps.split(",") if args.apps else list(APP_KERNELS)
        platforms = (args.platforms.split(",") if args.platforms
                     else list(FULL_PLATFORMS))
        kills = args.kills.split(",") if args.kills else list(KILL_TIMINGS)
        return build_matrix(apps, platforms, kills, nprocs=args.nprocs,
                            interval_frac=args.interval_frac, seed=args.seed,
                            engine=args.engine, storage=args.storage)
    if explicit:
        apps = args.apps.split(",") if args.apps else list(APP_KERNELS)
        platforms = (args.platforms.split(",") if args.platforms
                     else ["testing"])
        kills = (args.kills.split(",") if args.kills
                 else ["mid_run", "epoch_boundary", "mid_collective"])
        return build_matrix(apps, platforms, kills, nprocs=args.nprocs,
                            interval_frac=args.interval_frac, seed=args.seed,
                            engine=args.engine, storage=args.storage)
    return smoke_matrix(nprocs=args.nprocs,
                        interval_frac=args.interval_frac, seed=args.seed,
                        engine=args.engine, storage=args.storage)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    scenarios = _select_matrix(args)
    if args.list:
        for s in scenarios:
            kills = "; ".join(
                ", ".join(f"{k}={v}" for k, v in kill.items())
                for kill in s.kills)
            print(f"{s.label:36s} {kills}")
        print(f"{len(scenarios)} scenarios")
        return 0

    total = len(scenarios)
    done = [0]

    def progress(row: Dict) -> None:
        done[0] += 1
        if not args.quiet:
            verdict = "PASS" if row["passed"] else "FAIL"
            extra = (f" restarts={row.get('restarts', 0)}"
                     if row["passed"] else f" ({row['failure']})")
            print(f"[{done[0]:3d}/{total}] {verdict} {row['scenario']}{extra}",
                  flush=True)

    report = run_campaign(scenarios, parallel=False if args.inline else None,
                          max_workers=args.workers, progress=progress)
    print()
    print(render_campaign(report.rows))
    s = report.summary()
    print(f"\n{s['passed']}/{s['scenarios']} scenarios verified, "
          f"{s['total_restarts']} restarts exercised "
          f"({report.wall_seconds:.1f}s wall)")
    if report.harness_error:
        print(f"warning: worker pool degraded to inline execution: "
              f"{report.harness_error}", file=sys.stderr)
    if args.json:
        write_artifact(args.json, {"summary": report.summary(),
                                   "rows": report.rows})
    if not report.ok:
        return fail_exit(s["failed"], what="scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
