"""Experiment drivers: one function per table of the paper's Section 6.

Each driver returns a list of row dicts carrying both the measured value
and the paper's value for the same cell, and a ``render_*`` helper
produces the paper-layout text table.  The benchmark files under
``benchmarks/`` call these drivers; EXPERIMENTS.md is generated from the
same rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..apps import APPS
from ..baselines.condor import measure_sizes
from ..core.ccc import run_c3, run_original
from ..core.protocol import C3Config
from ..mpi.timemodel import MachineModel
from ..storage.stable import InMemoryStorage
from . import paperdata
from .platforms import (
    PLATFORMS, RESTART_CODES, RESTART_MACHINES, SIZE_SCALE, TABLE1_CODES,
    TABLE1_PLATFORMS,
)
from .parallel import run_cells
from .report import render_table
from .runner import (
    c3_cell, measure_c3, measure_original, measure_restart, original_cell,
    restart_cell,
)

# ---------------------------------------------------------------------------
# Table 1 — checkpoint sizes, Condor vs C3
# ---------------------------------------------------------------------------

def _table1_app_factory(app_name: str, params: dict, pad_to_c3: int,
                        churn_blocks: int, runtime_scaled: int,
                        metadata_scaled: int):
    app = APPS[app_name]

    def wrapped(ctx):
        app(ctx, **params)
        # at 1/SIZE_SCALE footprint the stack is a few hundred bytes
        ctx.heap.stack_bytes = 512
        # allocator churn: freed blocks stay inside the Condor image
        for i in range(churn_blocks):
            addr, _ = ctx.heap.alloc_array(1024 // 8, label=f"churn{i}")
            ctx.heap.free(addr)
        live = ctx.state.nbytes + ctx.heap.live_bytes
        if live < pad_to_c3:
            ctx.state["__footprint_pad"] = np.zeros(
                max(0, (pad_to_c3 - live - metadata_scaled)) // 8)
        sizes = measure_sizes(ctx, condor_runtime_bytes=runtime_scaled,
                              c3_metadata_bytes=metadata_scaled)
        return (sizes.condor_bytes, sizes.c3_bytes)

    return wrapped


def table1_rows() -> List[Dict]:
    """Condor vs C3 checkpoint sizes on the two uniprocessor platforms."""
    rows = []
    runtime_scaled = 35 * 1024 // SIZE_SCALE   # Condor runtime, scaled
    metadata_scaled = 2048                      # C3 registries + tables
    for platform, machine in TABLE1_PLATFORMS.items():
        for app_name, label, params, pad_to_c3, churn in TABLE1_CODES:
            app = _table1_app_factory(app_name, params, pad_to_c3, churn,
                                      runtime_scaled, metadata_scaled)
            result = run_original(app, 1, machine=machine, wall_timeout=120)
            result.raise_errors()
            condor_b, c3_b = result.returns[0]
            condor_mb = condor_b * SIZE_SCALE / 1e6
            c3_mb = c3_b * SIZE_SCALE / 1e6
            reduction = (1.0 - c3_b / condor_b) * 100.0
            paper = paperdata.TABLE1[platform][label]
            rows.append({
                "platform": platform, "code": label,
                "condor_mb": condor_mb, "c3_mb": c3_mb,
                "reduction_pct": reduction,
                "paper_condor_mb": paper[0], "paper_c3_mb": paper[1],
                "paper_reduction_pct": paper[2],
            })
    return rows


def render_table1(rows: List[Dict]) -> str:
    table_rows = [
        [r["platform"], r["code"], r["condor_mb"], r["c3_mb"],
         r["reduction_pct"], r["paper_reduction_pct"]]
        for r in rows
    ]
    return render_table(
        f"Table 1: Condor and C3 checkpoint sizes "
        f"(MB, paper scale = measured x {SIZE_SCALE})",
        ["Platform", "Code", "Condor", "C3", "Reduction%", "paper Red.%"],
        table_rows, widths=[8, 8, 10, 10, 10, 11],
    )


# ---------------------------------------------------------------------------
# Tables 2-3 — overhead without checkpoints
# ---------------------------------------------------------------------------

def _overhead_rows(codes, machine_for, paper_table,
                   parallel: Optional[bool] = None) -> List[Dict]:
    # Every (code, scale point) is two independent simulations; farm the
    # whole grid to the process pool and assemble rows from the results.
    specs, cells = [], []
    for cfg in codes:
        paper_rows = paper_table[cfg.label]
        for point, paper in zip(cfg.points, paper_rows):
            machine = machine_for(cfg.app_name)
            specs.append((cfg, point, paper))
            cells.append(original_cell(cfg.app_name, point.sim_procs,
                                       machine, point.params))
            cells.append(c3_cell(cfg.app_name, point.sim_procs, machine,
                                 point.params, checkpoints=0))
    results = run_cells(cells, parallel=parallel)
    rows = []
    for i, (cfg, point, paper) in enumerate(specs):
        orig, c3 = results[2 * i], results[2 * i + 1]
        overhead = ((c3.virtual_seconds - orig.virtual_seconds)
                    / orig.virtual_seconds * 100.0)
        rows.append({
            "code": cfg.label,
            "paper_procs": point.paper_procs,
            "paper_nodes": point.paper_nodes,
            "sim_procs": point.sim_procs,
            "original_s": orig.virtual_seconds,
            "c3_s": c3.virtual_seconds,
            "overhead_pct": overhead,
            "paper_original_s": paper[2], "paper_c3_s": paper[3],
            "paper_overhead_pct": paper[4],
        })
    return rows


def table2_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Runtime overhead without checkpoints on the Lemieux model."""
    platform = PLATFORMS["lemieux"]
    return _overhead_rows(platform.codes, platform.machine_for,
                          paperdata.TABLE2, parallel=parallel)


def table3_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Runtime overhead without checkpoints on the Velocity 2 / CMI models."""
    platform = PLATFORMS["velocity2"]
    return _overhead_rows(platform.codes, platform.machine_for,
                          paperdata.TABLE3, parallel=parallel)


def render_overhead(title: str, rows: List[Dict]) -> str:
    table_rows = [
        [r["code"], f"{r['paper_procs']} ({r['paper_nodes']})",
         r["sim_procs"], r["original_s"], r["c3_s"], r["overhead_pct"],
         r["paper_overhead_pct"]]
        for r in rows
    ]
    return render_table(
        title,
        ["Code", "Procs(Nodes)", "sim p", "Original s", "C3 s",
         "Overhead%", "paper Ovh%"],
        table_rows, widths=[9, 12, 6, 11, 11, 10, 10],
    )


# ---------------------------------------------------------------------------
# Tables 4-5 — overhead with checkpoints (configurations #1/#2/#3)
# ---------------------------------------------------------------------------

def _checkpoint_rows(codes, machine_for, paper_table,
                     parallel: Optional[bool] = None) -> List[Dict]:
    # Two waves: configuration #1 runs give the reference times that
    # configurations #2/#3 (and the overlapped production path) need for
    # their checkpoint intervals; the cells within each wave are
    # independent and sweep concurrently.
    specs = []
    wave1 = []
    for cfg in codes:
        paper_rows = paper_table[cfg.label]
        for point, paper in zip(cfg.points, paper_rows):
            machine = machine_for(cfg.app_name)
            specs.append((cfg, point, paper, machine))
            wave1.append(c3_cell(cfg.app_name, point.sim_procs, machine,
                                 point.params, checkpoints=0))
    cfg1_results = run_cells(wave1, parallel=parallel)
    wave2 = []
    for (cfg, point, paper, machine), cfg1 in zip(specs, cfg1_results):
        common = dict(checkpoints=1, reference_time=cfg1.virtual_seconds)
        wave2.append(c3_cell(cfg.app_name, point.sim_procs, machine,
                             point.params, save_to_disk=False, **common))
        wave2.append(c3_cell(cfg.app_name, point.sim_procs, machine,
                             point.params, save_to_disk=True, **common))
        # the overlapped write-back pipeline: same checkpoint, staged to
        # the background drain device instead of blocking in-line
        wave2.append(c3_cell(cfg.app_name, point.sim_procs, machine,
                             point.params, save_to_disk=True, overlap=True,
                             **common))
    cfg23_results = run_cells(wave2, parallel=parallel)
    rows = []
    for i, ((cfg, point, paper, machine), cfg1) in enumerate(
            zip(specs, cfg1_results)):
        cfg2, cfg3, ovl = (cfg23_results[3 * i], cfg23_results[3 * i + 1],
                           cfg23_results[3 * i + 2])
        size_bytes = cfg3.checkpoint_bytes + cfg3.log_bytes
        rows.append({
            "code": cfg.label,
            "paper_procs": point.paper_procs,
            "paper_nodes": point.paper_nodes,
            "sim_procs": point.sim_procs,
            "cfg1_s": cfg1.virtual_seconds,
            "cfg2_s": cfg2.virtual_seconds,
            "cfg3_s": cfg3.virtual_seconds,
            "overlap_s": ovl.virtual_seconds,
            "size_per_proc_mb": size_bytes / 1e6,
            "cost_s": cfg3.virtual_seconds - cfg1.virtual_seconds,
            "overlap_cost_s": ovl.virtual_seconds - cfg1.virtual_seconds,
            "committed": cfg3.checkpoints_committed,
            "paper_cfg1_s": paper[2], "paper_cfg2_s": paper[3],
            "paper_cfg3_s": paper[4],
            "paper_size_per_proc_mb": paper[5], "paper_cost_s": paper[6],
        })
    return rows


def table4_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Overhead with one checkpoint on the Lemieux model."""
    platform = PLATFORMS["lemieux"]
    return _checkpoint_rows(platform.codes, platform.machine_for,
                            paperdata.TABLE4, parallel=parallel)


def table5_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Overhead with one checkpoint on the Velocity 2 / CMI models."""
    platform = PLATFORMS["velocity2"]
    return _checkpoint_rows(platform.codes, platform.machine_for,
                            paperdata.TABLE5, parallel=parallel)


def render_checkpoint(title: str, rows: List[Dict]) -> str:
    table_rows = [
        [r["code"], f"{r['paper_procs']} ({r['paper_nodes']})",
         r["sim_procs"], r["cfg1_s"], r["cfg2_s"], r["cfg3_s"],
         r.get("overlap_s"), r["size_per_proc_mb"], r["cost_s"],
         r.get("overlap_cost_s"), r["paper_cost_s"]]
        for r in rows
    ]
    return render_table(
        title,
        ["Code", "Procs(Nodes)", "sim p", "#1 s", "#2 s", "#3 s", "Ovl s",
         "Size/proc MB", "Cost s", "OvlCost s", "paper Cost"],
        table_rows, widths=[9, 12, 6, 9, 9, 9, 9, 12, 8, 9, 10],
    )


# ---------------------------------------------------------------------------
# Tables 6-7 — restart cost (uniprocessor)
# ---------------------------------------------------------------------------

def _restart_rows(machine: MachineModel, paper_table,
                  parallel: Optional[bool] = None) -> List[Dict]:
    cells = [restart_cell(app_name, machine, params)
             for app_name, label, params in RESTART_CODES]
    measured = run_cells(cells, parallel=parallel)
    rows = []
    for (app_name, label, params), m in zip(RESTART_CODES, measured):
        paper = paper_table[label]
        rows.append({
            "code": label,
            "original_s": m["original_seconds"],
            "restart_cost_s": m["restart_cost"],
            "restart_cost_pct": (m["restart_cost"] / m["original_seconds"]
                                 * 100.0),
            "restore_s": m["restore_seconds"],
            "paper_original_s": paper[0],
            "paper_restart_cost_s": paper[1],
            "paper_restart_cost_pct": paper[2],
        })
    return rows


def table6_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Restart costs on the Lemieux model."""
    return _restart_rows(RESTART_MACHINES["table6"], paperdata.TABLE6,
                         parallel=parallel)


def table7_rows(parallel: Optional[bool] = None) -> List[Dict]:
    """Restart costs on the CMI model."""
    return _restart_rows(RESTART_MACHINES["table7"], paperdata.TABLE7,
                         parallel=parallel)


def render_restart(title: str, rows: List[Dict]) -> str:
    table_rows = [
        [r["code"], r["original_s"], r["restart_cost_s"],
         r["restart_cost_pct"], r["paper_restart_cost_pct"]]
        for r in rows
    ]
    return render_table(
        title,
        ["Code", "Original s", "Restart cost s", "relative %", "paper %"],
        table_rows, widths=[9, 11, 14, 11, 9],
    )


# ---------------------------------------------------------------------------
# Recovery campaign (the Tables 6/7 claim, exercised across the whole
# scenario space instead of the two uniprocessor codes)
# ---------------------------------------------------------------------------

def campaign_rows(parallel: Optional[bool] = None,
                  scenarios=None) -> List[Dict]:
    """Run the recovery campaign and return its judged scenario rows.

    Defaults to the smoke matrix (every app kernel, one kill timing
    each); pass an explicit scenario list — e.g.
    :func:`repro.harness.campaign.full_matrix` — for the whole space.
    """
    from .campaign import run_campaign, smoke_matrix
    report = run_campaign(scenarios if scenarios is not None
                          else smoke_matrix(), parallel=parallel)
    return report.rows


def campaign_restart_rows(rows: List[Dict]) -> List[Dict]:
    """Campaign rows in the Tables 6/7 restart-cost schema.

    Each verified kill/restart scenario yields one row with the measured
    keys :func:`render_restart` consumes (``paper_*`` cells are None —
    the paper only measured the two uniprocessor machines), so campaign
    results append directly to the Table 6/7 outputs as extra
    multi-process evidence for the "restart costs are negligible" claim.
    """
    out = []
    for r in rows:
        if not r.get("passed") or not r.get("restarts"):
            continue
        golden = r["golden_seconds"]
        out.append({
            "code": r["scenario"],
            "original_s": golden,
            "restart_cost_s": r["restart_cost_seconds"],
            "restart_cost_pct": r["restart_cost_seconds"] / golden * 100.0,
            "restore_s": r["restore_seconds"],
            "paper_original_s": None,
            "paper_restart_cost_s": None,
            "paper_restart_cost_pct": None,
        })
    return out


# ---------------------------------------------------------------------------
# Ablations (design choices of Section 4.5)
# ---------------------------------------------------------------------------

def ablation_initiation(nprocs: int = 6, checkpoints: int = 3) -> Dict:
    """Any-process initiation vs the earlier distinguished initiator."""
    from ..apps import ring
    out = {}
    for name, distinguished in (("any_process", False),
                                ("distinguished", True)):
        storage = InMemoryStorage()
        config = C3Config(checkpoint_interval=2e-4,
                          max_checkpoints=checkpoints,
                          distinguished_initiator=distinguished)
        result, stats = run_c3(ring, nprocs, storage=storage, config=config,
                               app_args=())
        result.raise_errors()
        st = [s for s in stats if s]
        out[name] = {
            "virtual_seconds": result.virtual_time,
            "control_msgs": sum(s.control_msgs for s in st),
            "committed": min(s.checkpoints_committed for s in st),
        }
    return out


def ablation_logging_phases(nprocs: int = 4) -> Dict:
    """Separate NonDet/RecvOnly phases (stream reductions) vs the result-
    logging optimization — measures log volume and runtime."""
    from ..apps import cg
    out = {}
    for name, log_results in (("stream_reductions", False),
                              ("result_logging", True)):
        storage = InMemoryStorage()
        config = C3Config(checkpoint_interval=1e-4, max_checkpoints=2,
                          log_reduction_results=log_results)
        result, stats = run_c3(cg, nprocs, storage=storage, config=config)
        result.raise_errors()
        st = [s for s in stats if s]
        out[name] = {
            "virtual_seconds": result.virtual_time,
            "log_bytes": sum(s.last_log_bytes for s in st),
            "events_logged": sum(s.events_logged for s in st),
            "late_logged": sum(s.late_logged for s in st),
        }
    return out


def ablation_piggyback(nprocs: int = 4) -> Dict:
    """3-bit piggyback vs piggybacking the full epoch (Section 3.2)."""
    from ..apps import smg2000
    out = {}
    for codec in ("3bit", "full"):
        storage = InMemoryStorage()
        config = C3Config(codec=codec)
        result, stats = run_c3(smg2000, nprocs, storage=storage,
                               config=config)
        result.raise_errors()
        out[codec] = {"virtual_seconds": result.virtual_time}
    out["overhead_ratio"] = (out["full"]["virtual_seconds"]
                             / out["3bit"]["virtual_seconds"])
    return out


def ablation_blocking_vs_nonblocking(nprocs: int = 4) -> Dict:
    """C3's non-blocking protocol vs the blocking-coordinated baseline."""
    from ..apps import lu
    from ..baselines.blocking import run_blocking
    params = dict(local_nx=16, local_ny=16, niter=10, work_scale=50.0)
    app = APPS["LU"]

    def wrapped(ctx):
        return app(ctx, **params)

    base = run_original(wrapped, nprocs)
    base.raise_errors()
    interval = base.virtual_time * 0.3

    storage = InMemoryStorage()
    c3_result, _ = run_c3(wrapped, nprocs, storage=storage,
                          config=C3Config(checkpoint_interval=interval,
                                          max_checkpoints=2))
    c3_result.raise_errors()
    # the blocking baseline needs pragma-aligned triggers (see its module
    # docstring); two checkpoints over the 10-iteration run
    blk_result, blk_stats = run_blocking(wrapped, nprocs,
                                         storage=InMemoryStorage(),
                                         interval_pragmas=4)
    blk_result.raise_errors()
    return {
        "original_s": base.virtual_time,
        "c3_s": c3_result.virtual_time,
        "blocking_s": blk_result.virtual_time,
        "blocking_stall_s": max(s.barrier_stall for s in blk_stats if s),
    }
