"""Plain-text table rendering in the paper's layout."""

from __future__ import annotations

from typing import List, Optional, Sequence


def fmt(value, width: int = 9, decimals: int = 1) -> str:
    """Format a cell; None renders as the paper's unavailable marker."""
    if value is None:
        return "-*".rjust(width)
    if isinstance(value, float):
        return f"{value:.{decimals}f}".rjust(width)
    return str(value).rjust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence], widths: Optional[List[int]] = None
                 ) -> str:
    """A fixed-width table with a title rule, like the paper's tables."""
    if widths is None:
        widths = [max(len(str(h)), 9) for h in headers]
    out = [title, "=" * min(100, sum(widths) + len(widths) * 2)]
    out.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    out.append("-" * min(100, sum(widths) + len(widths) * 2))
    for row in rows:
        cells = []
        for cell, w in zip(row, widths):
            if isinstance(cell, float):
                cells.append(f"{cell:.2f}".rjust(w))
            elif cell is None:
                cells.append("-*".rjust(w))
            else:
                cells.append(str(cell).rjust(w))
        out.append("  ".join(cells))
    return "\n".join(out)


def side_by_side(label_ours: str, ours, label_paper: str, paper) -> str:
    """Render a measured value next to the paper's."""
    return f"{label_ours}={ours}  ({label_paper}={paper})"
