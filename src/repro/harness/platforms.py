"""Experiment scale configuration (platform models x process counts).

Paper mapping: this module pins the *configurations* of the paper's
Section 6 evaluation — the (platform, code, process count, problem
class) grid behind Tables 2-5 (runtime overhead and one-checkpoint
overhead on Lemieux / Velocity 2 / CMI), Table 1's checkpoint-size
codes, and the Tables 6-7 restart codes — so EXPERIMENTS.md can state
precisely which paper cell each reproduction row corresponds to.

Every overhead cell is a :class:`ScalePoint` carrying **two
fidelities**:

* ``sim`` — the downscaled reproduction (the paper's 32-1024 processes
  become 4/8/16 simulated ranks, with app parameters calibrated to keep
  the compute-to-communication ratio in the regime the paper reports).
  These remain the fast defaults for the table drivers and smoke tests.
* ``paper`` — the paper's true process count, feasible since the engine
  default moved to the cooperative rank scheduler
  (:mod:`repro.mpi.scheduler`): rank fibers cost a parked carrier and a
  small stack, not a free-running 1 MiB thread, so 256-1024-rank jobs
  are routine.  Per-rank parameters are carried over unchanged (weak
  scaling: the same local working set per rank), which is exactly the
  regime of the paper's scalability claim — overhead should stay flat
  as the process count grows.

:data:`PLATFORMS` groups the overhead codes per cluster model into
:class:`PlatformConfig` handles; the 16-256-rank scaling study in
:mod:`repro.harness.scaling` sweeps the same machine models.

Table 1's checkpoint sizes are reproduced at 1/100 of the paper's
footprint, with the platform static segments scaled by the same factor
so the *reduction percentages* are directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..apps import APPS
from ..mpi.timemodel import (
    CMI, LEMIEUX, LINUX_UNIPROC, MachineModel, SOLARIS_UNIPROC, VELOCITY2,
)

#: Table-1 footprint scale: we reproduce sizes at paper_bytes / SIZE_SCALE.
SIZE_SCALE = 100

#: recognized fidelities for :meth:`ScalePoint.procs` / ``params_for``
SCALES = ("sim", "paper")


@dataclass(frozen=True)
class ScalePoint:
    """One overhead cell, runnable downscaled (``sim``) or at the
    paper's true process count (``paper``)."""

    paper_procs: int
    paper_nodes: int
    sim_procs: int
    params: dict
    #: per-rank parameters for the paper-scale run; ``None`` reuses
    #: ``params`` unchanged (weak scaling: same local working set)
    paper_params: Optional[dict] = None

    def procs(self, scale: str = "sim") -> int:
        """Process count at the chosen fidelity."""
        _check_scale(scale)
        return self.sim_procs if scale == "sim" else self.paper_procs

    def params_for(self, scale: str = "sim") -> dict:
        """App parameters at the chosen fidelity (a fresh dict)."""
        _check_scale(scale)
        if scale == "paper" and self.paper_params is not None:
            return dict(self.paper_params)
        return dict(self.params)


def _check_scale(scale: str) -> None:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; known: {SCALES}")


@dataclass(frozen=True)
class OverheadConfig:
    """Configuration of one code in Tables 2-5."""

    app_name: str
    label: str
    points: Tuple[ScalePoint, ...]


@dataclass(frozen=True)
class PlatformConfig:
    """One evaluation cluster: machine model(s) plus its overhead codes.

    ``machine_overrides`` maps app names to a different machine model —
    the paper ran the Tables 3/5 HPL rows on CMI rather than Velocity 2.
    """

    name: str
    machine: MachineModel
    codes: Tuple[OverheadConfig, ...]
    machine_overrides: Mapping[str, MachineModel] = field(
        default_factory=dict)

    def machine_for(self, app_name: str) -> MachineModel:
        return self.machine_overrides.get(app_name, self.machine)

    def scale_points(self, scale: str = "sim"
                     ) -> Iterator[Tuple[OverheadConfig, ScalePoint, int,
                                         dict, MachineModel]]:
        """Every runnable cell of this platform at the chosen fidelity.

        Yields ``(code, point, nprocs, params, machine)`` rows;
        ``scale="paper"`` selects the paper's true process counts.
        """
        _check_scale(scale)
        for cfg in self.codes:
            machine = self.machine_for(cfg.app_name)
            for pt in cfg.points:
                yield cfg, pt, pt.procs(scale), pt.params_for(scale), machine


def _pts(app: str, triples) -> Tuple[ScalePoint, ...]:
    return tuple(ScalePoint(pp, pn, sp, params) for pp, pn, sp, params in triples)


#: Tables 2 and 4 (Lemieux).  Parameters hold per-rank work roughly
#: constant while communication grows with the rank count, reproducing the
#: mild upward overhead trend of the paper.
LEMIEUX_CODES: Tuple[OverheadConfig, ...] = (
    OverheadConfig("CG", "CG (D)", _pts("CG", [
        (64, 16, 4, dict(local_n=96, nnz_per_row=8, niter=12, work_scale=353.0)),
        (256, 64, 8, dict(local_n=48, nnz_per_row=8, niter=12, work_scale=232.0)),
        (1024, 256, 16, dict(local_n=24, nnz_per_row=8, niter=12, work_scale=1130.0)),
    ])),
    OverheadConfig("LU", "LU (D)", _pts("LU", [
        (64, 16, 4, dict(local_nx=24, local_ny=24, niter=12, work_scale=7.0)),
        (256, 64, 8, dict(local_nx=16, local_ny=16, niter=12, work_scale=19.0)),
        (1024, 256, 16, dict(local_nx=12, local_ny=12, niter=12, work_scale=23.0)),
    ])),
    OverheadConfig("SP", "SP (D)", _pts("SP", [
        (64, 16, 4, dict(local_rows=12, row_len=64, niter=12, work_scale=1.3)),
        (256, 64, 8, dict(local_rows=8, row_len=64, niter=12, work_scale=3.0)),
        (1024, 256, 16, dict(local_rows=6, row_len=64, niter=12, work_scale=5.5)),
    ])),
    OverheadConfig("SMG2000", "SMG2000", _pts("SMG2000", [
        (64, 16, 4, dict(local_n=16, levels=5, niter=4, work_scale=330.0)),
        (256, 64, 8, dict(local_n=16, levels=5, niter=4, work_scale=240.0)),
        (1024, 256, 16, dict(local_n=16, levels=5, niter=4, work_scale=200.0)),
    ])),
    OverheadConfig("HPL", "HPL", _pts("HPL", [
        (64, 16, 4, dict(n=96, block=16, trials=3, work_scale=3.1)),
        (256, 64, 8, dict(n=96, block=16, trials=3, work_scale=1.5)),
        (1024, 256, 16, dict(n=64, block=8, trials=3, work_scale=21.0)),
    ])),
)

#: Tables 3 and 5 (Velocity 2; HPL rows ran on CMI in the paper).
VELOCITY2_CODES: Tuple[OverheadConfig, ...] = (
    OverheadConfig("CG", "CG (D)", _pts("CG", [
        (64, 32, 4, dict(local_n=96, nnz_per_row=8, niter=12, work_scale=830.0)),
        (128, 64, 8, dict(local_n=48, nnz_per_row=8, niter=12, work_scale=1250.0)),
        (256, 128, 16, dict(local_n=24, nnz_per_row=8, niter=12, work_scale=2580.0)),
    ])),
    OverheadConfig("LU", "LU (D)", _pts("LU", [
        (64, 32, 4, dict(local_nx=24, local_ny=24, niter=12, work_scale=255.0)),
        (128, 64, 8, dict(local_nx=16, local_ny=16, niter=12, work_scale=200.0)),
        (256, 128, 16, dict(local_nx=12, local_ny=12, niter=12, work_scale=650.0)),
    ])),
    OverheadConfig("SP", "SP (D)", _pts("SP", [
        (64, 32, 4, dict(local_rows=12, row_len=64, niter=12, work_scale=42.0)),
        (144, 72, 8, dict(local_rows=8, row_len=64, niter=12, work_scale=123.0)),
        (256, 128, 16, dict(local_rows=6, row_len=64, niter=12, work_scale=116.0)),
    ])),
    OverheadConfig("SMG2000", "SMG2000", _pts("SMG2000", [
        (32, 16, 4, dict(local_n=16, levels=5, niter=4, work_scale=85.0)),
        (64, 32, 8, dict(local_n=16, levels=5, niter=4, work_scale=40.0)),
        (128, 64, 16, dict(local_n=16, levels=5, niter=4, work_scale=75.0)),
    ])),
    OverheadConfig("HPL", "HPL", _pts("HPL", [
        (32, 16, 4, dict(n=96, block=16, trials=3, work_scale=30.0)),
        (64, 32, 8, dict(n=96, block=16, trials=3, work_scale=140.0)),
        (128, 64, 16, dict(n=96, block=16, trials=3, work_scale=850.0)),
    ])),
)

#: The evaluation clusters as first-class handles: the Tables 2-5
#: drivers (``repro.harness.experiments``) resolve their codes and
#: per-app machines here, and the paper-scale cells come from
#: ``scale_points("paper")``.  (The 16-256-rank scaling study sweeps
#: the same machine models but with its own weak-scaling kernels; see
#: :mod:`repro.harness.scaling`.)
PLATFORMS: Dict[str, PlatformConfig] = {
    "lemieux": PlatformConfig("lemieux", LEMIEUX, LEMIEUX_CODES),
    "velocity2": PlatformConfig("velocity2", VELOCITY2, VELOCITY2_CODES,
                                machine_overrides={"HPL": CMI}),
}


def velocity2_machine_for(app_name: str) -> MachineModel:
    """Machine per Tables 3/5 row (the paper ran HPL on CMI)."""
    return PLATFORMS["velocity2"].machine_for(app_name)


#: Table 1 codes with per-app parameters sized so the C3 checkpoint lands
#: near paper_bytes / SIZE_SCALE, plus the paper's class label.
#: (app, label, params, pad_to_c3_bytes, heap_churn_blocks)
TABLE1_CODES: Tuple[Tuple[str, str, dict, int, int], ...] = (
    ("BT", "BT (A)", dict(local_rows=24, row_len=4096, niter=2), 3_063_900, 6),
    ("CG", "CG (B)", dict(local_n=12000, nnz_per_row=8, niter=2), 4_274_400, 6),
    ("EP", "EP (A)", dict(pairs_per_batch=1024, batches=2), 10_000, 2),
    ("FT", "FT (A)", dict(local_rows=16, row_len=8192, niter=2), 4_186_900, 6),
    ("IS", "IS (A)", dict(keys_per_rank=4096, niter=2), 960_000, 4),
    ("LU", "LU (A)", dict(local_nx=160, local_ny=160, niter=2), 445_400, 4),
    ("MG", "MG (B)", dict(local_n=262144, levels=4, niter=2), 4_354_800, 6),
    ("SP", "SP (A)", dict(local_rows=12, row_len=4096, niter=2), 796_300, 4),
)

#: Table-1 platforms with static segments scaled by SIZE_SCALE.
TABLE1_PLATFORMS = {
    "solaris": SOLARIS_UNIPROC.with_overrides(
        static_segment_bytes=SOLARIS_UNIPROC.static_segment_bytes // SIZE_SCALE),
    "linux": LINUX_UNIPROC.with_overrides(
        static_segment_bytes=LINUX_UNIPROC.static_segment_bytes // SIZE_SCALE),
}

#: Tables 6/7 uniprocessor codes (class A analogs) and machines.
RESTART_CODES: Tuple[Tuple[str, str, dict], ...] = (
    ("CG", "CG (A)", dict(local_n=256, nnz_per_row=8, niter=10, work_scale=16000.0)),
    ("LU", "LU (A)", dict(local_nx=64, local_ny=64, niter=10, work_scale=28000.0)),
    ("SP", "SP (A)", dict(local_rows=16, row_len=64, niter=10, work_scale=11000.0)),
    ("SMG2000", "SMG2000", dict(local_n=32, levels=5, niter=6, work_scale=2500.0)),
    ("HPL", "HPL", dict(n=96, block=16, trials=4, work_scale=9000.0)),
)

RESTART_MACHINES = {"table6": LEMIEUX, "table7": CMI}
