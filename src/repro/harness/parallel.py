"""Process-pool experiment harness.

The table drivers of :mod:`repro.harness.experiments` measure a grid of
independent *cells* — (application, platform model, process count,
configuration) combinations whose runs share no state.  This module farms
such cells out to a pool of worker processes so a table (or a whole
benchmark session) sweeps apps x configs concurrently instead of
simulating one job at a time on one core.

A cell must be *picklable*: a top-level callable plus plain-data keyword
arguments (app *names* rather than closures, :class:`MachineModel`
instances, dicts of parameters).  The runner preserves input order, so
drivers can zip results back against their row descriptions.

Worker count resolution, in priority order:

1. the ``max_workers`` argument,
2. the ``REPRO_BENCH_WORKERS`` environment variable,
3. ``os.cpu_count() - 1`` (at least 1).

``REPRO_BENCH_WORKERS=1`` (or ``parallel=False``) forces inline
execution, which keeps unit tests and debugging single-process.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["Cell", "default_workers", "run_cells"]


@dataclass(frozen=True)
class Cell:
    """One independent experiment: ``fn(**kwargs)`` in some worker."""

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: free-form identifier carried through for error reporting
    label: str = ""


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_WORKERS must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) - 1)


def _run_cell(cell: Cell) -> Any:
    try:
        return cell.fn(**cell.kwargs)
    except Exception as exc:  # re-raise with the cell identity attached
        raise RuntimeError(f"experiment cell {cell.label or cell.fn.__name__!r} "
                           f"failed: {exc}") from exc


# One shared pool per process: table drivers submit several waves per
# session, and worker startup (re-importing numpy + repro) costs far more
# than a wave, so the executor is reused across run_cells calls.  The
# interpreter joins the workers at exit (concurrent.futures' own atexit
# hook).
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is None or _pool_workers != workers:
        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def run_cells(cells: Iterable[Cell], max_workers: Optional[int] = None,
              parallel: Optional[bool] = None,
              on_result: Optional[Callable[[int, Cell, Any], None]] = None,
              ) -> List[Any]:
    """Run every cell and return their results in input order.

    ``parallel=None`` (the default) enables the pool whenever more than
    one cell and more than one worker are available; ``parallel=False``
    runs inline in this process.

    ``on_result(index, cell, result)`` (if given) is called in input
    order as each cell's result becomes available — long sweeps (the
    recovery campaign, table grids) use it for streaming progress
    reporting without waiting for the whole wave.
    """
    cells = list(cells)
    # The pool is sized by the worker budget alone (not by len(cells)):
    # consecutive calls with different cell counts must keep reusing the
    # same shared executor instead of rebuilding it per table.
    workers = max(1, max_workers if max_workers is not None
                  else default_workers())
    if parallel is None:
        parallel = len(cells) > 1 and workers > 1
    results: List[Any] = []
    if not parallel or workers == 1 or len(cells) <= 1:
        for i, c in enumerate(cells):
            result = _run_cell(c)
            if on_result is not None:
                on_result(i, c, result)
            results.append(result)
        return results
    global _pool
    try:
        for i, result in enumerate(_shared_pool(workers).map(_run_cell, cells)):
            if on_result is not None:
                on_result(i, cells[i], result)
            results.append(result)
        return results
    except BrokenProcessPool:
        _pool = None  # a hard worker crash poisons the pool; drop it
        raise
