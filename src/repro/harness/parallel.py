"""Process-pool experiment harness.

The table drivers of :mod:`repro.harness.experiments` measure a grid of
independent *cells* — (application, platform model, process count,
configuration) combinations whose runs share no state.  This module farms
such cells out to a pool of worker processes so a table (or a whole
benchmark session) sweeps apps x configs concurrently instead of
simulating one job at a time on one core.

A cell must be *picklable*: a top-level callable plus plain-data keyword
arguments (app *names* rather than closures, :class:`MachineModel`
instances, dicts of parameters).  The runner preserves input order, so
drivers can zip results back against their row descriptions.

Worker count resolution, in priority order:

1. the ``max_workers`` argument,
2. the ``REPRO_BENCH_WORKERS`` environment variable,
3. ``os.cpu_count() - 1`` (at least 1).

``REPRO_BENCH_WORKERS=1`` (or ``parallel=False``) forces inline
execution, which keeps unit tests and debugging single-process.

**Worker death** (a cell calling ``os._exit``, a SIGKILL, an
interpreter abort) poisons the whole pool: every in-flight future
raises ``BrokenProcessPool``, which used to escape the study and
discard the verdicts of unrelated cells.  ``run_cells`` now contains
the blast radius — each cell hit by a pool break is retried once on a
fresh pool, *alone*, so a crash-on-retry identifies the killer cell
precisely; a cell that breaks the pool twice is reported as a
:class:`CellError` result (carrying the harness-side traceback) in its
input-order slot, and every other cell still gets its real result.
"""

from __future__ import annotations

import os
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["Cell", "CellError", "default_workers", "run_cells"]


@dataclass(frozen=True)
class Cell:
    """One independent experiment: ``fn(**kwargs)`` in some worker."""

    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    #: free-form identifier carried through for error reporting
    label: str = ""


def default_workers() -> int:
    """Worker count from ``REPRO_BENCH_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_BENCH_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_BENCH_WORKERS must be an integer, got {env!r}"
            ) from None
    return max(1, (os.cpu_count() or 2) - 1)


@dataclass(frozen=True)
class CellError:
    """Result slot for a cell whose pool worker died.

    Returned (never raised) by :func:`run_cells` when a cell broke its
    worker process twice — once in the shared pool and once more alone
    on a fresh pool.  Studies treat it as a failed row; ``traceback``
    holds the harness-side trace of the ``BrokenProcessPool`` (a worker
    killed by ``os._exit``/SIGKILL leaves no in-worker traceback).
    """

    label: str
    error: str
    traceback: str


def _run_cell(cell: Cell) -> Any:
    try:
        return cell.fn(**cell.kwargs)
    except Exception as exc:  # re-raise with the cell identity attached
        raise RuntimeError(f"experiment cell {cell.label or cell.fn.__name__!r} "
                           f"failed: {exc}") from exc


# One shared pool per process: table drivers submit several waves per
# session, and worker startup (re-importing numpy + repro) costs far more
# than a wave, so the executor is reused across run_cells calls.  The
# interpreter joins the workers at exit (concurrent.futures' own atexit
# hook).
_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    global _pool, _pool_workers
    if _pool is None or _pool_workers != workers:
        if _pool is not None:
            _pool.shutdown(wait=False)
        _pool = ProcessPoolExecutor(max_workers=workers)
        _pool_workers = workers
    return _pool


def _drop_pool() -> None:
    """Discard a poisoned pool so the next wave gets fresh workers."""
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=False)
        _pool = None


def _submit(workers: int, cell: Cell):
    """Submit to the shared pool, replacing it if it arrives broken.

    ``submit`` raises ``BrokenProcessPool`` synchronously when a
    previous wave's killer cell (or an earlier cell of this wave,
    racing this submission) already poisoned the executor; a fresh
    pool cannot be born broken, so one rebuild suffices.
    """
    try:
        return _shared_pool(workers).submit(_run_cell, cell)
    except BrokenProcessPool:
        _drop_pool()
        return _shared_pool(workers).submit(_run_cell, cell)


def _retry_alone(cell: Cell, first: BaseException) -> Any:
    """Re-run one crash-suspect cell alone on a fresh single-cell pool.

    A ``BrokenProcessPool`` names no culprit: the killer cell and every
    innocent cell sharing its workers all fail identically.  Re-running
    the suspect in isolation disambiguates — an innocent cell succeeds
    and keeps its real result; the killer breaks its private pool again
    and is reported as a :class:`CellError`.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        return pool.submit(_run_cell, cell).result()
    except BrokenProcessPool as exc:
        return CellError(
            label=cell.label or getattr(cell.fn, "__name__", "<cell>"),
            error=(f"worker process died running cell "
                   f"{cell.label or cell.fn.__name__!r} (twice: in the "
                   f"shared pool [{first}] and alone on retry [{exc}])"),
            traceback=_traceback.format_exc(),
        )
    finally:
        pool.shutdown(wait=False)


def run_cells(cells: Iterable[Cell], max_workers: Optional[int] = None,
              parallel: Optional[bool] = None,
              on_result: Optional[Callable[[int, Cell, Any], None]] = None,
              ) -> List[Any]:
    """Run every cell and return their results in input order.

    ``parallel=None`` (the default) enables the pool whenever more than
    one cell and more than one worker are available; ``parallel=False``
    runs inline in this process.

    ``on_result(index, cell, result)`` (if given) is called in input
    order as each cell's result becomes available — long sweeps (the
    recovery campaign, table grids) use it for streaming progress
    reporting without waiting for the whole wave.

    A cell whose worker process dies (``os._exit``, SIGKILL, an
    interpreter abort) is retried once alone on a fresh pool; if it
    kills that worker too, its result slot holds a :class:`CellError`
    instead of a value, and the remaining cells are resubmitted to a
    fresh pool — a single bad cell can no longer take down the study.
    Ordinary in-cell exceptions still propagate as ``RuntimeError``
    with the cell label attached.
    """
    cells = list(cells)
    # The pool is sized by the worker budget alone (not by len(cells)):
    # consecutive calls with different cell counts must keep reusing the
    # same shared executor instead of rebuilding it per table.
    workers = max(1, max_workers if max_workers is not None
                  else default_workers())
    if parallel is None:
        parallel = len(cells) > 1 and workers > 1
    results: List[Any] = []
    if not parallel or workers == 1 or len(cells) <= 1:
        for i, c in enumerate(cells):
            result = _run_cell(c)
            if on_result is not None:
                on_result(i, c, result)
            results.append(result)
        return results
    futures = [_submit(workers, c) for c in cells]
    for i, c in enumerate(cells):
        try:
            result = futures[i].result()
        except BrokenProcessPool as exc:
            # This cell's worker (or a sibling's) died.  Drop the
            # poisoned pool, re-run the suspect alone, and resubmit the
            # not-yet-consumed cells to a fresh shared pool.
            _drop_pool()
            result = _retry_alone(c, exc)
            for j in range(i + 1, len(cells)):
                if not futures[j].done() or futures[j].exception() is not None:
                    futures[j] = _submit(workers, cells[j])
        if on_result is not None:
            on_result(i, c, result)
        results.append(result)
    return results
