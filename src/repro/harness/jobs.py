"""Shared study-job core: one farming/CLI/emission seam for the studies.

Every study harness in this package — the recovery campaign, the
scaling sweep, the overlap/sizes/WAL studies, the shard differential,
the fault fuzzer — has the same skeleton: enumerate a grid of
independent *cells*, farm them through :func:`repro.harness.parallel.
run_cells`, judge each result into a verdict row, stream per-cell
progress, roll the rows up into a summary, and emit a machine-readable
JSON artifact whose pass/fail decides the exit status.  Before this
module each study re-implemented that skeleton (and its CLI flags)
privately; now a study is a :class:`StudyJob` — a cell enumeration
plus a row schema — and everything else is shared:

* :func:`run_study` — the farming loop: cells through the pool,
  ordered ``on_result`` streaming, :class:`~repro.harness.parallel.
  CellError` results folded into failed rows, and an inline fallback
  (with the cause recorded, never hidden) if the pool itself breaks.
* ``add_*_arg`` helpers — the uniform CLI seam: every study entry
  point accepts ``--engine`` / ``--storage`` / ``--workers`` (plus
  ``--inline``, ``--json``, ``--seed``, ``-q``) with one shared
  definition, layered over the ``REPRO_BENCH_WORKERS`` /
  ``REPRO_ENGINE`` environment defaults.
* :func:`open_store` — named stable-storage flavors ("memory",
  "disk", "wal", "wal-disk") resolved to fresh-store factories, with
  tmpdir lifecycle handled here instead of in each study.
* :func:`write_artifact` / :func:`fail_exit` — JSON emission and the
  failure exit, byte-compatible with what the studies wrote before
  the port.

The service layer (:mod:`repro.service`) builds on the same seam: a
submitted job is a cell enumeration too, and its streaming progress
API rides the same ``on_result`` callback.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, Iterator, List, Optional, Sequence,
)

from .parallel import Cell, CellError, run_cells

__all__ = [
    "STORAGE_CHOICES", "StudyJob", "StudyReport",
    "add_engine_arg", "add_output_args", "add_seed_arg",
    "add_storage_arg", "add_worker_args", "fail_exit", "open_store",
    "require_known", "run_study", "split_csv", "write_artifact",
]

#: the stable-storage flavors every study CLI accepts: the per-file
#: scatter layout over in-memory or tmpdir-rooted real-file backends,
#: or the log-structured WAL engine over the same two backends
STORAGE_CHOICES = ("memory", "disk", "wal", "wal-disk")


# ---------------------------------------------------------------------------
# Storage seam
# ---------------------------------------------------------------------------

@contextmanager
def open_store(storage: Optional[str],
               prefix: str = "repro-study-",
               ) -> Iterator[Optional[Callable[[], Any]]]:
    """Resolve a named storage flavor to a fresh-store factory.

    Yields ``None`` for ``None``/``"memory"`` (the study's native
    default backend) or a zero-argument factory producing a *fresh*
    store per call — measurement pipelines open one store per phase
    (golden / clean C3 / each restart), so the factory must never hand
    the same instance out twice.  Disk-rooted flavors share one
    temporary directory, removed when the context exits.
    """
    if storage in (None, "memory"):
        yield None
        return
    if storage not in STORAGE_CHOICES:
        raise ValueError(f"unknown storage backend {storage!r} "
                         f"(known: {', '.join(STORAGE_CHOICES)})")
    if storage == "wal":
        from ..storage.stable import InMemoryStorage
        from ..storage.wal import WalStore

        yield lambda: WalStore(InMemoryStorage())
        return
    import shutil

    from ..storage.stable import DiskStorage

    root = tempfile.mkdtemp(prefix=prefix)
    seq = iter(range(1 << 30))
    try:
        if storage == "disk":
            yield lambda: DiskStorage(f"{root}/store{next(seq)}")
        else:  # wal-disk
            from ..storage.wal import WalStore

            yield lambda: WalStore(DiskStorage(f"{root}/store{next(seq)}"))
    finally:
        shutil.rmtree(root, ignore_errors=True)


# ---------------------------------------------------------------------------
# The job abstraction and the farming loop
# ---------------------------------------------------------------------------

class StudyJob:
    """One study as data: a typed cell enumeration plus a row schema.

    Subclasses enumerate their grid in :meth:`cells` (each cell a
    picklable top-level callable with plain-data kwargs) and fold each
    raw measurement into a judged row in :meth:`judge`.  Everything
    else — pool farming, ordered streaming, worker-death containment,
    the inline fallback — is :func:`run_study`'s job.
    """

    #: study name, used in progress and error reporting
    name: str = "study"

    def cells(self) -> List[Cell]:
        raise NotImplementedError

    def judge(self, index: int, cell: Cell, result: Any) -> Dict:
        """Fold one cell's raw result into a verdict row (default: as-is)."""
        return result

    def error_row(self, index: int, cell: Cell, err: CellError) -> Dict:
        """Row schema for a cell whose worker died twice (see parallel)."""
        return {"cell": cell.label, "passed": False, "failure": err.error,
                "traceback": err.traceback}


@dataclass
class StudyReport:
    """All judged rows plus the harness-level roll-up."""

    rows: List[Dict]
    wall_seconds: float = 0.0
    #: harness-level error (e.g. a pickling failure losing the whole
    #: wave) that forced the affected cells onto the inline fallback —
    #: the verdicts are still complete, but the cause must not be hidden
    harness_error: Optional[str] = None

    @property
    def failures(self) -> List[Dict]:
        return [r for r in self.rows if not r.get("passed", True)]

    @property
    def ok(self) -> bool:
        return not self.failures


def run_study(job: StudyJob, parallel: Optional[bool] = None,
              max_workers: Optional[int] = None,
              progress: Optional[Callable[[int, Dict], None]] = None,
              ) -> StudyReport:
    """Farm a job's cells through the pool and judge them in order.

    ``progress(index, row)`` receives each judged row as it completes
    (input order).  A cell whose worker process died (twice — see
    :func:`~repro.harness.parallel.run_cells`) becomes a failed row via
    :meth:`StudyJob.error_row`; a harness-level crash that loses the
    whole wave (e.g. a pickling failure) drops the unjudged cells onto
    an inline fallback and is surfaced as ``harness_error``.
    """
    cells = list(job.cells())
    rows: List[Optional[Dict]] = [None] * len(cells)

    def on_result(i: int, cell: Cell, result: Any) -> None:
        if isinstance(result, CellError):
            rows[i] = job.error_row(i, cell, result)
        else:
            rows[i] = job.judge(i, cell, result)
        if progress is not None:
            progress(i, rows[i])

    t0 = time.time()
    harness_error = None
    try:
        run_cells(cells, max_workers=max_workers, parallel=parallel,
                  on_result=on_result)
    except Exception as exc:  # noqa: BLE001 - recorded, not hidden
        harness_error = f"{type(exc).__name__}: {exc}"
        for i, row in enumerate(rows):
            if row is not None:
                continue
            try:
                result: Any = cells[i].fn(**cells[i].kwargs)
            except Exception as cell_exc:  # noqa: BLE001 - verdict row
                result = CellError(
                    label=cells[i].label,
                    error=f"{type(cell_exc).__name__}: {cell_exc}",
                    traceback=_traceback.format_exc())
            on_result(i, cells[i], result)
    return StudyReport(rows=[r for r in rows if r is not None],
                       wall_seconds=time.time() - t0,
                       harness_error=harness_error)


# ---------------------------------------------------------------------------
# The shared CLI seam
# ---------------------------------------------------------------------------

def _engine_spec(value: str) -> str:
    """argparse ``type=`` validator for ``--engine``.

    Validates the spelling against the backend registry at parse time
    (keeping the canonical registry error message), so every study CLI
    rejects an unknown engine the same way: usage + error on stderr,
    exit status 2.  The *original* spelling is returned — studies pass
    it through :func:`~repro.mpi.backends.resolve_backend` themselves,
    which also owns the ``REPRO_ENGINE`` fallback for the unset case.
    """
    from ..mpi.backends import resolve_backend
    try:
        resolve_backend(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def add_engine_arg(ap: argparse.ArgumentParser,
                   help: Optional[str] = None) -> None:  # noqa: A002
    """``--engine``: the execution backend, uniform across studies.

    Choices, spellings, and the help text all derive from the backend
    registry (:mod:`repro.mpi.backends`) — the single source of truth —
    so a newly registered backend shows up in every study CLI at once.
    """
    from ..mpi.backends import engine_help
    ap.add_argument("--engine", type=_engine_spec,
                    help=help or engine_help())


def add_storage_arg(ap: argparse.ArgumentParser,
                    default: Optional[str] = None,
                    help: Optional[str] = None) -> None:  # noqa: A002
    """``--storage``: the stable-storage flavor, uniform across studies.

    ``default=None`` keeps the study's native backend (documented per
    study) so existing invocations stay byte-identical.
    """
    ap.add_argument("--storage", choices=list(STORAGE_CHOICES),
                    default=default,
                    help=help or (
                        "stable-storage engine: scatter layout over "
                        "in-memory or tmpdir-rooted real files, or the "
                        "WAL engine over the same two backends "
                        + (f"(default {default})" if default
                           else "(default: the study's native backend)")))


def add_worker_args(ap: argparse.ArgumentParser) -> None:
    """``--workers`` / ``--inline``: the process-pool budget."""
    ap.add_argument("--workers", type=int,
                    help="process-pool size (default: REPRO_BENCH_WORKERS "
                         "or cpu_count-1)")
    ap.add_argument("--inline", action="store_true",
                    help="run cells in this process (no pool)")


def add_output_args(ap: argparse.ArgumentParser, quiet: bool = True) -> None:
    """``--json`` (and ``-q``): artifact emission and progress volume."""
    ap.add_argument("--json", metavar="PATH",
                    help="write the machine-readable report here")
    if quiet:
        ap.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-cell progress lines")


def add_seed_arg(ap: argparse.ArgumentParser, default: int = 0,
                 help: Optional[str] = None) -> None:  # noqa: A002
    ap.add_argument("--seed", type=int, default=default,
                    help=help or f"RNG seed (default {default})")


def split_csv(value: Optional[str],
              default: Sequence[str]) -> List[str]:
    """A comma-separated CLI value, or the default selection."""
    return value.split(",") if value else list(default)


def require_known(values: Sequence[str], known, what: str) -> Optional[int]:
    """The standard unknown-selection exit: returns 2 to hand back from
    ``main``, or ``None`` when every value is known."""
    unknown = [v for v in values if v not in known]
    if unknown:
        print(f"unknown {what}: {unknown}; have {sorted(known)}",
              file=sys.stderr)
        return 2
    return None


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------

def write_artifact(path: str, payload: Dict, sort_keys: bool = False,
                   trailing_newline: bool = False) -> None:
    """Write the machine-readable study report (stable JSON layout)."""
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=sort_keys, default=str)
        if trailing_newline:
            f.write("\n")
    print(f"wrote {path}")


def fail_exit(labels: Sequence[str], what: str = "cells") -> int:
    """Print the standard failure roster to stderr; returns exit 1."""
    print(f"FAILED {what}:", ", ".join(labels), file=sys.stderr)
    return 1
