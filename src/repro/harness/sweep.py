"""Checkpoint-interval sweep: overhead vs. expected recovery loss.

The paper scales its single-checkpoint costs to "once an hour" and "once
a day" (Section 6.4); this module makes the underlying trade-off an
experiment.  For a grid of checkpoint intervals it measures, on the same
application:

* the failure-free overhead of checkpointing at that cadence, and
* the *expected* work lost at a random failure (half the interval plus
  the uncommitted tail), measured by actually injecting failures.

It also evaluates Young's classic first-order optimum
``T_opt = sqrt(2 * C * MTBF)`` (checkpoint cost C) against the sweep, so
the bench can check that the measured sweet spot brackets the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.ccc import run_c3, run_fault_tolerant, run_original
from ..core.protocol import C3Config
from ..mpi.faults import FaultPlan, FaultSpec
from ..mpi.timemodel import MachineModel, TESTING
from ..storage.stable import InMemoryStorage
from .parallel import Cell, run_cells


@dataclass
class SweepPoint:
    interval: float
    failure_free_seconds: float
    overhead_pct: float
    checkpoints: int
    recovered_seconds: float     # makespan incl. one mid-run failure
    total_cost_seconds: float    # recovered - original


def _sweep_point(app: Callable, nprocs: int, interval: float,
                 fail_frac: float, machine: MachineModel,
                 base_seconds: float) -> SweepPoint:
    """One interval's measurements (a picklable process-pool cell)."""
    T = base_seconds
    config = C3Config(checkpoint_interval=interval)
    clean, stats = run_c3(app, nprocs, machine=machine,
                          storage=InMemoryStorage(), config=config)
    clean.raise_errors()
    committed = min(s.checkpoints_committed for s in stats if s)

    res = run_fault_tolerant(
        app, nprocs, machine=machine, storage=InMemoryStorage(),
        config=config,
        fault_plan=FaultPlan([FaultSpec(rank=nprocs // 2,
                                        at_time=T * fail_frac)]))
    # total virtual work: failed attempt up to the fault + recovery run
    failed_time = (res.history[0].virtual_time if res.history
                   else 0.0)
    total = failed_time + res.job.virtual_time
    return SweepPoint(
        interval=interval,
        failure_free_seconds=clean.virtual_time,
        overhead_pct=(clean.virtual_time - T) / T * 100.0,
        checkpoints=committed,
        recovered_seconds=total,
        total_cost_seconds=total - T,
    )


def sweep_intervals(app: Callable, nprocs: int,
                    intervals_frac=(0.05, 0.1, 0.2, 0.4, 0.8),
                    fail_frac: float = 0.63,
                    machine: MachineModel = TESTING,
                    parallel: Optional[bool] = None) -> Dict:
    """Measure the cost curve over checkpoint intervals.

    The per-interval measurements are independent; with ``parallel`` (or
    by default when the pool is available and ``app`` is picklable, i.e.
    a top-level function) they sweep concurrently.
    """
    base = run_original(app, nprocs, machine=machine)
    base.raise_errors()
    T = base.virtual_time

    if parallel is None:
        import pickle
        try:
            pickle.dumps(app)
        except Exception:
            parallel = False  # closures can't cross the process boundary
    cells = [Cell(_sweep_point,
                  dict(app=app, nprocs=nprocs, interval=T * frac,
                       fail_frac=fail_frac, machine=machine, base_seconds=T),
                  label=f"sweep:{frac}")
             for frac in intervals_frac]
    points: List[SweepPoint] = list(run_cells(cells, parallel=parallel))
    ckpt_cost = None
    for p in points:
        if p.checkpoints and ckpt_cost is None:
            ckpt_cost = max(0.0, (p.failure_free_seconds - T) / p.checkpoints)

    mtbf = T * fail_frac  # one failure per run at that point
    young = (math.sqrt(2.0 * ckpt_cost * mtbf)
             if ckpt_cost and ckpt_cost > 0 else None)
    return {
        "original_seconds": T,
        "checkpoint_cost_seconds": ckpt_cost,
        "young_optimum_seconds": young,
        "points": points,
    }
