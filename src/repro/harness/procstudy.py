"""Process-backend differential study: real SIGKILLs vs the oracle.

``engine="processes"`` (DESIGN.md §12) is the one backend whose faults
are not simulated: each simulated node is a real forked OS process and
a due :class:`~repro.mpi.faults.FaultSpec` is delivered as an actual
``SIGKILL``, with recovery restarting from WAL stable storage on disk.
This study is its acceptance harness:

1. **Campaign slice** — the seeded campaign smoke matrix (every app
   kernel, rotated kill timings) is run twice over ``wal-disk``
   storage: once on the cooperative oracle, once on
   ``processes[:N]``.
2. **Real-kill gate** — every fault-injected processes cell must
   report at least one *waitpid-confirmed* SIGKILL delivery
   (``real_kills >= 1``, counted by :func:`repro.harness.runner.
   measure_recovery` from :attr:`JobResult.real_kills
   <repro.mpi.engine.JobResult>` evidence) and at least one restart
   from the on-disk WAL — a slice whose kills didn't physically take a
   process is vacuous and fails.
3. **Cross-engine diff** — row pairs are compared under the shardstudy
   tolerance contract at its *real-kill grade*
   (:func:`repro.harness.shardstudy.diff_rows` with
   ``real_kill=True``): verification verdicts, restart counts, and
   fired-kill evidence exactly; everything coupled to what the crash
   physically left durable (a real kill loses the victim's staged WAL
   tail whole, the simulated engines model a torn tail) structurally.

Usage::

    python -m repro.harness.procstudy --json BENCH_processes.json
    python -m repro.harness.procstudy --apps ring,heat,CG --procs 2

Exit status 0 iff both campaign passes verified, every processes cell
passed the real-kill gate, and every row pair matched under the
contract.  ``--json`` writes the machine-readable report the CI
``process-backend`` job uploads.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

from .campaign import APP_KERNELS, run_campaign, smoke_matrix
from .jobs import (
    add_engine_arg, add_output_args, add_seed_arg, add_worker_args,
    fail_exit, require_known, split_csv, write_artifact,
)
from .shardstudy import diff_rows

__all__ = ["gate_real_kills", "main", "run_study"]


def gate_real_kills(rows: Sequence[Dict]) -> List[str]:
    """The real-kill gate: failures for cells whose faults never
    physically took a process.

    Skipped-with-reason rows are exempt (they ran nothing); every other
    fault-injected row must carry waitpid-confirmed SIGKILL evidence
    and at least one restart from stable storage.
    """
    bad = []
    for r in rows:
        if r.get("skipped") or not r.get("kills"):
            continue
        if not r.get("real_kills"):
            bad.append(f"{r['scenario']}: no waitpid-confirmed SIGKILL "
                       f"(real_kills={r.get('real_kills')!r})")
        elif not r.get("restarts"):
            bad.append(f"{r['scenario']}: killed but never restarted "
                       f"from stable storage")
    return bad


def run_study(procs: Optional[int] = None, nprocs: int = 4,
              apps: Optional[Sequence[str]] = None, seed: int = 0,
              rtol: float = 2e-2, engine: Optional[str] = None,
              parallel: Optional[bool] = False,
              max_workers: Optional[int] = None, progress=None) -> Dict:
    """The full study; returns the ``BENCH_processes.json`` payload.

    ``engine`` overrides the real-kill engine under study (default
    ``processes`` or ``processes:<procs>``); ``apps`` restricts the
    smoke slice to a kernel subset.  Both passes run over ``wal-disk``
    storage so the processes pass has stable bytes to recover from and
    the oracle pass exercises the identical store stack.
    """
    study_engine = engine or (
        f"processes:{procs}" if procs is not None else "processes")
    scenarios = smoke_matrix(nprocs=nprocs, seed=seed, storage="wal-disk")
    if apps is not None:
        keep = set(apps)
        scenarios = [s for s in scenarios if s.app in keep]

    runs = {}
    for eng in (None, study_engine):
        name = eng or "cooperative"
        if progress:
            progress(f"campaign[{name}]: {len(scenarios)} cells")
        cells = [dataclasses.replace(s, engine=eng) for s in scenarios]
        report = run_campaign(
            cells, parallel=parallel, max_workers=max_workers,
            progress=(None if progress is None else
                      lambda row, _n=name: progress(
                          f"  [{_n}] {row['scenario']}: "
                          + ("SKIP" if row.get("skipped")
                             else "PASS" if row["passed"] else "FAIL")
                          + (f" ({row.get('real_kills', 0)} real kills, "
                             f"{row.get('restarts', 0)} restarts)"
                             if not row.get("skipped") else ""))))
        runs[name] = report

    coop = runs["cooperative"]
    proc = runs[study_engine]
    mismatches: List[str] = []
    for rc, rp in zip(coop.rows, proc.rows):
        mismatches.extend(
            diff_rows(rc["scenario"], rc, rp, rtol=rtol, real_kill=True))
    kill_gate = gate_real_kills(proc.rows)

    return {
        "engine": study_engine,
        "cells": len(scenarios),
        "cpu_count": os.cpu_count(),
        "campaign_wall_seconds": {
            "cooperative": coop.wall_seconds,
            study_engine: proc.wall_seconds,
        },
        "real_kills_total": sum(r.get("real_kills", 0)
                                for r in proc.rows),
        "restarts_total": sum(r.get("restarts", 0) for r in proc.rows),
        "cooperative_ok": coop.ok,
        "processes_ok": proc.ok,
        "kill_gate_ok": not kill_gate,
        "kill_gate_failures": kill_gate,
        "cells_match": not mismatches,
        "mismatches": mismatches,
        "summary": {
            "cooperative": coop.summary(),
            study_engine: proc.summary(),
        },
        "rows": {
            "cooperative": coop.rows,
            study_engine: proc.rows,
        },
    }


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.procstudy",
        description="Real-SIGKILL differential study: the campaign smoke "
                    "slice over wal-disk on cooperative vs "
                    "engine=processes, with a waitpid-confirmed kill "
                    "gate and the real-kill-grade row diff.")
    ap.add_argument("--procs", type=int,
                    help="OS processes for the real-kill pass "
                         "(default: one per simulated node)")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per campaign cell (default 4)")
    ap.add_argument("--apps",
                    help="comma-separated kernel subset of the smoke "
                         f"slice (default: all of {', '.join(APP_KERNELS)})")
    ap.add_argument("--rtol", type=float, default=2e-2,
                    help="relative tolerance for the numeric fields of "
                         "the row diff (default 2e-2)")
    add_engine_arg(ap, help="real-kill engine under study (default: "
                            "processes, or processes:<--procs>)")
    add_seed_arg(ap)
    add_worker_args(ap)
    add_output_args(ap, quiet=True)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    apps = split_csv(args.apps, APP_KERNELS) if args.apps else None
    if apps is not None:
        code = require_known(apps, APP_KERNELS, "apps")
        if code is not None:
            return code
    farm = args.workers is not None and not args.inline
    t0 = time.time()
    report = run_study(procs=args.procs, nprocs=args.nprocs, apps=apps,
                       seed=args.seed, rtol=args.rtol, engine=args.engine,
                       parallel=True if farm else False,
                       max_workers=args.workers,
                       progress=(None if args.quiet
                                 else lambda msg: print(msg, flush=True)))
    report["wall_seconds"] = time.time() - t0

    name = report["engine"]
    print(f"campaign[{name}]: {report['cells']} cells, "
          f"{report['real_kills_total']} waitpid-confirmed SIGKILLs, "
          f"{report['restarts_total']} restarts from stable storage")
    print(f"verdicts ok: coop={report['cooperative_ok']} "
          f"processes={report['processes_ok']} | kill gate: "
          f"{report['kill_gate_ok']} | cells match: "
          f"{report['cells_match']}")
    for m in report["kill_gate_failures"][:20]:
        print(f"  KILL-GATE {m}", file=sys.stderr)
    for m in report["mismatches"][:20]:
        print(f"  MISMATCH {m}", file=sys.stderr)

    if args.json:
        write_artifact(args.json, report)

    if not (report["cooperative_ok"] and report["processes_ok"]):
        failed = (report["summary"]["cooperative"]["failed"]
                  + report["summary"][name]["failed"])
        return fail_exit(failed, "scenarios")
    if not report["kill_gate_ok"] or not report["cells_match"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
