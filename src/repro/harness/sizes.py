"""Checkpoint-size study: instrumented kernels vs the Condor baseline.

The paper's headline size claim (Table 1, echoed by the per-process
"Size/proc" column of Tables 4-5) is that application-level state saving
— source instrumented by the precompiler so each process saves only its
live data — produces checkpoints far smaller than Condor-style
system-level process images.  This driver closes that loop over the
**precompiler-instrumented** kernels (``repro.apps.instrumented``): for
each kernel it measures, per process,

* ``condor_bytes`` — the full-image accounting of
  :func:`repro.baselines.condor.measure_sizes` (static segment + the
  whole heap extent including freed allocator space + stack + the
  Condor runtime), plus the serialized payload an actual
  :class:`~repro.baselines.condor.CondorCheckpointer` snapshot writes;
* ``c3_bytes`` — live data + C3 metadata from the same accounting, plus
  the serialized ``ctx.snapshot_state()`` payload
  (:mod:`repro.statesave.serializer`);
* ``c3_committed_bytes`` — what the *protocol* actually wrote to stable
  storage for the last recovery line of a real checkpointed run
  (``statesave.Context`` → serializer → ``CheckpointWriter`` → the
  production WAL store);
* ``wal_retained_bytes`` — what that WAL engine physically holds per
  process after the run: live recovery lines plus record framing, after
  segment GC (the retention column; DESIGN.md §8);
* ``incremental_delta_bytes`` — the same run under
  ``C3Config(incremental=True)``: the dirty-page delta the
  :class:`~repro.statesave.incremental.IncrementalTracker` emits once
  the first full save exists (the Section-8 future-work row).

The CI gate reproduces the Table-1 inequality: the run **fails** (exit
status 1) if any instrumented kernel's C3 per-process checkpoint is not
strictly smaller than its Condor baseline, if a run commits no
checkpoint (a vacuous measurement), or if an incremental delta exceeds
the full save it patches.

Command line::

    python -m repro.harness.sizes                       # all 6 kernels
    python -m repro.harness.sizes --json BENCH_table1.json
    python -m repro.harness.sizes --kernels heat+ccc,EP+ccc --nprocs 2
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from ..apps import APPS
from ..apps.instrumented import INSTRUMENTED_APPS
from ..baselines.condor import CondorCheckpointer, measure_sizes
from ..core.ccc import run_c3, run_original
from ..core.protocol import C3Config
from ..mpi.timemodel import LINUX_UNIPROC, MachineModel, SOLARIS_UNIPROC
from ..statesave.serializer import dumps
from ..storage.stable import InMemoryStorage
from ..storage.wal import WalStore
from .jobs import (
    add_engine_arg, add_output_args, add_storage_arg, add_worker_args,
    fail_exit, require_known, write_artifact,
)
from .parallel import Cell, CellError, run_cells
from .platforms import SIZE_SCALE
from .report import render_table

__all__ = [
    "SIZES_PARAMS", "SIZES_PLATFORMS", "main", "measure_kernel_sizes",
    "render_sizes", "table_sizes_rows",
]

#: study parameters: larger working sets than the campaign's (so sizes
#: are dominated by application arrays) but still sub-second per run
SIZES_PARAMS: Dict[str, dict] = {
    "heat+ccc": dict(local_n=4096, niter=6),
    "ring+ccc": dict(payload=2048, niter=8),
    "CG+ccc": dict(local_n=1024, nnz_per_row=8, niter=6),
    "LU+ccc": dict(local_nx=48, local_ny=48, niter=5),
    "MG+ccc": dict(local_n=4096, levels=4, niter=4),
    "EP+ccc": dict(pairs_per_batch=2048, batches=6),
}

#: uniprocessor platforms of Table 1, static segments at 1/SIZE_SCALE
#: footprint like the Table-1 driver (the *reduction* stays comparable)
SIZES_PLATFORMS: Dict[str, MachineModel] = {
    "solaris": SOLARIS_UNIPROC.with_overrides(
        static_segment_bytes=SOLARIS_UNIPROC.static_segment_bytes
        // SIZE_SCALE),
    "linux": LINUX_UNIPROC.with_overrides(
        static_segment_bytes=LINUX_UNIPROC.static_segment_bytes
        // SIZE_SCALE),
}

#: scaled byte constants, matching the Table-1 driver's conventions
_CONDOR_RUNTIME_SCALED = 35 * 1024 // 10
_C3_METADATA_SCALED = 2048


def _accounting_probe(app, params: dict, churn_blocks: int):
    """Wrap the kernel so each rank reports its own size accounting."""

    def probe(ctx):
        app(ctx, **params)
        ctx.heap.stack_bytes = 512   # scaled-footprint stack, like Table 1
        # allocator churn: freed blocks stay inside the Condor image but
        # out of C3's live set — the crux of the Table-1 gap
        for i in range(churn_blocks):
            addr, _ = ctx.heap.alloc_array(4096 // 8, label=f"churn{i}")
            ctx.heap.free(addr)
        sizes = measure_sizes(ctx,
                              condor_runtime_bytes=_CONDOR_RUNTIME_SCALED,
                              c3_metadata_bytes=_C3_METADATA_SCALED)
        condor_payload = CondorCheckpointer(InMemoryStorage()).snapshot(ctx)
        c3_payload = len(dumps(ctx.snapshot_state()))
        return {
            "condor_bytes": sizes.condor_bytes,
            "c3_bytes": sizes.c3_bytes,
            "reduction": sizes.reduction,
            "condor_payload_bytes": condor_payload,
            "c3_payload_bytes": c3_payload,
        }

    probe.__name__ = f"{getattr(app, '__name__', 'app')}_sizes_probe"
    return probe


def measure_kernel_sizes(app_name: str, nprocs: int = 4,
                         machine: Optional[MachineModel] = None,
                         params: Optional[dict] = None,
                         interval_frac: float = 0.3,
                         churn_blocks: int = 6,
                         wall_timeout: float = 120.0,
                         engine: Optional[str] = None,
                         storage: Optional[str] = None) -> Dict:
    """All four size measurements for one instrumented kernel.

    Per-process numbers are the max over ranks (the provisioning-relevant
    worst case; at these weak-scaled sizes the ranks are near-identical).
    ``storage`` (the shared CLI seam) picks the *backend* under the
    study's WAL / incremental runs: ``"disk"`` / ``"wal-disk"`` root
    them in a fresh temporary directory of real files; the default
    (``None`` / ``"memory"`` / ``"wal"``) keeps the in-memory backend.
    """
    if app_name not in APPS:
        raise ValueError(f"unknown app {app_name!r}")
    machine = machine if machine is not None else SIZES_PLATFORMS["linux"]
    params = dict(params if params is not None
                  else SIZES_PARAMS.get(app_name, {}))
    app = APPS[app_name]
    backend_root = None
    if storage in ("disk", "wal-disk"):
        import tempfile

        backend_root = tempfile.mkdtemp(prefix="repro-sizes-")

    def backend(tag: str):
        if backend_root is None:
            return InMemoryStorage()
        from ..storage.stable import DiskStorage

        return DiskStorage(f"{backend_root}/{tag}")

    # 1. original-mode accounting run (golden time anchors the interval)
    probe = _accounting_probe(app, params, churn_blocks)
    base = run_original(probe, nprocs, machine=machine,
                        wall_timeout=wall_timeout, engine=engine)
    base.raise_errors()
    # one rank's whole accounting (the largest C3 footprint), so condor,
    # c3 and the reduction are mutually consistent — mixing per-key
    # maxima across ranks would report a row no real process produced
    acct = max(base.returns, key=lambda r: r["c3_bytes"])

    def c3_app(ctx):
        return app(ctx, **params)

    # 2. real protocol run through the production WAL engine: what the
    #    last recovery line wrote per process, plus what the log-structured
    #    store physically retains after segment GC (record framing +
    #    not-yet-compacted garbage included)
    config = C3Config(checkpoint_interval=base.virtual_time * interval_frac)
    wal_store = WalStore(backend("wal"))
    full_run, full_stats = run_c3(c3_app, nprocs, machine=machine,
                                  storage=wal_store, config=config,
                                  wall_timeout=wall_timeout, engine=engine)
    full_run.raise_errors()
    fst = [s for s in full_stats if s is not None]
    committed = min((s.checkpoints_committed for s in fst), default=0)
    # last_committed_bytes: what actually reached stable storage — a line
    # that was started but never committed must not be reported (or gated)
    c3_committed = max((s.last_committed_bytes for s in fst), default=0)
    wal_retained = wal_store.storage_bytes() // nprocs

    # 3. the same run with incremental checkpointing: the last save is a
    #    dirty-page delta against the previous line
    inc_config = C3Config(checkpoint_interval=base.virtual_time
                          * interval_frac,
                          incremental=True, incremental_full_interval=64)
    inc_run, inc_stats = run_c3(c3_app, nprocs, machine=machine,
                                storage=backend("inc"), config=inc_config,
                                wall_timeout=wall_timeout, engine=engine)
    inc_run.raise_errors()
    if backend_root is not None:
        import shutil

        shutil.rmtree(backend_root, ignore_errors=True)
    ist = [s for s in inc_stats if s is not None]
    inc_committed = min((s.checkpoints_committed for s in ist), default=0)
    inc_delta = max((s.last_committed_bytes for s in ist), default=0)

    row = {
        "kernel": app_name,
        "nprocs": nprocs,
        "platform": machine.name,
        "params": params,
        "golden_seconds": base.virtual_time,
        "checkpoints_committed": committed,
        "condor_bytes": acct["condor_bytes"],
        "c3_bytes": acct["c3_bytes"],
        "condor_payload_bytes": acct["condor_payload_bytes"],
        "c3_payload_bytes": acct["c3_payload_bytes"],
        "c3_committed_bytes": c3_committed,
        #: per-process bytes the WAL engine holds on its backend after
        #: segment GC — live lines plus framing, the retention column
        "wal_retained_bytes": wal_retained,
        "incremental_delta_bytes": (inc_delta if inc_committed >= 2
                                    else None),
        "reduction_pct": acct["reduction"] * 100.0,
    }
    if storage is not None:
        row["storage"] = storage
    row["failure"] = _judge(row)
    row["passed"] = row["failure"] is None
    return row


def _judge(row: Dict) -> Optional[str]:
    """The Table-1 gate for one kernel row (None = pass)."""
    if row["checkpoints_committed"] < 1:
        return "no checkpoint committed (vacuous measurement)"
    if row["c3_bytes"] >= row["condor_bytes"]:
        return (f"C3 checkpoint not smaller than Condor image "
                f"({row['c3_bytes']} >= {row['condor_bytes']} bytes)")
    if row["c3_payload_bytes"] >= row["condor_payload_bytes"]:
        return (f"serialized C3 payload not smaller than the Condor "
                f"image payload ({row['c3_payload_bytes']} >= "
                f"{row['condor_payload_bytes']} bytes)")
    delta = row["incremental_delta_bytes"]
    # A fully-dirty workload's delta legitimately carries per-page index
    # framing on top of the payload; anything beyond that small allowance
    # means the tracker is resending clean pages.
    if delta is not None and delta > row["c3_committed_bytes"] * 1.10:
        return (f"incremental delta exceeds the full save it patches "
                f"({delta} > 1.10 * {row['c3_committed_bytes']} bytes)")
    return None


#: metric keys nulled out in the row of a cell whose worker died
_SIZES_METRICS = ("params", "golden_seconds", "checkpoints_committed",
                  "condor_bytes", "c3_bytes", "condor_payload_bytes",
                  "c3_payload_bytes", "c3_committed_bytes",
                  "wal_retained_bytes", "incremental_delta_bytes",
                  "reduction_pct")


def sizes_cells(names: Sequence[str], nprocs: int = 4,
                platform: str = "linux", engine: Optional[str] = None,
                storage: Optional[str] = None) -> List[Cell]:
    """One farmable cell per instrumented kernel."""
    machine = SIZES_PLATFORMS[platform]
    extra = {} if storage is None else {"storage": storage}
    return [Cell(measure_kernel_sizes,
                 dict(app_name=name, nprocs=nprocs, machine=machine,
                      engine=engine, **extra),
                 label=f"sizes:{name}")
            for name in names]


def table_sizes_rows(kernels: Optional[Sequence[str]] = None,
                     nprocs: int = 4, platform: str = "linux",
                     engine: Optional[str] = None,
                     parallel: Optional[bool] = None,
                     max_workers: Optional[int] = None,
                     storage: Optional[str] = None,
                     on_row: Optional[callable] = None) -> List[Dict]:
    """One gate-judged row per instrumented kernel (EXPERIMENTS.md feed)."""
    names = list(kernels) if kernels else sorted(INSTRUMENTED_APPS)
    cells = sizes_cells(names, nprocs=nprocs, platform=platform,
                        engine=engine, storage=storage)
    rows: List[Dict] = []

    def on_result(_i: int, cell: Cell, result) -> None:
        if isinstance(result, CellError):
            err = result
            result = dict.fromkeys(_SIZES_METRICS)
            result.update(kernel=cell.kwargs["app_name"], nprocs=nprocs,
                          platform=cell.kwargs["machine"].name,
                          failure=err.error, passed=False)
        rows.append(result)
        if on_row is not None:
            on_row(result)

    run_cells(cells, parallel=parallel, max_workers=max_workers,
              on_result=on_result)
    return rows


def _kb(value) -> Optional[float]:
    return None if value is None else value / 1e3


def render_sizes(rows: Sequence[Dict]) -> str:
    """Paper-layout text table (sizes in KB at the scaled footprint)."""
    table_rows = []
    for r in rows:
        table_rows.append([
            r["kernel"], "PASS" if r["passed"] else "FAIL",
            _kb(r["condor_bytes"]), _kb(r["c3_bytes"]),
            r["reduction_pct"],
            _kb(r["c3_committed_bytes"]),
            _kb(r.get("wal_retained_bytes", 0)),
            _kb(r["incremental_delta_bytes"]),
            r["checkpoints_committed"],
        ])
    return render_table(
        "Checkpoint sizes per process: Condor image vs C3 (instrumented "
        "kernels, scaled footprint)",
        ["Kernel", "Gate", "Condor KB", "C3 KB", "Red.%", "Committed KB",
         "WAL KB", "Delta KB", "Lines"],
        table_rows, widths=[10, 5, 11, 9, 7, 12, 8, 9, 6],
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.sizes",
        description="Per-process checkpoint sizes of the precompiler-"
                    "instrumented kernels vs the Condor system-level "
                    "baseline and incremental deltas (Tables 1/4); exits "
                    "non-zero on any size inversion.")
    ap.add_argument("--kernels",
                    help="comma-separated instrumented kernels "
                         f"(default: {', '.join(sorted(INSTRUMENTED_APPS))})")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="simulated ranks per run (default 4)")
    ap.add_argument("--platform", choices=sorted(SIZES_PLATFORMS),
                    default="linux",
                    help="Table-1 uniprocessor model (default linux)")
    add_engine_arg(ap)
    add_storage_arg(ap)
    add_worker_args(ap)
    add_output_args(ap)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    kernels = (args.kernels.split(",") if args.kernels
               else sorted(INSTRUMENTED_APPS))
    rc = require_known(kernels, APPS, "kernels")
    if rc:
        return rc
    done = [0]

    def show_row(row: Dict) -> None:
        done[0] += 1
        if args.quiet:
            return
        verdict = "PASS" if row["passed"] else f"FAIL ({row['failure']})"
        sizes = ("" if row["condor_bytes"] is None else
                 f"condor={row['condor_bytes']} c3={row['c3_bytes']} "
                 f"({row['reduction_pct']:.1f}% smaller)")
        print(f"[{done[0]}/{len(kernels)}] {verdict} {row['kernel']}: "
              f"{sizes}", flush=True)

    t0 = time.time()
    rows = table_sizes_rows(kernels, nprocs=args.nprocs,
                            platform=args.platform, engine=args.engine,
                            storage=args.storage,
                            parallel=False if args.inline else None,
                            max_workers=args.workers, on_row=show_row)
    wall = time.time() - t0
    print()
    print(render_sizes(rows))
    failures = [r["kernel"] for r in rows if not r["passed"]]
    summary = {
        "kernels": len(rows),
        "passed": len(rows) - len(failures),
        "failed": failures,
        "platform": args.platform,
        "nprocs": args.nprocs,
        "wall_seconds": wall,
    }
    print(f"\n{summary['passed']}/{summary['kernels']} kernels within the "
          f"Table-1 inequality ({wall:.1f}s wall)")
    if args.json:
        write_artifact(args.json, {"summary": summary, "rows": rows})
    if failures:
        return fail_exit(failures, what="kernels")
    return 0


if __name__ == "__main__":
    sys.exit(main())
