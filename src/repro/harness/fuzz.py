"""Coverage-guided fault fuzzer.

The recovery campaign (:mod:`repro.harness.campaign`) replays a fixed
matrix of kill timings; this module *searches* the fault space instead.
A :class:`FuzzSchedule` is one attack: an app kernel, a platform, a
storage engine, a set of fail-stop kills drawn from the full
:class:`~repro.mpi.faults.FaultSpec` vocabulary (including correlated
node-wide kills and staggered multi-kill plans), and a set of storage
faults (:class:`~repro.storage.faulty.StorageFault`) injected behind the
storage seam — torn writes, short appends, bit-rot, ENOSPC, stalled
syncs.  Every schedule is plain JSON, replays deterministically, and is
judged by the campaign's own criterion: the job must recover through
:func:`~repro.core.ccc.resume_from_manifest` and finish bitwise-equal to
the golden run.

Generation is steered AFL-style by *protocol-state coverage*
(:mod:`repro.coverage`): fault windows actually hit, message classes
matched by the delivery classifier, commit/fallback/GC/replay/truncation
paths taken, storage faults actually injected.  A schedule that lights
up a new coverage point is kept and mutated; one that fails is
delta-minimized (greedy fault dropping, then field shrinking) and
serialized into the regression corpus that ``tests/fuzz`` replays
forever.

``--smoke`` is the CI gate: the deterministic seed schedules (one per
campaign kill-timing class, one per storage-fault class, plus the
windows the campaign matrix never crosses) must together reach **100 %
fault-window coverage** with **zero verification failures**, in about a
minute.

Usage::

    python -m repro.harness.fuzz --smoke --json FUZZ_smoke.json
    python -m repro.harness.fuzz --schedules 500 --seed 7 --corpus out/
    python -m repro.harness.fuzz --replay tests/fuzz/corpus/<repro>.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import coverage
from ..core.ccc import resume_from_manifest, run_c3, run_original
from ..core.protocol import C3Config
from ..mpi.faults import TRIGGER_FIELDS, FaultPlan, FaultSpec
from ..mpi.timemodel import MACHINES, TESTING
from ..storage.faulty import (STORAGE_FAULT_KINDS, FaultyStorage, FaultyStore,
                              StorageFault)
from ..storage.stable import DiskStorage, InMemoryStorage
from ..storage.store import ScatterStore, as_store
from ..storage.wal import WalStore
from .campaign import CAMPAIGN_PARAMS, COLLECTIVE_APPS
from .jobs import (
    STORAGE_CHOICES, add_engine_arg, add_output_args, add_seed_arg,
    add_storage_arg, add_worker_args, write_artifact,
)
from .parallel import Cell, CellError, run_cells
from .runner import _resolve_kill, _returns_equal

#: JSON schedule format version (bump on incompatible change)
FORMAT = 1

#: platforms the fuzzer draws from: the campaign's plus a 2-ranks-per-node
#: testing variant so node-wide correlated kills exist at testing speed
FUZZ_MACHINES = dict(MACHINES)
FUZZ_MACHINES["testing-x2"] = replace(TESTING, name="testing-x2",
                                      procs_per_node=2)

#: fast kernels the generator draws from (CG/MG cover the collectives)
FUZZ_APPS: Tuple[str, ...] = ("ring", "heat", "CG", "MG")

#: the smoke gate: every fault window and every storage-fault class
REQUIRED_WINDOWS = frozenset(f"window:{k}" for k in TRIGGER_FIELDS)
REQUIRED_STORAGE = frozenset(f"storage:{k}" for k in STORAGE_FAULT_KINDS)
REQUIRED_COVERAGE = REQUIRED_WINDOWS | REQUIRED_STORAGE

#: fault features only the WAL engine exposes
_WAL_ONLY_KINDS = frozenset({"short_append", "stall_sync"})


# ---------------------------------------------------------------------------
# Schedule model + JSON codec
# ---------------------------------------------------------------------------

@dataclass
class FuzzSchedule:
    """One fuzz attack, as plain data (JSON round-trippable)."""

    label: str
    app: str
    nprocs: int
    platform: str = "testing"
    #: stable-storage flavor (:data:`repro.harness.jobs.STORAGE_CHOICES`):
    #: "memory"/"disk" = scatter layout, "wal"/"wal-disk" = log-structured
    #: engine, each over an in-memory or tmpdir-rooted real-file backend
    #: wrapped by :class:`FaultyStorage`
    storage: str = "memory"
    interval_frac: float = 0.2
    seed: int = 0
    #: fail-stop kills: FaultSpec dicts; ``frac`` resolves against the
    #: golden runtime into ``at_time`` (see runner._resolve_kill)
    kills: List[dict] = field(default_factory=list)
    #: StorageFault dicts (see repro.storage.faulty)
    storage_faults: List[dict] = field(default_factory=list)
    #: app parameters; defaults to the campaign scale for the app
    params: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.app not in CAMPAIGN_PARAMS:
            raise ValueError(f"unknown app {self.app!r}")
        if self.platform not in FUZZ_MACHINES:
            raise ValueError(f"unknown platform {self.platform!r}")
        if self.storage not in STORAGE_CHOICES:
            raise ValueError(f"storage must be one of "
                             f"{', '.join(STORAGE_CHOICES)}, "
                             f"not {self.storage!r}")
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if not (0.0 < self.interval_frac <= 1.0):
            raise ValueError("interval_frac must be in (0, 1]")
        if self.params is None:
            self.params = dict(CAMPAIGN_PARAMS[self.app])
        for kill in self.kills:
            _validate_kill(kill, self.nprocs)
        for sf in self.storage_faults:
            StorageFault.from_dict(sf)   # raises on junk

    def fault_count(self) -> int:
        return len(self.kills) + len(self.storage_faults)

    def deterministic(self) -> bool:
        """Probabilistic kills make the outcome seed-dependent only; the
        *verdict* of a completed run is still deterministic, but a
        livelock (restart budget exhausted) is inconclusive for these."""
        return not any(k.get("probability", 0) > 0 for k in self.kills)

    def needs_wal(self) -> bool:
        return (any(k.get("at_group_commit") is not None for k in self.kills)
                or any(sf["kind"] in _WAL_ONLY_KINDS
                       for sf in self.storage_faults))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT,
            "label": self.label,
            "app": self.app,
            "nprocs": self.nprocs,
            "platform": self.platform,
            "storage": self.storage,
            "interval_frac": self.interval_frac,
            "seed": self.seed,
            "kills": [dict(k) for k in self.kills],
            "storage_faults": [dict(sf) for sf in self.storage_faults],
            "params": dict(self.params or {}),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzSchedule":
        data = dict(data)
        fmt = data.pop("format", FORMAT)
        if fmt != FORMAT:
            raise ValueError(f"unsupported schedule format {fmt!r} "
                             f"(this build reads format {FORMAT})")
        allowed = {f.name for f in fields(cls)}
        bad = sorted(set(data) - allowed)
        if bad:
            raise ValueError(f"unknown FuzzSchedule fields: {bad}")
        return cls(**data)

    def digest(self) -> str:
        """Stable content digest — corpus file names and dedup."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=6).hexdigest()


def _validate_kill(kill: dict, nprocs: int) -> None:
    """A kill dict must be a FaultSpec dict, plus the ``frac`` sugar."""
    probe = dict(kill)
    frac = probe.pop("frac", None)
    if frac is not None:
        if not (0.0 < frac <= 1.0):
            raise ValueError(f"frac must be in (0, 1], not {frac!r}")
        if probe.get("at_time") is None:
            probe["at_time"] = 1.0   # placeholder; resolved per run
    spec = FaultSpec.from_dict(probe)
    if not (0 <= spec.rank < nprocs):
        raise ValueError(f"kill rank {spec.rank} out of range for "
                         f"nprocs={nprocs}")


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

#: golden-run cache: (app, platform, nprocs, params) -> (returns, seconds)
GoldenCache = Dict[tuple, Tuple[list, float]]


def _golden(sched: FuzzSchedule, cache: Optional[GoldenCache],
            wall_timeout: float,
            engine: Optional[str] = None) -> Tuple[list, float]:
    params = sched.params or {}
    key = (sched.app, sched.platform, sched.nprocs,
           tuple(sorted(params.items())), engine)
    if cache is not None and key in cache:
        return cache[key]
    from .runner import _with_params
    result = run_original(_with_params(sched.app, params), sched.nprocs,
                          machine=FUZZ_MACHINES[sched.platform],
                          wall_timeout=wall_timeout, engine=engine)
    result.raise_errors()
    value = (result.returns, result.virtual_time)
    if cache is not None:
        cache[key] = value
    return value


class _Livelock(Exception):
    """Restart budget exhausted (the job keeps dying)."""


def run_schedule(sched: FuzzSchedule, cache: Optional[GoldenCache] = None,
                 max_restarts: int = 8, wall_timeout: float = 120.0,
                 engine: Optional[str] = None) -> Dict[str, Any]:
    """Execute one schedule: golden run, faulty run + restart loop, verify.

    Returns a plain-data record.  ``verdict`` is one of:

    * ``"pass"`` — the job recovered and finished bitwise-equal to golden;
    * ``"fail"`` — a verification mismatch, an unhandled exception
      escaping the runtime, or a deterministic schedule that exhausted
      its restart budget (``failure_class`` tags which);
    * ``"inconclusive"`` — a *probabilistic* schedule exhausted the
      restart budget (the storm may simply keep killing; not a bug).

    All coverage observed during the faulty phase is in ``coverage``,
    including ``window:*`` points derived from the fired fault specs and
    ``storage:*`` points from the injected storage faults.
    """
    from .runner import _with_params
    machine = FUZZ_MACHINES[sched.platform]
    params = sched.params or {}
    app = _with_params(sched.app, params)

    golden_returns, golden_s = _golden(sched, cache, wall_timeout,
                                       engine=engine)
    config = C3Config(checkpoint_interval=golden_s * sched.interval_frac)
    plan = FaultPlan([_resolve_kill(k, golden_s) for k in sched.kills],
                     seed=sched.seed)
    tmp_root: Optional[str] = None
    if sched.storage in ("disk", "wal-disk"):
        tmp_root = tempfile.mkdtemp(prefix="repro-fuzz-")
        base_storage: Any = DiskStorage(f"{tmp_root}/store")
    else:
        base_storage = InMemoryStorage()
    backend = FaultyStorage(
        base_storage,
        [StorageFault.from_dict(sf) for sf in sched.storage_faults])
    inner_store = (WalStore(backend)
                   if sched.storage in ("wal", "wal-disk")
                   else ScatterStore(backend))
    storage = FaultyStore(inner_store, backend)

    cmap = coverage.CoverageMap()
    previous = coverage.install(cmap)
    failure: Optional[str] = None
    failure_class: Optional[str] = None
    verified: Optional[bool] = None
    restarts = 0
    committed = 0
    lines_retained = 0
    stats: list = []
    try:
        try:
            result, stats = run_c3(app, sched.nprocs, machine=machine,
                                   storage=storage, config=config,
                                   fault_plan=plan,
                                   wall_timeout=wall_timeout,
                                   engine=engine)
            result.raise_errors()
            while result.failure is not None:
                restarts += 1
                if restarts > max_restarts:
                    raise _Livelock(result.failure)
                result, stats = resume_from_manifest(
                    app, sched.nprocs, storage, machine=machine,
                    config=config, fault_plan=plan,
                    wall_timeout=wall_timeout, require_line=False,
                    engine=engine)
                result.raise_errors()
            verified = _returns_equal(result.returns, golden_returns)
            if not verified:
                failure = "recovered result differs from golden run"
                failure_class = "mismatch"
            # Store queries crash-test the recovery index too: a corrupt
            # marker that escapes validation surfaces right here.
            store = as_store(storage)
            committed = store.last_committed_global(
                sched.nprocs, validate=True) or 0
            lines_retained = max(
                (len(v) for v in store.lines_on_storage().values()),
                default=0)
        except _Livelock as exc:
            failure = (f"still failing after {max_restarts} restarts "
                       f"(last: {exc})")
            failure_class = ("livelock" if sched.deterministic()
                             else "inconclusive")
        except Exception as exc:   # noqa: BLE001 - the fuzzer's whole job
            failure = f"{type(exc).__name__}: {exc}"
            failure_class = f"exception:{type(exc).__name__}"
    finally:
        coverage.install(previous)
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)

    points: Set[str] = set(cmap.points())
    for spec in plan.fired:
        points.add(f"window:{spec.kind()}")
    if failure_class == "inconclusive":
        verdict = "inconclusive"
    elif failure_class is not None:
        verdict = "fail"
    else:
        verdict = "pass"
    st = [s for s in stats if s is not None]
    return {
        "label": sched.label,
        "schedule": sched.to_dict(),
        "verdict": verdict,
        "failure": failure,
        "failure_class": failure_class,
        "verified": verified,
        "restarts": restarts,
        "golden_seconds": golden_s,
        "coverage": sorted(points),
        "fired": [s.describe() for s in plan.fired],
        "injected": {k: n for k, n in backend.injected.items() if n},
        "checkpoints_committed": committed,
        "lines_retained": lines_retained,
        "replayed_from_log": sum(s.replayed_from_log for s in st),
        "suppressed_sends": sum(s.suppressed_sends for s in st),
    }


# ---------------------------------------------------------------------------
# Seed schedules: the deterministic coverage floor
# ---------------------------------------------------------------------------

def seed_schedules(nprocs: int = 4) -> List[FuzzSchedule]:
    """One schedule per campaign kill-timing class, one per storage-fault
    class, plus the windows the campaign never crosses (``after_ops``,
    node-wide correlated kills).  Together they hit every point of
    :data:`REQUIRED_COVERAGE` — the ``--smoke`` floor."""
    n = nprocs
    s = FuzzSchedule
    return [
        # -- campaign kill-timing classes, at fuzz scale ---------------------
        s("early", "ring", n, kills=[{"rank": n - 1, "frac": 0.15}]),
        s("mid_run", "heat", n, kills=[{"rank": 1 % n, "frac": 0.55}]),
        s("late", "CG", n, kills=[{"rank": 0, "frac": 0.85}]),
        s("double", "ring", n, kills=[{"rank": 1 % n, "frac": 0.35},
                                      {"rank": n - 1, "frac": 0.70}]),
        s("epoch_boundary", "heat", n, interval_frac=0.05,
          kills=[{"rank": 1 % n, "at_epoch": 1}]),
        s("mid_collective", "CG", n,
          kills=[{"rank": n - 1, "in_collective": 4}]),
        s("mid_drain", "heat", n, interval_frac=0.05,
          kills=[{"rank": 1 % n, "in_drain": 1}]),
        s("mid_commit", "ring", n, interval_frac=0.05,
          kills=[{"rank": 0, "at_commit": 1}]),
        s("mid_group_commit", "heat", n, interval_frac=0.05, storage="wal",
          kills=[{"rank": 1 % n, "at_group_commit": 1}]),
        s("torn_record", "ring", n, interval_frac=0.05, storage="wal",
          kills=[{"rank": n - 1, "at_group_commit": 1}]),
        s("storm", "ring", n, seed=3,
          kills=[{"rank": r, "probability": 0.02} for r in range(n)]),
        # -- windows the campaign matrix never crosses -----------------------
        s("after_ops", "heat", n, kills=[{"rank": 2 % n, "after_ops": 7}]),
        s("node_wide", "heat", n, platform="testing-x2",
          kills=[{"rank": 2 % n, "frac": 0.50},
                 {"rank": 3 % n, "frac": 0.55}]),
        # -- one per storage-fault class (paired with a late kill so the
        #    recovery path must reject the damaged line) ---------------------
        s("sf_torn_marker", "ring", n, interval_frac=0.1,
          storage_faults=[{"kind": "torn_write", "after_ops": 6,
                           "path_prefix": "ckpt/"}],
          kills=[{"rank": 0, "frac": 0.8}]),
        s("sf_bit_rot", "heat", n, interval_frac=0.1,
          storage_faults=[{"kind": "bit_rot", "after_ops": 5,
                           "path_prefix": "ckpt/", "bit": 123}],
          kills=[{"rank": 1 % n, "frac": 0.8}]),
        s("sf_enospc", "CG", n, interval_frac=0.1,
          storage_faults=[{"kind": "enospc", "after_ops": 3, "count": 8,
                           "path_prefix": "ckpt/"}]),
        s("sf_short_append", "heat", n, interval_frac=0.1, storage="wal",
          storage_faults=[{"kind": "short_append", "after_ops": 4,
                           "path_prefix": "wal/"}],
          kills=[{"rank": 1 % n, "frac": 0.7}]),
        s("sf_stall_sync", "ring", n, interval_frac=0.1, storage="wal",
          storage_faults=[{"kind": "stall_sync", "after_ops": 2,
                           "count": 3, "path_prefix": "wal/"}],
          kills=[{"rank": 0, "frac": 0.75}]),
    ]


# ---------------------------------------------------------------------------
# Generator + mutator
# ---------------------------------------------------------------------------

def _random_kill(rng: random.Random, sched_app: str, nprocs: int) -> dict:
    rank = rng.randrange(nprocs)
    window = rng.choice(TRIGGER_FIELDS)
    if window == "in_collective" and sched_app not in COLLECTIVE_APPS:
        window = "frac"
    builders = {
        "after_ops": lambda: {"after_ops": rng.randint(3, 200)},
        "at_time": lambda: {"frac": round(rng.uniform(0.1, 0.9), 3)},
        "probability": lambda: {"probability":
                                round(rng.uniform(0.002, 0.02), 4)},
        "at_epoch": lambda: {"at_epoch": rng.randint(1, 3)},
        "in_collective": lambda: {"in_collective": rng.randint(1, 6)},
        "in_drain": lambda: {"in_drain": rng.randint(1, 2)},
        "at_commit": lambda: {"at_commit": rng.randint(1, 2)},
        "at_group_commit": lambda: {"at_group_commit": rng.randint(1, 2)},
        "frac": lambda: {"frac": round(rng.uniform(0.1, 0.9), 3)},
    }
    kill = {"rank": rank}
    kill.update(builders[window]())
    return kill


def _random_storage_fault(rng: random.Random) -> dict:
    kind = rng.choice(STORAGE_FAULT_KINDS)
    sf: Dict[str, Any] = {"kind": kind,
                          "after_ops": rng.randint(1, 30)}
    prefix = rng.choice(("", "ckpt/", "wal/"))
    if prefix:
        sf["path_prefix"] = prefix
    if kind in ("torn_write", "short_append") and rng.random() < 0.5:
        sf["keep_fraction"] = round(rng.uniform(0.0, 0.9), 3)
    if kind == "bit_rot":
        sf["bit"] = rng.randrange(1 << 14)
    if kind in ("enospc", "stall_sync") and rng.random() < 0.5:
        sf["count"] = rng.randint(1, 4)
    return sf


def _normalize(sched: FuzzSchedule) -> FuzzSchedule:
    """Repair generator/mutator artifacts: clamp ranks, force the WAL
    engine when a WAL-only fault feature is present, ensure >= 1 fault."""
    kills = [dict(k) for k in sched.kills]
    for kill in kills:
        kill["rank"] = kill.get("rank", 0) % sched.nprocs
    storage = sched.storage
    if sched.needs_wal() and storage in ("memory", "disk"):
        storage = "wal" if storage == "memory" else "wal-disk"
    return replace(sched, kills=kills, storage=storage,
                   params=dict(sched.params or {}))


def random_schedule(rng: random.Random, index: int) -> FuzzSchedule:
    app = rng.choice(FUZZ_APPS)
    nprocs = rng.randint(2, 5)
    platform = rng.choice(("testing", "testing", "testing-x2"))
    sched = FuzzSchedule(
        label=f"r{index:04d}",
        app=app,
        nprocs=nprocs,
        platform=platform,
        storage=rng.choice(("memory", "wal")),
        interval_frac=rng.choice((0.05, 0.1, 0.2, 0.3)),
        seed=rng.randrange(1 << 16),
        kills=[_random_kill(rng, app, nprocs)
               for _ in range(rng.randint(1, 3))],
        storage_faults=[_random_storage_fault(rng)
                        for _ in range(rng.randint(0, 2))],
    )
    # node-wide correlated kill: stagger a whole node's ranks
    if platform == "testing-x2" and rng.random() < 0.4:
        node = rng.randrange(max(1, nprocs // 2))
        base = round(rng.uniform(0.2, 0.7), 3)
        sched.kills = [{"rank": r, "frac": round(base + 0.05 * i, 3)}
                       for i, r in enumerate(range(node * 2, nprocs))
                       if r // 2 == node]
    return _normalize(sched)


def mutate(rng: random.Random, parent: FuzzSchedule,
           index: int) -> FuzzSchedule:
    """One random structural or numeric edit of ``parent``."""
    sched = FuzzSchedule.from_dict(parent.to_dict())
    sched.label = f"m{index:04d}"
    ops = ["add_kill", "tweak", "reseed", "interval"]
    if len(sched.kills) > 1 or (sched.kills and sched.storage_faults):
        ops.append("drop_kill")
    if len(sched.storage_faults) < 2:
        ops.append("add_sf")
    if sched.storage_faults:
        ops.append("drop_sf")
    if not sched.needs_wal():
        ops.append("flip_storage")
    op = rng.choice(ops)
    if op == "add_kill":
        sched.kills.append(_random_kill(rng, sched.app, sched.nprocs))
    elif op == "drop_kill" and sched.kills:
        sched.kills.pop(rng.randrange(len(sched.kills)))
    elif op == "add_sf":
        sched.storage_faults.append(_random_storage_fault(rng))
    elif op == "drop_sf" and sched.storage_faults:
        sched.storage_faults.pop(rng.randrange(len(sched.storage_faults)))
    elif op == "flip_storage":
        sched.storage = {"memory": "wal", "wal": "memory",
                         "disk": "wal-disk", "wal-disk": "disk"}[sched.storage]
    elif op == "reseed":
        sched.seed = rng.randrange(1 << 16)
    elif op == "interval":
        sched.interval_frac = rng.choice((0.05, 0.1, 0.2, 0.3))
    elif op == "tweak" and sched.kills:
        kill = sched.kills[rng.randrange(len(sched.kills))]
        for key in ("frac", "after_ops", "at_epoch", "in_collective",
                    "in_drain", "at_commit", "at_group_commit",
                    "probability"):
            if key in kill:
                fresh = _random_kill(rng, sched.app, sched.nprocs)
                if key in fresh:
                    kill[key] = fresh[key]
                break
        else:
            kill["rank"] = rng.randrange(sched.nprocs)
    if sched.fault_count() == 0:
        sched.kills.append(_random_kill(rng, sched.app, sched.nprocs))
    return _normalize(sched)


# ---------------------------------------------------------------------------
# Delta minimization
# ---------------------------------------------------------------------------

def minimize(sched: FuzzSchedule,
             runner: Callable[[FuzzSchedule], Dict[str, Any]],
             failure_class: str, budget: int = 32,
             ) -> Tuple[FuzzSchedule, int]:
    """Greedy delta-minimize a failing schedule.

    Repeatedly re-runs candidate schedules with one fault dropped (then
    with stretch counts shrunk to 1), keeping any candidate that still
    fails with the same ``failure_class``.  Returns the smallest
    still-failing schedule and the number of runs spent.  Deterministic
    replays make this sound: a candidate either reproduces or it doesn't.
    """
    runs = 0

    def still_fails(cand: FuzzSchedule) -> bool:
        nonlocal runs
        runs += 1
        record = runner(cand)
        return record["failure_class"] == failure_class

    cur = sched
    improved = True
    while improved and runs < budget:
        improved = False
        for fld in ("kills", "storage_faults"):
            items = getattr(cur, fld)
            for i in range(len(items)):
                cand_dict = cur.to_dict()
                cand_dict[fld] = items[:i] + items[i + 1:]
                cand_dict["label"] = f"{sched.label}-min"
                cand = FuzzSchedule.from_dict(cand_dict)
                if cand.needs_wal() and cand.storage not in ("wal",
                                                             "wal-disk"):
                    continue
                if still_fails(cand):
                    cur = cand
                    improved = True
                    break
            if improved or runs >= budget:
                break
    # shrink stretch counts on what survived
    for i, sf in enumerate(list(cur.storage_faults)):
        if runs >= budget:
            break
        if sf.get("count", 1) > 1:
            cand_dict = cur.to_dict()
            cand_dict["storage_faults"][i] = {
                k: v for k, v in sf.items() if k != "count"}
            cand = FuzzSchedule.from_dict(cand_dict)
            if still_fails(cand):
                cur = cand
    return cur, runs


# ---------------------------------------------------------------------------
# Corpus IO
# ---------------------------------------------------------------------------

def corpus_entry(sched: FuzzSchedule, record: Dict[str, Any],
                 note: str = "") -> Dict[str, Any]:
    """The JSON document pinned into the regression corpus."""
    return {
        "schedule": sched.to_dict(),
        "expect": record["verdict"],
        "failure_class": record["failure_class"],
        "failure": record["failure"],
        "note": note,
    }


def write_corpus_entry(corpus_dir: str, sched: FuzzSchedule,
                       record: Dict[str, Any], note: str = "") -> str:
    import os
    os.makedirs(corpus_dir, exist_ok=True)
    name = f"{sched.label.replace('/', '_')}-{sched.digest()}.json"
    path = os.path.join(corpus_dir, name)
    with open(path, "w") as f:
        json.dump(corpus_entry(sched, record, note), f, indent=2,
                  sort_keys=True)
        f.write("\n")
    return path


def load_schedule(path: str) -> FuzzSchedule:
    """Load one schedule from a corpus entry or a bare schedule JSON."""
    with open(path) as f:
        data = json.load(f)
    if "schedule" in data and "app" not in data:
        data = data["schedule"]
    return FuzzSchedule.from_dict(data)


# ---------------------------------------------------------------------------
# The fuzz loop
# ---------------------------------------------------------------------------

def _run_schedule_cell(sched_dict: Dict[str, Any],
                       engine: Optional[str] = None) -> Dict[str, Any]:
    """Pool-farmable wrapper: one schedule by value (no shared cache)."""
    return run_schedule(FuzzSchedule.from_dict(sched_dict), engine=engine)


def fuzz(max_schedules: int = 200, max_seconds: Optional[float] = None,
         seed: int = 0, corpus_dir: Optional[str] = None,
         smoke: bool = False, quiet: bool = False,
         nprocs: int = 4, engine: Optional[str] = None,
         storage: Optional[str] = None,
         workers: Optional[int] = None) -> Dict[str, Any]:
    """Run the coverage-guided loop; returns the machine-readable report.

    The deterministic seed schedules always run first (they are the
    smoke-coverage floor); after that the queue is fed AFL-style —
    schedules that light up new coverage points get mutated back into
    the queue, otherwise fresh random schedules are drawn.  Failures are
    delta-minimized and (when ``corpus_dir`` is set) pinned as corpus
    JSON.

    ``engine`` forwards to every golden/faulty/resume execution;
    ``storage`` forces each schedule's stable-storage flavor (WAL-only
    fault features promote memory->wal and disk->wal-disk so the
    schedule stays runnable); ``workers`` farms the deterministic seed
    wave through the process pool — the guided phase stays sequential
    because each step's generation depends on the coverage feedback of
    the previous one.
    """
    rng = random.Random(seed)
    cache: GoldenCache = {}
    queue = deque(seed_schedules(nprocs=nprocs))
    achieved: Set[str] = set()
    interesting: List[FuzzSchedule] = []
    failures: List[Dict[str, Any]] = []
    inconclusive = 0
    tried = 0
    minimizer_runs = 0
    t0 = time.monotonic()

    def force(s: FuzzSchedule) -> FuzzSchedule:
        if storage is None:
            return s
        want = storage
        if s.needs_wal() and want in ("memory", "disk"):
            want = "wal" if want == "memory" else "wal-disk"
        return replace(s, storage=want) if want != s.storage else s

    def runner(s: FuzzSchedule) -> Dict[str, Any]:
        return run_schedule(s, cache, engine=engine)

    # farm the deterministic seed wave when a pool budget was given;
    # records are consumed in input order, so the accounting (and the
    # RNG stream feeding mutations) matches the sequential run
    prerun: deque = deque()
    if workers is not None and workers > 1 and queue:
        wave = [force(s) for s in list(queue)[:max_schedules]]
        for _ in wave:
            queue.popleft()
        outs = run_cells(
            [Cell(_run_schedule_cell,
                  dict(sched_dict=s.to_dict(), engine=engine),
                  label=f"fuzz:{s.label}") for s in wave],
            parallel=True, max_workers=workers)
        for s, rec in zip(wave, outs):
            prerun.append((s, None if isinstance(rec, CellError) else rec))

    while tried < max_schedules:
        if max_seconds is not None and time.monotonic() - t0 > max_seconds:
            break
        record = None
        if prerun:
            sched, record = prerun.popleft()
        elif queue:
            sched = force(queue.popleft())
        elif interesting and rng.random() < 0.7:
            sched = force(mutate(rng, rng.choice(interesting), tried))
        else:
            sched = force(random_schedule(rng, tried))
        if record is None:
            record = runner(sched)
        tried += 1
        new = set(record["coverage"]) - achieved
        achieved |= new
        if record["verdict"] == "fail":
            mini, spent = minimize(sched, runner,
                                   record["failure_class"])
            minimizer_runs += spent
            mini_record = runner(mini)
            entry = {
                "schedule": sched.to_dict(),
                "minimized": mini.to_dict(),
                "minimized_faults": mini.fault_count(),
                "failure_class": record["failure_class"],
                "failure": record["failure"],
                "minimizer_runs": spent,
            }
            if corpus_dir:
                entry["corpus_path"] = write_corpus_entry(
                    corpus_dir, mini, mini_record,
                    note=f"auto-minimized from {sched.label} "
                         f"(fuzz seed {seed})")
            failures.append(entry)
        elif record["verdict"] == "inconclusive":
            inconclusive += 1
        if new:
            interesting.append(sched)
            for _ in range(2):
                queue.append(mutate(rng, sched, tried * 10 + len(queue)))
        if not quiet:
            flag = {"pass": ".", "fail": "F", "inconclusive": "?"}
            print(f"[{tried:4d}] {sched.label:<20} "
                  f"{flag[record['verdict']]} "
                  f"cov={len(achieved):3d} (+{len(new)})"
                  + (f"  {record['failure']}" if record["failure"] else ""))

    missing = sorted(REQUIRED_COVERAGE - achieved)
    report = {
        "seed": seed,
        "schedules_tried": tried,
        "minimizer_runs": minimizer_runs,
        "wall_seconds": round(time.monotonic() - t0, 3),
        "coverage": sorted(achieved),
        "required": sorted(REQUIRED_COVERAGE),
        "missing_required": missing,
        "window_coverage_pct": round(
            100.0 * len(achieved & REQUIRED_COVERAGE)
            / len(REQUIRED_COVERAGE), 1),
        "failures": failures,
        "inconclusive": inconclusive,
        "smoke": smoke,
        "smoke_ok": not missing and not failures,
    }
    if engine is not None:
        report["engine"] = engine
    if storage is not None:
        report["storage"] = storage
    return report


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    ap = argparse.ArgumentParser(
        prog="python -m repro.harness.fuzz",
        description="Coverage-guided fault fuzzer: search kill x "
                    "storage-fault schedules for recovery bugs; minimize "
                    "and pin failures as regression corpus JSON.")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="CI gate: seed schedules + a short guided run; "
                           "exit nonzero unless every fault window and "
                           "storage-fault class was covered with zero "
                           "failures")
    mode.add_argument("--replay", metavar="PATH",
                      help="replay one corpus entry (or bare schedule "
                           "JSON) and report its verdict")
    ap.add_argument("--schedules", type=int, default=200,
                    help="schedule budget (default 200)")
    ap.add_argument("--seconds", type=float,
                    help="wall-clock budget in seconds")
    add_seed_arg(ap, help="master RNG seed (default 0)")
    ap.add_argument("--nprocs", type=int, default=4,
                    help="ranks for the seed schedules (default 4)")
    ap.add_argument("--corpus", metavar="DIR",
                    help="write minimized failing schedules here")
    add_engine_arg(ap)
    add_storage_arg(ap, help="force every schedule's stable-storage "
                             "flavor (default: each schedule's own "
                             "choice; WAL-only fault features promote "
                             "memory->wal and disk->wal-disk)")
    add_worker_args(ap)
    add_output_args(ap)
    return ap.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)
    if args.replay:
        sched = load_schedule(args.replay)
        record = run_schedule(sched, engine=args.engine)
        print(json.dumps(record, indent=2, sort_keys=True, default=str))
        return 0 if record["verdict"] != "fail" else 1

    if args.smoke:
        budget = args.schedules if args.schedules != 200 else 40
        seconds = args.seconds if args.seconds is not None else 60.0
    else:
        budget = args.schedules
        seconds = args.seconds
    report = fuzz(max_schedules=budget, max_seconds=seconds,
                  seed=args.seed, corpus_dir=args.corpus, smoke=args.smoke,
                  quiet=args.quiet, nprocs=args.nprocs,
                  engine=args.engine, storage=args.storage,
                  workers=None if args.inline else args.workers)
    if args.json:
        write_artifact(args.json, report, sort_keys=True,
                       trailing_newline=True)
    print(f"\n{report['schedules_tried']} schedules in "
          f"{report['wall_seconds']}s; "
          f"coverage {report['window_coverage_pct']}% of required "
          f"({len(report['coverage'])} points total); "
          f"{len(report['failures'])} failing, "
          f"{report['inconclusive']} inconclusive")
    if report["missing_required"]:
        print("missing required coverage: "
              + ", ".join(report["missing_required"]))
    for failure in report["failures"]:
        print(f"FAIL [{failure['failure_class']}] {failure['failure']}")
        print(f"  minimized to {failure['minimized_faults']} fault(s): "
              f"{json.dumps(failure['minimized'])}")
    if args.smoke:
        return 0 if report["smoke_ok"] else 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
