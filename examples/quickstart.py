#!/usr/bin/env python
"""Quickstart: make a small MPI program fault-tolerant with C3.

The program passes a payload around a ring and accumulates a global sum.
We run it three ways:

1. original (no fault tolerance);
2. under C3 with periodic checkpoints;
3. under C3 with an injected fail-stop fault — the job aborts, restarts
   from the last recovery line committed on every rank, and finishes with
   exactly the original answer.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    C3Config, FaultPlan, FaultSpec, InMemoryStorage, run_fault_tolerant,
    run_original,
)
from repro.mpi.ops import SUM

NPROCS = 4


def app(ctx):
    """A self-checkpointing application.

    Persistent data lives in ``ctx.state``; the loop is resumable; the
    ``ctx.checkpoint()`` call is the ``#pragma ccc checkpoint`` site.
    """
    comm = ctx.comm
    rank, size = ctx.rank, ctx.size
    if ctx.first_time("setup"):
        ctx.state.x = np.arange(8.0) * (rank + 1)
        ctx.state.total = 0.0
        ctx.done("setup")

    for step in ctx.range("step", 24):
        ctx.checkpoint()                      # pragma: may take a checkpoint
        comm.Send(ctx.state.x, dest=(rank + 1) % size, tag=1)
        buf = np.empty(8)
        comm.Recv(buf, source=(rank - 1) % size, tag=1)
        ctx.state.x = buf * 0.9 + step
        out = np.zeros(1)
        comm.Allreduce(np.array([ctx.state.x.sum()]), out, SUM)
        ctx.state.total += float(out[0])
        ctx.compute(1e-4)                     # modelled computation
    return round(ctx.state.total, 6)


def main() -> None:
    print("== 1. original run (no fault tolerance)")
    ref = run_original(app, NPROCS)
    ref.raise_errors()
    print(f"   answer: {ref.returns[0]}   virtual time: {ref.virtual_time:.4f}s")

    print("== 2. C3 run with periodic checkpoints")
    res = run_fault_tolerant(
        app, NPROCS, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=5e-4),
    )
    st = res.stats[0]
    print(f"   answer: {res.returns[0]}   checkpoints committed: "
          f"{st.checkpoints_committed}")
    assert res.returns[0] == ref.returns[0]

    print("== 3. C3 run with a fail-stop fault on rank 2")
    res = run_fault_tolerant(
        app, NPROCS, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=5e-4),
        fault_plan=FaultPlan([FaultSpec(rank=2, at_time=1.5e-3)]),
    )
    st = res.stats[0]
    print(f"   answer: {res.returns[0]}   restarts: {res.restarts}   "
          f"restored from recovery line: v{st.restored_version}")
    assert res.returns[0] == ref.returns[0]
    print("recovered answer matches the failure-free run — OK")


if __name__ == "__main__":
    main()
