#!/usr/bin/env python
"""Domain example: a heat-diffusion solver surviving repeated failures.

A 1D rod with fixed end temperatures is integrated explicitly across 8
ranks.  Two different ranks are killed at two different times during the
run; the job restarts from the last committed recovery line each time and
still converges to the same temperature profile as the failure-free run
(the steady state is a linear ramp between the boundary temperatures).

Run: ``python examples/heat_failure.py``
"""

import numpy as np

from repro import (
    C3Config, FaultPlan, FaultSpec, InMemoryStorage, run_fault_tolerant,
    run_original,
)
from repro.apps.heat import heat

NPROCS = 8
PARAMS = dict(local_n=24, niter=120, t_left=100.0, t_right=0.0)


def app(ctx):
    return heat(ctx, **PARAMS)


def main() -> None:
    ref = run_original(app, NPROCS)
    ref.raise_errors()
    T = ref.virtual_time
    print(f"failure-free run: digest={ref.returns[0]:.6f}  vt={T:.4f}s")

    plan = FaultPlan([
        FaultSpec(rank=3, at_time=T * 0.35, reason="node 3 power loss"),
        FaultSpec(rank=6, at_time=T * 0.7, reason="node 6 NIC failure"),
    ])
    res = run_fault_tolerant(
        app, NPROCS, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=T * 0.1), fault_plan=plan,
    )
    print(f"with 2 failures:  digest={res.returns[0]:.6f}  "
          f"restarts={res.restarts}")
    for i, failed in enumerate(res.history):
        print(f"  attempt {i}: killed by {failed.failure}")
    assert abs(res.returns[0] - ref.returns[0]) < 1e-9
    print("temperature profile identical to the failure-free run — OK")


if __name__ == "__main__":
    main()
