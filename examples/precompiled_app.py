#!/usr/bin/env python
"""Precompiler example: an *uninstrumented* program made fault-tolerant.

The application below is written as a plain function with ``# ccc:``
directives — no ``ctx.state``, no resumable loops, just ordinary local
variables.  ``repro.precompiler.instrument`` performs the Figure-1
source-to-source transformation (the C3 precompiler's job): saved
variables move into the checkpointable state, the setup section gets a
replay guard, the marked loop becomes resumable, and the pragma comment
becomes a real checkpoint site.  The instrumented program then survives
an injected failure.

Run: ``python examples/precompiled_app.py``
"""

import numpy as np

from repro import (
    C3Config, FaultPlan, FaultSpec, InMemoryStorage, run_fault_tolerant,
    run_original,
)
from repro.mpi.ops import SUM
from repro.precompiler import instrument


def jacobi(ctx):
    """Plain MPI-style code with ccc directives (pre-instrumentation)."""
    # ccc: save(u, resid)
    u = np.full(16, float(ctx.rank))
    resid = 0.0
    # ccc: setup-end
    comm = ctx.comm
    left = (ctx.rank - 1) % ctx.size
    right = (ctx.rank + 1) % ctx.size
    # ccc: loop(sweep)
    for sweep in range(40):
        # ccc: checkpoint
        comm.Send(np.ascontiguousarray(u[-1:]), dest=right, tag=1)
        ghost = np.zeros(1)
        comm.Recv(ghost, source=left, tag=1)
        new = u.copy()
        new[1:] = 0.5 * (u[1:] + u[:-1])
        new[0] = 0.5 * (u[0] + ghost[0])
        delta = float(np.abs(new - u).max())
        u = new
        total = np.zeros(1)
        comm.Allreduce(np.array([delta]), total, SUM)
        resid = float(total[0])
        ctx.compute(5e-5)
    return round(float(u.sum() + resid), 9)


def main() -> None:
    app = instrument(jacobi)
    print(f"instrumented {jacobi.__name__}: saved variables = "
          f"{app.__ccc_saved__}, directives = {app.__ccc_directives__}")

    ref = run_original(app, 4)
    ref.raise_errors()
    print(f"failure-free answer: {ref.returns[0]}")

    res = run_fault_tolerant(
        app, 4, storage=InMemoryStorage(),
        config=C3Config(checkpoint_interval=6e-4),
        fault_plan=FaultPlan([FaultSpec(rank=1, at_time=1.4e-3)]))
    print(f"recovered answer:    {res.returns[0]}  "
          f"(restarts={res.restarts}, "
          f"from v{res.stats[0].restored_version})")
    assert res.returns[0] == ref.returns[0]
    print("precompiled program recovered exactly — OK")


if __name__ == "__main__":
    main()
