#!/usr/bin/env python
"""Storage example: asynchronous off-cluster drain (Section 6.4).

Writing checkpoints to node-local disk is fast but not fault-tolerant by
itself; writing synchronously to an off-cluster disk stalls the
application.  The PSC-style answer C3 integrates with is an external
daemon that drains local checkpoint files to remote storage over a
secondary network.  This example takes a real recovery line with C3, then
models the drain and reports when the line became durable off-cluster and
what a synchronous remote write would have cost the application instead.

Run: ``python examples/drain_daemon.py``
"""

from repro import C3Config, InMemoryStorage, run_c3
from repro.apps.ft import ft
from repro.mpi.timemodel import LEMIEUX
from repro.storage import DrainDaemon, checkpoint_bytes, last_committed_global

NPROCS = 8
PARAMS = dict(local_rows=16, row_len=128, niter=8)


def app(ctx):
    return ft(ctx, **PARAMS)


def main() -> None:
    storage = InMemoryStorage()
    result, stats = run_c3(
        app, NPROCS, machine=LEMIEUX, storage=storage,
        config=C3Config(checkpoint_interval=1e-3, max_checkpoints=1))
    result.raise_errors()
    version = last_committed_global(storage, NPROCS)
    assert version is not None, "no committed recovery line"
    sizes = [checkpoint_bytes(storage, version, r) for r in range(NPROCS)]
    commit_times = [s.last_commit_time for s in stats if s]
    print(f"recovery line v{version}: "
          f"{sum(sizes) / 1e6:.2f} MB across {NPROCS} ranks")

    daemon = DrainDaemon(LEMIEUX, drain_streams=4)
    report = daemon.drain(commit_times, sizes)
    print(f"local writes done at:      {max(report.local_done) * 1e3:.3f} ms")
    print(f"durable off-cluster at:    {report.line_durable_at * 1e3:.3f} ms")
    print(f"synchronous remote write would have stalled the application "
          f"{report.synchronous_penalty * 1e3:.3f} ms per checkpoint")
    assert report.line_durable_at >= max(report.local_done)
    print("drain schedule consistent — OK")


if __name__ == "__main__":
    main()
